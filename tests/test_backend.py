"""Unit tests for the commit-rate back-end."""

import pytest

from repro.backend import CommitEngine
from repro.errors import SimulationError


class TestInstructionQueue:
    def test_push_and_space(self):
        backend = CommitEngine(iq_capacity=16)
        assert backend.iq_space() == 16
        backend.iq_push(10)
        assert backend.iq_count == 10
        assert backend.iq_space() == 6

    def test_overflow_rejected(self):
        backend = CommitEngine(iq_capacity=4)
        with pytest.raises(SimulationError):
            backend.iq_push(5)

    def test_negative_rejected(self):
        with pytest.raises(SimulationError):
            CommitEngine().iq_push(-1)


class TestCommitRates:
    def test_integer_ipc(self):
        backend = CommitEngine(iq_capacity=64, initial_ipc=2.0)
        backend.iq_push(10)
        total = sum(backend.step(now, "other") for now in range(5))
        assert total == 10
        assert backend.stats.committed == 10

    def test_fractional_ipc_paces_commits(self):
        # IPC 0.5 commits one instruction every two cycles.
        backend = CommitEngine(iq_capacity=64, initial_ipc=0.5)
        backend.iq_push(5)
        commits = [backend.step(now, "other") for now in range(10)]
        assert sum(commits) == 5
        assert commits == [0, 1, 0, 1, 0, 1, 0, 1, 0, 1]

    def test_ipc_change_applies(self):
        backend = CommitEngine(initial_ipc=1.0)
        backend.iq_push(8)
        backend.step(0, "other")
        backend.set_ipc(4.0)
        assert backend.step(1, "other") == 4

    def test_invalid_ipc_rejected(self):
        with pytest.raises(Exception):
            CommitEngine().set_ipc(0.0)

    def test_commit_bounded_by_queue(self):
        backend = CommitEngine(initial_ipc=8.0)
        backend.iq_push(3)
        assert backend.step(0, "other") == 3


class TestStallAccounting:
    def test_stall_charged_to_cause(self):
        backend = CommitEngine(initial_ipc=1.0)
        for now in range(5):
            backend.step(now, "ibus_congestion")
        assert backend.stats.stall_cycles["ibus_congestion"] == 5
        assert backend.stats.committed == 0

    def test_unknown_cause_folds_into_other(self):
        backend = CommitEngine(initial_ipc=1.0)
        backend.step(0, "bizarre")
        assert backend.stats.stall_cycles["other"] == 1

    def test_finished_counts_as_base(self):
        backend = CommitEngine(initial_ipc=1.0)
        backend.step(0, "finished")
        assert backend.stats.base_cycles == 1
        assert backend.stats.total_stall_cycles == 0

    def test_base_cycles_on_commit(self):
        backend = CommitEngine(initial_ipc=1.0)
        backend.iq_push(2)
        backend.step(0, "other")
        backend.step(1, "other")
        assert backend.stats.base_cycles == 2
        assert backend.stats.cpi() == pytest.approx(1.0)

    def test_cpi_includes_stalls(self):
        backend = CommitEngine(initial_ipc=1.0)
        backend.iq_push(1)
        backend.step(0, "other")  # commit
        backend.step(1, "memory")  # stall
        backend.step(2, "memory")  # stall
        assert backend.stats.cpi() == pytest.approx(3.0)

    def test_subunit_pacing_is_base_not_stall(self):
        backend = CommitEngine(initial_ipc=0.25)
        backend.iq_push(4)
        for now in range(16):
            backend.step(now, "other")
        assert backend.stats.committed == 4
        # All cycles are pacing or commit cycles, not stalls.
        assert backend.stats.total_stall_cycles == 0
