"""Tests for the experiments command-line interface."""

import pytest

from repro.experiments.__main__ import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig01" in out
        assert "fig13" in out
        assert "table1" in out

    def test_run_fig01_cross_machine(self, capsys):
        # fig01 simulates both machine models, so keep the CLI run small.
        assert main(["fig01", "--scale", "0.03", "--benchmarks", "CG"]) == 0
        captured = capsys.readouterr()
        assert "ACMP" in captured.out
        assert "symmetric CMP" in captured.out
        # The timing footer is a diagnostic: logging on stderr, not data.
        assert "total]" in captured.err

    def test_machine_flag(self, capsys):
        assert (
            main(
                [
                    "fig07",
                    "--scale",
                    "0.03",
                    "--benchmarks",
                    "CG",
                    "--machine",
                    "scmp",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "cpc=8" in out

    def test_run_with_subset_and_scale(self, capsys):
        assert main(["fig02", "--scale", "0.05", "--benchmarks", "CG,IS"]) == 0
        out = capsys.readouterr().out
        assert "CG" in out and "IS" in out
        assert "BT" not in out.split("==")[1]  # subset respected

    def test_unknown_experiment_fails(self):
        with pytest.raises(Exception):
            main(["fig99"])

    def test_seed_flag_accepted(self, capsys):
        assert main(["fig04", "--scale", "0.05", "--benchmarks", "CG", "--seed", "3"]) == 0
