"""Unit tests for buses, multi-bus routing and arbitration."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.interconnect import (
    Bus,
    Crossbar,
    FixedPriorityArbiter,
    LeastRecentlyGrantedArbiter,
    MultiBus,
    RoundRobinArbiter,
    WeightedArbiter,
    make_arbiter,
)


class TestArbiters:
    def test_round_robin_rotates(self):
        arbiter = RoundRobinArbiter(4)
        grants = [arbiter.select([0, 1, 2, 3]) for _ in range(8)]
        assert grants == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_round_robin_skips_absent(self):
        arbiter = RoundRobinArbiter(4)
        assert arbiter.select([2, 3]) == 2
        assert arbiter.select([0, 3]) == 3
        assert arbiter.select([0, 1]) == 0

    def test_fixed_priority(self):
        arbiter = FixedPriorityArbiter(4)
        assert arbiter.select([3, 1, 2]) == 1

    def test_least_recently_granted(self):
        arbiter = LeastRecentlyGrantedArbiter(3)
        assert arbiter.select([0, 1, 2]) == 0
        assert arbiter.select([0, 1, 2]) == 1
        assert arbiter.select([0, 1, 2]) == 2
        assert arbiter.select([0, 2]) == 0

    def test_weighted_uses_urgency(self):
        urgency = {0: 1.0, 1: 5.0, 2: 3.0}
        arbiter = WeightedArbiter(3, urgency.__getitem__)
        assert arbiter.select([0, 1, 2]) == 1

    def test_empty_candidates_rejected(self):
        with pytest.raises(SimulationError):
            RoundRobinArbiter(2).select([])

    def test_out_of_range_candidate_rejected(self):
        with pytest.raises(SimulationError):
            RoundRobinArbiter(2).select([5])

    def test_make_arbiter(self):
        assert isinstance(make_arbiter("round-robin", 2), RoundRobinArbiter)
        with pytest.raises(ConfigurationError):
            make_arbiter("bogus", 2)


class TestBus:
    def test_uncontended_grant_same_cycle(self):
        bus = Bus(requester_count=2, width_bytes=32, latency=2)
        request = bus.request(0, 0x100, now=5)
        granted = bus.step(5)
        assert granted is request
        assert request.granted_at == 5
        assert request.wait_cycles == 0

    def test_transfer_occupancy(self):
        # 64 B line over a 32 B bus: two busy cycles per transaction.
        bus = Bus(requester_count=2)
        assert bus.transfer_cycles(64) == 2
        bus.request(0, 0x100, now=0)
        bus.request(1, 0x200, now=0)
        first = bus.step(0)
        assert first.requester == 0
        assert bus.step(1) is None  # still transferring
        second = bus.step(2)
        assert second.requester == 1
        assert second.wait_cycles == 2

    def test_contention_statistics(self):
        bus = Bus(requester_count=4)
        for requester in range(4):
            bus.request(requester, 0x100 * requester, now=0)
        for cycle in range(8):
            bus.step(cycle)
        assert bus.stats.transactions == 4
        # waits: 0, 2, 4, 6 cycles
        assert bus.stats.wait_cycles == 12
        assert bus.stats.mean_wait == pytest.approx(3.0)

    def test_round_robin_fairness(self):
        bus = Bus(requester_count=2)
        for _ in range(10):
            bus.request(0, 0x100, now=0)
            bus.request(1, 0x200, now=0)
        grants = []
        cycle = 0
        while bus.pending_requests:
            granted = bus.step(cycle)
            if granted:
                grants.append(granted.requester)
            cycle += 1
        assert grants[:6] == [0, 1, 0, 1, 0, 1]

    def test_flush_requester_drops_queued(self):
        bus = Bus(requester_count=2)
        bus.request(0, 0x100, now=0)
        bus.request(0, 0x140, now=0)
        assert bus.flush_requester(0) == 2
        assert bus.pending_requests == 0

    def test_utilization(self):
        bus = Bus(requester_count=1)
        bus.request(0, 0x100, now=0)
        for cycle in range(10):
            bus.step(cycle)
        assert bus.stats.utilization(10) == pytest.approx(0.2)

    def test_invalid_requester_rejected(self):
        bus = Bus(requester_count=1)
        with pytest.raises(SimulationError):
            bus.request(3, 0x0, now=0)


class TestMultiBus:
    def test_parity_routing(self):
        # Section VI-B: even lines on bus 0, odd lines on bus 1.
        interconnect = MultiBus(requester_count=2, bus_count=2)
        assert interconnect.bank_of(0x000) == 0
        assert interconnect.bank_of(0x040) == 1
        assert interconnect.bank_of(0x080) == 0

    def test_double_bus_parallel_grants(self):
        interconnect = MultiBus(requester_count=2, bus_count=2)
        interconnect.request(0, 0x000, now=0)  # even line
        interconnect.request(1, 0x040, now=0)  # odd line
        grants = interconnect.step(0)
        assert len(grants) == 2

    def test_single_bus_serialises(self):
        interconnect = MultiBus(requester_count=2, bus_count=1)
        interconnect.request(0, 0x000, now=0)
        interconnect.request(1, 0x040, now=0)
        assert len(interconnect.step(0)) == 1

    def test_requires_power_of_two_buses(self):
        with pytest.raises(ConfigurationError):
            MultiBus(requester_count=2, bus_count=3)

    def test_flush_spans_buses(self):
        interconnect = MultiBus(requester_count=2, bus_count=2)
        interconnect.request(0, 0x000, now=0)
        interconnect.request(0, 0x040, now=0)
        assert interconnect.flush_requester(0) == 2

    def test_totals(self):
        interconnect = MultiBus(requester_count=2, bus_count=2)
        interconnect.request(0, 0x000, now=0)
        interconnect.request(1, 0x040, now=0)
        interconnect.step(0)
        assert interconnect.total_transactions() == 2
        assert interconnect.total_wait_cycles() == 0


class TestCrossbar:
    def test_is_multibus_compatible(self):
        crossbar = Crossbar(requester_count=4, bank_count=4)
        assert crossbar.bus_count == 4
        assert crossbar.is_crossbar
        crossbar.request(0, 0x000, now=0)
        assert len(crossbar.step(0)) == 1
