"""Sampled-run equivalence contracts, cross-checked per machine model.

Two contracts, both enforced per machine model and per engine (the CI
``sampling-crosscheck`` job runs this module as an acmp/scmp/resume
matrix):

* **Exactness** — a plan with ``skip = 0`` covers every instruction,
  and the resulting :class:`SimulationResult` — every cycle count,
  every counter — must equal an unsampled run's bit for bit, with only
  the ``sampling`` annotation added.
* **Resume equivalence** — warming is a pure function of the trace
  prefix, so a run seeded from persisted warm-state checkpoints must
  reproduce the straight-through run exactly: identical results
  (modulo the hit/miss counters) and byte-identical rewritten
  checkpoints.
"""

import json

import pytest

from repro.machine.model import get_model
from repro.machine.serialization import result_to_dict
from repro.machine.simulator import simulate
from repro.sampling import (
    Checkpointing,
    CheckpointKey,
    CheckpointStore,
    SamplingPlan,
    simulate_sampled,
)
from repro.trace.synthesis import synthesize_benchmark

EXACT_PLAN = SamplingPlan(
    detail_instructions=1_000, skip_instructions=0, warmup_instructions=0
)

#: One private and one shared design point per machine: the warm-state
#: protocol and the interval machinery cover both topologies.
def _design_points(machine):
    model = get_model(machine)
    return [model.baseline_config(), model.shared_config()]


@pytest.mark.parametrize("machine", ["acmp", "scmp"])
@pytest.mark.parametrize(
    "cycle_skip", [True, False], ids=["skip", "reference"]
)
def test_full_coverage_is_bit_identical(machine, cycle_skip):
    for config in _design_points(machine):
        traces = synthesize_benchmark(
            "UA", thread_count=config.core_count, scale=0.1
        )
        full = simulate(config, traces, cycle_skip=cycle_skip)
        sampled = simulate_sampled(
            config, traces, EXACT_PLAN, cycle_skip=cycle_skip
        )
        assert sampled.sampling is not None and sampled.sampling["exact"]
        sampled_payload = result_to_dict(sampled)
        annotation = sampled_payload.pop("sampling")
        assert annotation["coverage"] == 1.0
        assert sampled_payload == result_to_dict(full), (
            f"{machine}/{config.label()} under "
            f"{'skip' if cycle_skip else 'reference'}: coverage=1.0 "
            f"sampled run diverged from the full run"
        )


@pytest.mark.parametrize("machine", ["acmp", "scmp"])
def test_exact_annotation_reports_no_error(machine):
    config = get_model(machine).shared_config()
    traces = synthesize_benchmark(
        "CG", thread_count=config.core_count, scale=0.05
    )
    sampled = simulate_sampled(config, traces, EXACT_PLAN)
    assert all(
        error == 0.0 for error in sampled.sampling["errors"].values()
    )


TINY_PLAN = SamplingPlan(
    detail_instructions=2_000,
    skip_instructions=6_000,
    warmup_instructions=6_000,
)


def _strip_counters(result):
    """A result dict with the checkpoint hit/miss counters removed —
    the only field allowed to differ between cold, hit and store-less
    runs of the same design point."""
    payload = result_to_dict(result)
    payload["sampling"] = dict(payload["sampling"])
    counters = payload["sampling"].pop("checkpoints", None)
    return payload, counters


class TestCheckpointResume:
    """Checkpoint-seeded warming reproduces straight-through warming."""

    @pytest.mark.parametrize("machine", ["acmp", "scmp"])
    @pytest.mark.parametrize(
        "cycle_skip", [True, False], ids=["skip", "reference"]
    )
    def test_resume_from_checkpoints_is_bit_identical(
        self, machine, cycle_skip, tmp_path
    ):
        policy = Checkpointing(
            store=CheckpointStore(tmp_path / "checkpoints"), seed=0, scale=0.2
        )
        for config in _design_points(machine):
            traces = synthesize_benchmark(
                "UA", thread_count=config.core_count, scale=0.2
            )
            plain = simulate_sampled(
                config, traces, TINY_PLAN, cycle_skip=cycle_skip
            )
            assert not plain.sampling["exact"]  # the plan really samples
            cold = simulate_sampled(
                config, traces, TINY_PLAN,
                cycle_skip=cycle_skip, checkpoints=policy,
            )
            hit = simulate_sampled(
                config, traces, TINY_PLAN,
                cycle_skip=cycle_skip, checkpoints=policy,
            )
            plain_payload = result_to_dict(plain)
            cold_payload, cold_counters = _strip_counters(cold)
            hit_payload, hit_counters = _strip_counters(hit)
            label = f"{machine}/{config.label()}"
            assert cold_payload == plain_payload, label
            assert hit_payload == plain_payload, label
            assert cold_counters["hits"] == 0, label
            assert cold_counters["writes"] == cold_counters["misses"] > 0
            assert hit_counters["misses"] == hit_counters["writes"] == 0
            assert hit_counters["hits"] == cold_counters["misses"], label

    @pytest.mark.parametrize("machine", ["acmp", "scmp"])
    def test_resume_mid_trace_rewrites_byte_identical_state(
        self, machine, tmp_path
    ):
        """Warm a run cold, drop its *last* checkpoint, and re-run: the
        earlier intervals hit, the last interval warms forward from the
        restored mid-trace state, and the rewritten checkpoint must be
        byte-for-byte the one that was deleted."""
        store = CheckpointStore(tmp_path / "checkpoints")
        policy = Checkpointing(store=store, seed=0, scale=0.2)
        config = get_model(machine).shared_config()
        traces = synthesize_benchmark(
            "UA", thread_count=config.core_count, scale=0.2
        )
        cold = simulate_sampled(config, traces, TINY_PLAN, checkpoints=policy)
        entries = sorted(
            store.root.glob("*/*/*/*/*/detail*.json"),
            key=lambda path: int(path.stem.removeprefix("detail")),
        )
        assert len(entries) >= 2
        last = entries[-1]
        original = last.read_bytes()
        last.unlink()
        resumed = simulate_sampled(
            config, traces, TINY_PLAN, checkpoints=policy
        )
        assert last.read_bytes() == original
        resumed_payload, counters = _strip_counters(resumed)
        cold_payload, _ = _strip_counters(cold)
        assert resumed_payload == cold_payload
        assert counters["misses"] == counters["writes"] == 1
        assert counters["hits"] == len(entries) - 1

    def test_resume_concurrent_writers_never_tear_entries(self, tmp_path):
        """Two stores sharing one tree (shard hosts warming the same
        prefix) interleave puts of the same key: every read parses,
        the newest write wins, and no tmp files are left behind."""
        key = CheckpointKey(
            machine="acmp", benchmark="UA", seed=0, scale=1.0, threads=9,
            fingerprint="a" * 12, plan="d2000:s6000:w6000:r0",
            warm_l2=True, shape="b" * 12,
        )
        writer_a = CheckpointStore(tmp_path / "checkpoints")
        writer_b = CheckpointStore(tmp_path / "checkpoints")
        for round_index in range(3):
            writer_a.put(key, 0, {"round": round_index, "writer": "a"})
            assert writer_b.get(key, 0) == {
                "round": round_index, "writer": "a",
            }
            writer_b.put(key, 0, {"round": round_index, "writer": "b"})
            reader = CheckpointStore(tmp_path / "checkpoints")
            assert reader.get(key, 0) == {
                "round": round_index, "writer": "b",
            }
            payload = json.loads(writer_a.path_for(key, 0).read_text())
            assert payload["key"] == key.header()
        assert not list((tmp_path / "checkpoints").rglob("*.tmp"))
        assert len(writer_a) == 1
