"""Coverage=1.0 sampled runs are bit-identical to full runs.

The sampled simulator's exactness contract, enforced per machine model
and per engine (the CI ``sampling-crosscheck`` job runs this module as
an acmp/scmp matrix): a plan with ``skip = 0`` covers every instruction,
and the resulting :class:`SimulationResult` — every cycle count, every
counter — must equal an unsampled run's bit for bit, with only the
``sampling`` annotation added.
"""

import pytest

from repro.machine.model import get_model
from repro.machine.serialization import result_to_dict
from repro.machine.simulator import simulate
from repro.sampling import SamplingPlan, simulate_sampled
from repro.trace.synthesis import synthesize_benchmark

EXACT_PLAN = SamplingPlan(
    detail_instructions=1_000, skip_instructions=0, warmup_instructions=0
)

#: One private and one shared design point per machine: the warm-state
#: protocol and the interval machinery cover both topologies.
def _design_points(machine):
    model = get_model(machine)
    return [model.baseline_config(), model.shared_config()]


@pytest.mark.parametrize("machine", ["acmp", "scmp"])
@pytest.mark.parametrize(
    "cycle_skip", [True, False], ids=["skip", "reference"]
)
def test_full_coverage_is_bit_identical(machine, cycle_skip):
    for config in _design_points(machine):
        traces = synthesize_benchmark(
            "UA", thread_count=config.core_count, scale=0.1
        )
        full = simulate(config, traces, cycle_skip=cycle_skip)
        sampled = simulate_sampled(
            config, traces, EXACT_PLAN, cycle_skip=cycle_skip
        )
        assert sampled.sampling is not None and sampled.sampling["exact"]
        sampled_payload = result_to_dict(sampled)
        annotation = sampled_payload.pop("sampling")
        assert annotation["coverage"] == 1.0
        assert sampled_payload == result_to_dict(full), (
            f"{machine}/{config.label()} under "
            f"{'skip' if cycle_skip else 'reference'}: coverage=1.0 "
            f"sampled run diverged from the full run"
        )


@pytest.mark.parametrize("machine", ["acmp", "scmp"])
def test_exact_annotation_reports_no_error(machine):
    config = get_model(machine).shared_config()
    traces = synthesize_benchmark(
        "CG", thread_count=config.core_count, scale=0.05
    )
    sampled = simulate_sampled(config, traces, EXACT_PLAN)
    assert all(
        error == 0.0 for error in sampled.sampling["errors"].values()
    )
