"""Tests for characterisation, sharing analysis and report rendering."""

import pytest

from repro.analysis import (
    basic_block_profile,
    format_bar_chart,
    format_stacked_bars,
    format_table,
    mpki_profile,
    sharing_profile,
)
from repro.trace.records import BasicBlockRecord, SyncKind, SyncRecord
from repro.trace.stream import ThreadTrace, TraceSet
from repro.trace.synthesis import synthesize_benchmark


class TestBasicBlockProfile:
    def test_region_means(self):
        trace = ThreadTrace(
            0,
            [
                BasicBlockRecord(0x100, 5),  # serial: 20 B
                SyncRecord(SyncKind.PARALLEL_START, 0),
                BasicBlockRecord(0x200, 20),  # parallel: 80 B
                BasicBlockRecord(0x300, 10),  # parallel: 40 B
                SyncRecord(SyncKind.PARALLEL_END, 0),
            ],
        )
        profile = basic_block_profile(trace)
        assert profile.serial_mean_bytes == pytest.approx(20.0)
        assert profile.parallel_mean_bytes == pytest.approx(60.0)
        assert profile.parallel_to_serial_ratio == pytest.approx(3.0)
        assert profile.serial_blocks == 1
        assert profile.parallel_blocks == 2

    def test_empty_regions(self):
        profile = basic_block_profile(ThreadTrace(0, []))
        assert profile.serial_mean_bytes == 0.0
        assert profile.parallel_to_serial_ratio == 0.0

    def test_synthesized_benchmark_matches_model(self):
        from repro.workloads import get_benchmark

        traces = synthesize_benchmark("LU", thread_count=2, scale=0.3)
        profile = basic_block_profile(traces.master)
        model = get_benchmark("LU")
        assert profile.parallel_mean_bytes == pytest.approx(
            model.bb_bytes_parallel, rel=0.3
        )


class TestMpkiProfile:
    def test_runs_on_synthesized_trace(self):
        traces = synthesize_benchmark("DC", thread_count=2, scale=0.3)
        profile = mpki_profile(traces.master)
        assert profile.serial.instructions > 0
        assert profile.parallel.instructions > 0
        assert profile.serial.steady_state_mpki > profile.parallel.steady_state_mpki


class TestSharingProfile:
    def test_fully_shared(self):
        block = BasicBlockRecord(0x100, 4)
        records = [
            SyncRecord(SyncKind.PARALLEL_START, 0),
            block,
            SyncRecord(SyncKind.PARALLEL_END, 0),
        ]
        trace_set = TraceSet(
            "demo",
            [ThreadTrace(0, list(records)), ThreadTrace(1, list(records))],
        )
        profile = sharing_profile(trace_set)
        assert profile.static_sharing == 1.0
        assert profile.dynamic_sharing == 1.0

    def test_disjoint_threads(self):
        def records(address):
            return [
                SyncRecord(SyncKind.PARALLEL_START, 0),
                BasicBlockRecord(address, 4),
                SyncRecord(SyncKind.PARALLEL_END, 0),
            ]

        trace_set = TraceSet(
            "demo", [ThreadTrace(0, records(0x100)), ThreadTrace(1, records(0x900))]
        )
        profile = sharing_profile(trace_set)
        assert profile.static_sharing == 0.0
        assert profile.dynamic_sharing == 0.0

    def test_synthesized_sharing_high(self):
        traces = synthesize_benchmark("EP", thread_count=5, scale=0.2)
        profile = sharing_profile(traces)
        assert profile.dynamic_sharing > 0.97  # Fig. 4: ~99%

    def test_empty_set(self):
        trace_set = TraceSet("demo", [ThreadTrace(0, [])])
        profile = sharing_profile(trace_set)
        assert profile.static_sharing == 0.0


class TestReportRendering:
    def test_table_alignment(self):
        table = format_table(["name", "value"], [["a", 1.5], ["bb", 20.25]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "name" in lines[0]
        assert "20.250" in lines[3]

    def test_bar_chart(self):
        chart = format_bar_chart({"x": 1.0, "y": 0.5}, width=10)
        assert "x" in chart and "y" in chart
        assert chart.count("#") > 0

    def test_bar_chart_empty(self):
        assert format_bar_chart({}) == "(no data)"

    def test_stacked_bars_legend(self):
        stacks = {"bench": {"base": 1.0, "memory": 0.5}}
        rendered = format_stacked_bars(
            stacks, ["base", "memory"], {"base": "#", "memory": "M"}
        )
        assert "legend" in rendered
        assert "#" in rendered and "M" in rendered
