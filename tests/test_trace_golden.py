"""Golden-file guarantees for the on-disk trace formats.

The fixtures under ``tests/data/trace_golden/`` are committed artifacts.
Encoding the reference records must reproduce them byte for byte
(a codec edit that changes bytes must bump the format version and
regenerate the fixtures deliberately), and decoding them must keep
yielding the reference records — otherwise existing on-disk corpora
would be silently orphaned.
"""

from pathlib import Path

from repro.trace.chunked import ChunkedThreadReader, write_thread_trace_chunked
from repro.trace.encoding import (
    decode_thread_trace,
    encode_thread_trace,
    open_trace_set,
    read_trace_set,
)
from repro.trace.fingerprint import trace_fingerprint
from repro.trace.records import (
    BasicBlockRecord,
    BranchKind,
    BranchOutcome,
    EndRecord,
    IpcRecord,
    SyncKind,
    SyncRecord,
)
from repro.trace.stream import ThreadTrace

GOLDEN_DIR = Path(__file__).parent / "data" / "trace_golden"

#: Pinned content digest of the golden set. Changing the fingerprint
#: algorithm invalidates every persisted checkpoint key — do it only
#: with a migration story.
GOLDEN_SET_FINGERPRINT = "c5060269ef0694a3"


def golden_records() -> list:
    """One of every record shape the codecs can express."""
    return [
        IpcRecord(1.25),
        BasicBlockRecord(0x400000, 6),
        BasicBlockRecord(
            0x400018, 4, BranchOutcome(BranchKind.CONDITIONAL, True, 0x400080)
        ),
        SyncRecord(SyncKind.PARALLEL_START, 0),
        BasicBlockRecord(
            0x400080, 9, BranchOutcome(BranchKind.UNCONDITIONAL, True, 0x400000)
        ),
        SyncRecord(SyncKind.BARRIER, 3),
        BasicBlockRecord(
            0x4000C0, 2, BranchOutcome(BranchKind.INDIRECT, True, 0x400140)
        ),
        SyncRecord(SyncKind.WAIT, 7),
        SyncRecord(SyncKind.SIGNAL, 7),
        SyncRecord(SyncKind.PARALLEL_END, 0),
        IpcRecord(2.5),
        BasicBlockRecord(0x400140, 11),
        EndRecord(),
    ]


class TestGoldenTrc:
    def test_encode_is_byte_stable(self):
        trace = ThreadTrace(thread_id=5, records=golden_records())
        assert encode_thread_trace(trace) == (GOLDEN_DIR / "golden.trc").read_bytes()

    def test_decode_compatibility(self):
        decoded = decode_thread_trace((GOLDEN_DIR / "golden.trc").read_bytes())
        assert decoded.thread_id == 5
        assert decoded.records == golden_records()


class TestGoldenTrcz:
    def test_encode_is_byte_stable(self, tmp_path):
        path = tmp_path / "fresh.trcz"
        write_thread_trace_chunked(path, 5, golden_records(), chunk_records=4)
        assert path.read_bytes() == (GOLDEN_DIR / "golden.trcz").read_bytes()

    def test_decode_compatibility(self):
        reader = ChunkedThreadReader(GOLDEN_DIR / "golden.trcz")
        assert reader.thread_id == 5
        assert reader.chunk_records == 4
        assert list(reader.iter_records()) == golden_records()
        blocks = [
            r for r in golden_records() if isinstance(r, BasicBlockRecord)
        ]
        assert reader.total_instructions == sum(b.instruction_count for b in blocks)


class TestGoldenSet:
    def test_streamed_open(self):
        streamed = open_trace_set(GOLDEN_DIR / "set")
        assert streamed.benchmark == "golden"
        assert streamed.thread_count == 2
        assert list(streamed.threads[0]) == golden_records()
        assert trace_fingerprint(streamed) == GOLDEN_SET_FINGERPRINT

    def test_eager_read_matches_and_refingerprints(self):
        eager = read_trace_set(GOLDEN_DIR / "set")
        # Strip the manifest-sourced memo: the digest recomputed from
        # the decoded records must still match the pinned value, which
        # is what keeps persisted checkpoint keys reachable.
        del eager._warm_fingerprint
        assert trace_fingerprint(eager) == GOLDEN_SET_FINGERPRINT

    def test_legacy_manifest_still_parses(self, tmp_path):
        # Pre-chunked manifests had no format/fingerprint keys.
        trace = ThreadTrace(thread_id=0, records=golden_records())
        data = encode_thread_trace(trace)
        (tmp_path / "thread_000.trc").write_bytes(data)
        (tmp_path / "manifest.txt").write_text(
            "benchmark legacy\nthreads 1\nthread_000.trc\n"
        )
        loaded = read_trace_set(tmp_path)
        assert loaded.benchmark == "legacy"
        assert loaded.threads[0].records == golden_records()
