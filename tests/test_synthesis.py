"""Tests for the synthetic trace generator (the Pin-replacement)."""

import statistics

import pytest

from repro.errors import WorkloadError
from repro.trace.records import BasicBlockRecord, IpcRecord, SyncKind, SyncRecord
from repro.trace.synthesis import synthesize, synthesize_benchmark
from repro.trace.validation import validate_trace_set
from repro.workloads import benchmark_names, get_benchmark


@pytest.fixture(scope="module")
def bt_traces():
    return synthesize_benchmark("BT", thread_count=5, scale=0.5)


class TestStructure:
    def test_validates(self, bt_traces):
        report = validate_trace_set(bt_traces)
        assert report.thread_count == 5
        assert report.parallel_phase_count == get_benchmark("BT").parallel_phases

    def test_master_has_serial_code(self, bt_traces):
        assert sum(1 for _ in bt_traces.master.serial_region_blocks()) > 0

    def test_workers_have_no_serial_code(self, bt_traces):
        for worker in bt_traces.workers:
            assert sum(1 for _ in worker.serial_region_blocks()) == 0

    def test_ipc_records_present(self, bt_traces):
        model = get_benchmark("BT")
        master_ipcs = {
            record.ipc
            for record in bt_traces.master.records
            if isinstance(record, IpcRecord)
        }
        assert model.ipc_master_serial in master_ipcs
        assert model.ipc_master_parallel in master_ipcs
        worker_ipcs = {
            record.ipc
            for record in bt_traces.workers[0].records
            if isinstance(record, IpcRecord)
        }
        assert worker_ipcs == {model.ipc_worker_parallel}

    def test_deterministic(self):
        first = synthesize_benchmark("CG", thread_count=3, scale=0.2)
        second = synthesize_benchmark("CG", thread_count=3, scale=0.2)
        for t1, t2 in zip(first.threads, second.threads):
            assert t1.records == t2.records

    def test_seed_changes_trace(self):
        first = synthesize_benchmark("CG", thread_count=3, scale=0.2, seed=0)
        second = synthesize_benchmark("CG", thread_count=3, scale=0.2, seed=1)
        assert any(
            t1.records != t2.records
            for t1, t2 in zip(first.threads, second.threads)
        )

    def test_invalid_args_rejected(self):
        model = get_benchmark("BT")
        with pytest.raises(WorkloadError):
            synthesize(model, thread_count=0)
        with pytest.raises(WorkloadError):
            synthesize(model, scale=0.0)


class TestCalibration:
    def test_basic_block_means(self, bt_traces):
        model = get_benchmark("BT")
        parallel = [b.size_bytes for b in bt_traces.master.parallel_region_blocks()]
        serial = [b.size_bytes for b in bt_traces.master.serial_region_blocks()]
        assert statistics.mean(parallel) == pytest.approx(
            model.bb_bytes_parallel, rel=0.25
        )
        assert statistics.mean(serial) == pytest.approx(model.bb_bytes_serial, rel=0.3)

    def test_parallel_budget_respected(self, bt_traces):
        model = get_benchmark("BT")
        budget = model.scaled_parallel_instructions(0.5)
        for worker in bt_traces.workers:
            executed = sum(
                b.instruction_count for b in worker.parallel_region_blocks()
            )
            assert executed == pytest.approx(budget, rel=0.2)

    def test_threads_share_code(self, bt_traces):
        footprints = []
        for thread in bt_traces.threads:
            footprints.append(
                {b.address for b in thread.parallel_region_blocks()}
            )
        common = set.intersection(*footprints)
        union = set.union(*footprints)
        assert len(common) / len(union) > 0.9

    def test_serial_fraction(self):
        traces = synthesize_benchmark("CoMD", thread_count=9, scale=0.25)
        serial = sum(
            b.instruction_count for b in traces.master.serial_region_blocks()
        )
        total = traces.instruction_count
        model = get_benchmark("CoMD")
        assert serial / total == pytest.approx(model.serial_fraction, rel=0.25)

    def test_critical_sections_only_for_task_codes(self):
        bots = synthesize_benchmark("botsspar", thread_count=3, scale=0.1)
        waits = sum(
            1
            for record in bots.workers[0].records
            if isinstance(record, SyncRecord) and record.kind is SyncKind.WAIT
        )
        assert waits > 0
        bt = synthesize_benchmark("BT", thread_count=3, scale=0.1)
        waits_bt = sum(
            1
            for record in bt.workers[0].records
            if isinstance(record, SyncRecord) and record.kind is SyncKind.WAIT
        )
        assert waits_bt == 0

    def test_cold_streaming_produces_fresh_lines(self):
        traces = synthesize_benchmark("CoEVP", thread_count=2, scale=0.25)
        from repro.trace.synthesis import PARALLEL_COLD_BASE

        streamed = [
            b
            for b in traces.workers[0].parallel_region_blocks()
            if b.address >= PARALLEL_COLD_BASE
        ]
        assert streamed, "CoEVP must stream cold code (MPKI 1.27)"
        addresses = [b.address for b in streamed]
        assert len(set(addresses)) == len(addresses), "cold lines must be fresh"

    def test_no_cold_streaming_when_mpki_zero(self):
        traces = synthesize_benchmark("EP", thread_count=2, scale=0.25)
        from repro.trace.synthesis import PARALLEL_COLD_BASE

        streamed = [
            b
            for b in traces.workers[0].parallel_region_blocks()
            if b.address >= PARALLEL_COLD_BASE
        ]
        assert not streamed


class TestAllBenchmarksSmoke:
    @pytest.mark.parametrize("name", benchmark_names())
    def test_synthesizes_and_validates(self, name):
        traces = synthesize_benchmark(name, thread_count=3, scale=0.05)
        report = validate_trace_set(traces)
        assert report.total_instructions > 0
        blocks = list(traces.master.basic_blocks())
        assert all(isinstance(b, BasicBlockRecord) for b in blocks)
