"""Unit tests for workload models, suites and code generation."""

from random import Random

import pytest

from repro.errors import WorkloadError
from repro.trace.records import INSTRUCTION_BYTES
from repro.workloads import (
    ALL_BENCHMARKS,
    EXMATEX_SUITE,
    NPB_SUITE,
    SPECOMP_SUITE,
    benchmark_names,
    build_region,
    get_benchmark,
    stable_seed,
    suite_of,
)
from repro.workloads.model import WorkloadModel


class TestSuites:
    def test_paper_benchmark_counts(self):
        # Section V-C: 10 NPB + 10 SPEC OMP + 4 ExMatEx = 24 workloads.
        assert len(NPB_SUITE) == 10
        assert len(SPECOMP_SUITE) == 10
        assert len(EXMATEX_SUITE) == 4
        assert len(ALL_BENCHMARKS) == 24

    def test_names_unique(self):
        names = benchmark_names()
        assert len(set(names)) == 24

    def test_lookup(self):
        assert get_benchmark("BT").suite == "NPB"
        assert suite_of("LULESH") == "ExMatEx"

    def test_unknown_name_rejected(self):
        with pytest.raises(WorkloadError, match="unknown benchmark"):
            get_benchmark("nonexistent")

    def test_parallel_blocks_longer_on_average(self):
        # Fig. 2: parallel basic blocks are ~3x serial ones on (arithmetic) mean.
        serial = sum(m.bb_bytes_serial for m in ALL_BENCHMARKS) / 24
        parallel = sum(m.bb_bytes_parallel for m in ALL_BENCHMARKS) / 24
        assert parallel / serial > 2.5

    def test_nab_and_coevp_inverted(self):
        # Fig. 2 exceptions: nab and CoEVP have longer serial basic blocks.
        for name in ("nab", "CoEVP"):
            model = get_benchmark(name)
            assert model.bb_bytes_serial > model.bb_bytes_parallel

    def test_parallel_mpki_negligible_except_coevp(self):
        # Fig. 3: parallel MPKI far below 1 everywhere but CoEVP (1.27).
        for model in ALL_BENCHMARKS:
            if model.name == "CoEVP":
                assert model.cold_mpki_parallel == pytest.approx(1.27)
            else:
                assert model.cold_mpki_parallel < 0.1

    def test_serial_branch_mpki_higher(self):
        # Section VI-A: serial branch MPKI ~3.8x the parallel value.
        ratios = [
            m.branch_mpki_serial / m.branch_mpki_parallel for m in ALL_BENCHMARKS
        ]
        assert sum(ratios) / len(ratios) > 3.0

    def test_sharing_high(self):
        # Fig. 4: ~99 % dynamic instruction sharing.
        mean_sharing = sum(m.sharing_dynamic for m in ALL_BENCHMARKS) / 24
        assert mean_sharing > 0.98

    def test_capacity_benchmarks_exceed_16kb(self):
        # Fig. 11: botsalgn and smithwa show capacity pressure at 16 KB.
        for name in ("botsalgn", "smithwa"):
            model = get_benchmark(name)
            assert 16 * 1024 < model.footprint_parallel_bytes <= 32 * 1024

    def test_comd_has_largest_serial_fraction(self):
        # Fig. 13: CoMD sits furthest right on the serial-fraction axis.
        comd = get_benchmark("CoMD")
        assert comd.serial_fraction == max(m.serial_fraction for m in ALL_BENCHMARKS)


class TestModelValidation:
    def _kwargs(self, **overrides):
        base = dict(
            name="X",
            suite="NPB",
            serial_fraction=0.02,
            bb_bytes_serial=32,
            bb_bytes_parallel=96,
            loop_body_bytes_serial=128,
            loop_body_bytes_parallel=512,
            inner_trips_serial=10,
            inner_trips_parallel=10,
            footprint_serial_bytes=4096,
            footprint_parallel_bytes=8192,
            cold_mpki_serial=10.0,
            cold_mpki_parallel=0.0,
            branch_mpki_serial=4.0,
            branch_mpki_parallel=1.0,
            sharing_dynamic=0.99,
            sharing_static=0.97,
            ipc_master_serial=1.8,
            ipc_master_parallel=2.2,
            ipc_worker_parallel=0.8,
            parallel_phases=2,
            uses_critical_sections=False,
            imbalance=0.05,
            parallel_instructions=10_000,
        )
        base.update(overrides)
        return base

    def test_valid_model(self):
        model = WorkloadModel(**self._kwargs())
        assert model.bb_instructions_parallel == 24

    @pytest.mark.parametrize(
        "field,value",
        [
            ("suite", "BOGUS"),
            ("serial_fraction", 1.0),
            ("bb_bytes_serial", 1),
            ("loop_body_bytes_parallel", 8),
            ("inner_trips_parallel", 0),
            ("footprint_parallel_bytes", 16),
            ("cold_mpki_serial", -1.0),
            ("sharing_dynamic", 0.0),
            ("ipc_worker_parallel", 0.0),
            ("parallel_phases", 0),
            ("imbalance", 0.9),
            ("parallel_instructions", 10),
        ],
    )
    def test_invalid_field_rejected(self, field, value):
        with pytest.raises(WorkloadError):
            WorkloadModel(**self._kwargs(**{field: value}))

    def test_serial_instructions_fraction(self):
        model = WorkloadModel(**self._kwargs(serial_fraction=0.1))
        serial = model.serial_instructions(thread_count=9)
        parallel_total = model.parallel_instructions * 9
        fraction = serial / (serial + parallel_total)
        assert fraction == pytest.approx(0.1, rel=0.01)


class TestCodegen:
    def test_stable_seed_deterministic(self):
        assert stable_seed("BT", "layout") == stable_seed("BT", "layout")
        assert stable_seed("BT", "layout") != stable_seed("CG", "layout")

    def test_region_covers_footprint(self):
        rng = Random(1)
        region = build_region(0x1000, 8192, 512, 64, 10, rng)
        assert region.footprint_bytes >= 8192
        assert region.base_address == 0x1000

    def test_blocks_contiguous(self):
        rng = Random(2)
        region = build_region(0x1000, 4096, 256, 32, 5, rng)
        cursor = 0x1000
        for loop in region.loops:
            for block in loop.blocks:
                assert block.address == cursor
                cursor = block.end_address

    def test_block_sizes_near_mean(self):
        rng = Random(3)
        region = build_region(0x1000, 64 * 1024, 512, 64, 10, rng)
        sizes = [
            block.size_bytes for loop in region.loops for block in loop.blocks
        ]
        mean = sum(sizes) / len(sizes)
        assert 0.7 * 64 < mean < 1.3 * 64

    def test_rejects_tiny_footprint(self):
        with pytest.raises(WorkloadError):
            build_region(0, 100, 512, 64, 10, Random(0))

    def test_rejects_subinstruction_block(self):
        with pytest.raises(WorkloadError):
            build_region(0, 4096, 512, INSTRUCTION_BYTES - 1, 10, Random(0))

    def test_line_addresses_cover_code(self):
        rng = Random(4)
        region = build_region(0x1000, 2048, 256, 64, 5, rng)
        lines = region.line_addresses(64)
        assert all(address % 64 == 0 for address in lines)
        expected_span = region.end_address - region.base_address
        assert len(lines) >= expected_span // 64
