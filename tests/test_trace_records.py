"""Unit tests for trace record types."""

import pytest

from repro.trace.records import (
    INSTRUCTION_BYTES,
    BasicBlockRecord,
    BranchKind,
    BranchOutcome,
    EndRecord,
    IpcRecord,
    SyncKind,
    SyncRecord,
)


class TestBranchOutcome:
    def test_taken_branch(self):
        branch = BranchOutcome(BranchKind.CONDITIONAL, True, 0x1000)
        assert branch.taken
        assert branch.target == 0x1000

    def test_unconditional_must_be_taken(self):
        with pytest.raises(ValueError):
            BranchOutcome(BranchKind.UNCONDITIONAL, False, 0x1000)

    def test_negative_target_rejected(self):
        with pytest.raises(ValueError):
            BranchOutcome(BranchKind.CONDITIONAL, True, -4)


class TestBasicBlockRecord:
    def test_geometry(self):
        block = BasicBlockRecord(address=0x1000, instruction_count=10)
        assert block.size_bytes == 10 * INSTRUCTION_BYTES
        assert block.end_address == 0x1000 + 40
        assert block.branch_address == 0x1000 + 36

    def test_fall_through_without_branch(self):
        block = BasicBlockRecord(address=0x1000, instruction_count=4)
        assert block.falls_through
        assert block.next_address == block.end_address

    def test_taken_branch_next_address(self):
        branch = BranchOutcome(BranchKind.CONDITIONAL, True, 0x2000)
        block = BasicBlockRecord(0x1000, 4, branch)
        assert not block.falls_through
        assert block.next_address == 0x2000

    def test_not_taken_branch_falls_through(self):
        branch = BranchOutcome(BranchKind.CONDITIONAL, False, 0x2000)
        block = BasicBlockRecord(0x1000, 4, branch)
        assert block.falls_through
        assert block.next_address == block.end_address

    def test_rejects_empty_block(self):
        with pytest.raises(ValueError):
            BasicBlockRecord(0x1000, 0)

    def test_rejects_negative_address(self):
        with pytest.raises(ValueError):
            BasicBlockRecord(-8, 1)


class TestOtherRecords:
    def test_sync_record(self):
        record = SyncRecord(SyncKind.BARRIER, 3)
        assert record.kind is SyncKind.BARRIER
        assert record.object_id == 3

    def test_sync_rejects_negative_id(self):
        with pytest.raises(ValueError):
            SyncRecord(SyncKind.WAIT, -1)

    def test_ipc_record_bounds(self):
        assert IpcRecord(1.5).ipc == 1.5
        with pytest.raises(ValueError):
            IpcRecord(0.0)
        with pytest.raises(ValueError):
            IpcRecord(17.0)

    def test_end_record_is_singleton_like(self):
        assert EndRecord() == EndRecord()
