"""Tests for the campaign layer: specs, the JSON store, and the runner."""

import json

import pytest

from repro.acmp import baseline_config, result_to_dict, worker_shared_config
from repro.campaign import (
    Campaign,
    ResultStore,
    RunSpec,
    execute_run,
    run_campaign,
    run_specs,
)
from repro.campaign import runner as campaign_runner
from repro.errors import ConfigurationError, SimulationError
from repro.experiments.common import ExperimentContext


def _tiny_spec(benchmark="CG", seed=0, **config_overrides):
    return RunSpec(
        benchmark=benchmark,
        config=baseline_config(**config_overrides),
        seed=seed,
        scale=0.02,
    )


class TestSpec:
    def test_key_identity(self):
        spec = _tiny_spec()
        # The machine model leads the key; it is derived from the
        # config's type through the registry when not given explicitly.
        assert spec.key == ("acmp", "CG", "baseline::32KB::4lb", 0, 0.02)
        assert spec.machine == "acmp"

    def test_campaign_cross_product(self):
        campaign = Campaign(
            name="sweep",
            benchmarks=("CG", "UA"),
            design_points=(baseline_config(), worker_shared_config()),
            seeds=(0, 1, 2),
            scale=0.02,
        )
        runs = campaign.runs()
        assert len(runs) == campaign.size == 2 * 2 * 3
        assert len({spec.key for spec in runs}) == len(runs)

    def test_empty_campaign_rejected(self):
        with pytest.raises(ConfigurationError):
            Campaign(name="x", benchmarks=(), design_points=(baseline_config(),))

    def test_colliding_labels_rejected(self):
        with pytest.raises(ConfigurationError, match="colliding"):
            Campaign(
                name="x",
                benchmarks=("CG",),
                # Same label, different configs: silent collisions in the
                # store would serve wrong results.
                design_points=(
                    baseline_config(),
                    baseline_config(arbitration="icount"),
                ),
            )


class TestResultStore:
    def test_round_trip_across_instances(self, tmp_path):
        spec = _tiny_spec()
        result = execute_run(spec)
        store = ResultStore(tmp_path / "cache")
        assert spec not in store
        store.put(spec, result)
        reopened = ResultStore(tmp_path / "cache")
        assert spec in reopened
        loaded = reopened.get(spec)
        assert result_to_dict(loaded) == result_to_dict(result)
        assert reopened.keys() == [spec.key]

    def test_distinct_keys_distinct_paths(self, tmp_path):
        store = ResultStore(tmp_path)
        paths = {
            store.path_for(_tiny_spec()),
            store.path_for(_tiny_spec(seed=1)),
            store.path_for(_tiny_spec(benchmark="UA")),
            store.path_for(_tiny_spec(line_buffers=8)),
        }
        assert len(paths) == 4

    def test_label_collision_detected_on_load(self, tmp_path):
        # worker_count is not part of the label, so these two specs
        # share a key; the store must refuse to serve one for the other
        # instead of silently returning a different machine's result.
        spec_9core = _tiny_spec()
        spec_5core = _tiny_spec(worker_count=4)
        assert spec_9core.key == spec_5core.key
        store = ResultStore(tmp_path)
        store.put(spec_9core, execute_run(spec_9core))
        with pytest.raises(SimulationError, match="different"):
            store.get(spec_5core)

    def test_warm_l2_mismatch_detected_on_load(self, tmp_path):
        spec_warm = _tiny_spec()
        spec_cold = RunSpec(
            benchmark="CG", config=baseline_config(), seed=0, scale=0.02,
            warm_l2=False,
        )
        store = ResultStore(tmp_path)
        store.put(spec_warm, execute_run(spec_warm))
        with pytest.raises(SimulationError, match="different"):
            store.get(spec_cold)


class TestRunner:
    def test_serial_and_parallel_agree(self, tmp_path):
        campaign = Campaign(
            name="agree",
            benchmarks=("CG", "UA"),
            design_points=(baseline_config(),),
            scale=0.02,
        )
        serial = run_campaign(campaign)
        parallel = run_campaign(campaign, jobs=2)
        assert serial.results.keys() == parallel.results.keys()
        for key, result in serial.results.items():
            assert result_to_dict(result) == result_to_dict(
                parallel.results[key]
            )
        assert serial.executed == parallel.executed == 2

    def test_store_caching_across_invocations(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        campaign = Campaign(
            name="cached",
            benchmarks=("CG",),
            design_points=(baseline_config(),),
            seeds=(0, 1),
            scale=0.02,
        )
        first = run_campaign(campaign, store=store)
        assert (first.executed, first.cached) == (2, 0)
        second = run_campaign(campaign, store=store)
        assert (second.executed, second.cached) == (0, 2)
        for key, result in first.results.items():
            assert result_to_dict(result) == result_to_dict(
                second.results[key]
            )

    def test_per_seed_traces_differ(self):
        # Different seeds synthesise different trace realisations, so the
        # runs are genuinely independent samples.
        base = execute_run(_tiny_spec(seed=0))
        other = execute_run(_tiny_spec(seed=7))
        assert base.cycles != other.cycles

    def test_progress_hook_called(self):
        calls = []
        run_specs(
            [_tiny_spec(), _tiny_spec(benchmark="UA")],
            progress=lambda done, total, spec, elapsed: calls.append(
                (done, total)
            ),
        )
        assert calls == [(1, 2), (2, 2)]

    def test_duplicate_specs_run_once(self):
        report = run_specs([_tiny_spec(), _tiny_spec()])
        assert report.total == 1
        assert report.executed == 1

    def test_colliding_specs_in_one_batch_rejected(self):
        with pytest.raises(ConfigurationError, match="share the key"):
            run_specs([_tiny_spec(), _tiny_spec(worker_count=4)])


class TestExperimentContextIntegration:
    def test_context_uses_store(self, tmp_path):
        cache = tmp_path / "cache"
        first = ExperimentContext(
            scale=0.02, benchmarks=["CG"], cache_dir=cache
        )
        result = first.run("CG", baseline_config())
        # A fresh context with the same cache must not re-simulate: the
        # stored result round-trips identically.
        second = ExperimentContext(
            scale=0.02, benchmarks=["CG"], cache_dir=cache
        )
        cached = second.run("CG", baseline_config())
        assert result_to_dict(cached) == result_to_dict(result)
        assert len(ResultStore(cache)) == 1

    def test_context_rejects_label_collision(self):
        ctx = ExperimentContext(scale=0.02, benchmarks=["CG"])
        ctx.run("CG", baseline_config())
        with pytest.raises(ConfigurationError, match="share the label"):
            ctx.run("CG", baseline_config(worker_count=4))

    def test_context_handles_non_default_core_count(self):
        # The in-process path must synthesise traces matching the design
        # point's core count, exactly as the campaign workers do.
        ctx = ExperimentContext(scale=0.02, benchmarks=["CG"])
        result = ctx.run("CG", baseline_config(worker_count=4))
        assert len(result.cores) == 5

    def test_context_parallel_matches_serial(self):
        pairs = [
            ("CG", baseline_config()),
            ("CG", worker_shared_config()),
            ("UA", baseline_config()),
            ("UA", worker_shared_config()),
        ]
        serial = ExperimentContext(scale=0.02, benchmarks=["CG", "UA"])
        parallel = ExperimentContext(
            scale=0.02, benchmarks=["CG", "UA"], jobs=2
        )
        parallel.ensure(pairs)
        for name, config in pairs:
            assert result_to_dict(
                parallel.run(name, config)
            ) == result_to_dict(serial.run(name, config))


class TestFaultTolerance:
    """A failing run is retried once, journalled, and never aborts a sweep."""

    def _bad_spec(self):
        return RunSpec(
            benchmark="NO_SUCH_BENCH", config=baseline_config(), scale=0.02
        )

    def test_failure_journalled_and_sweep_completes(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        good = _tiny_spec()
        report = run_specs(
            [good, self._bad_spec()], store=store, strict=False
        )
        assert good.key in report.results
        assert store.get(good) is not None  # the good run still landed
        assert len(report.failures) == 1
        failure = report.failures[0]
        assert failure.attempts == campaign_runner.MAX_ATTEMPTS
        assert "NO_SUCH_BENCH" in failure.spec.benchmark
        assert "FAILED" in report.summary()
        lines = (
            (tmp_path / "cache" / "failures.jsonl").read_text().splitlines()
        )
        assert len(lines) == 1
        entry = json.loads(lines[0])
        assert entry["benchmark"] == "NO_SUCH_BENCH"
        assert entry["attempts"] == campaign_runner.MAX_ATTEMPTS
        assert entry["config"]["worker_count"] == 8
        assert entry["error"]

    def test_strict_raises_after_finishing_everything_else(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        good = _tiny_spec()
        with pytest.raises(SimulationError, match="still failing"):
            run_specs([good, self._bad_spec()], store=store)
        # The sweep was not aborted: the good run is cached and the
        # failure journalled before the raise.
        assert store.get(good) is not None
        assert (tmp_path / "cache" / "failures.jsonl").exists()

    def test_retry_recovers_transient_failure(self, monkeypatch):
        real = campaign_runner.execute_run
        calls = {"n": 0}

        def flaky(spec):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient worker crash")
            return real(spec)

        monkeypatch.setattr(campaign_runner, "execute_run", flaky)
        report = run_specs([_tiny_spec()], strict=True)
        assert not report.failures
        assert len(report.results) == 1
        assert calls["n"] == 2

    def test_parallel_sweep_survives_failures(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        specs = [_tiny_spec(seed=0), _tiny_spec(seed=1), self._bad_spec()]
        report = run_specs(specs, jobs=2, store=store, strict=False)
        assert len(report.results) == 2
        assert len(report.failures) == 1
        assert report.executed == 2

    def test_no_store_still_tolerates_failures(self):
        report = run_specs(
            [_tiny_spec(), self._bad_spec()], strict=False
        )
        assert len(report.results) == 1
        assert len(report.failures) == 1
