"""Tests for the campaign layer: specs, the JSON store, and the runner."""

import json
import shutil
import threading

import pytest

from repro.acmp import baseline_config, result_to_dict, worker_shared_config
from repro.campaign import (
    Campaign,
    ResultStore,
    RunSpec,
    execute_run,
    run_campaign,
    run_specs,
)
from repro.campaign import runner as campaign_runner
from repro.campaign.spec import shard_specs
from repro.campaign.store import merge_stores
from repro.errors import ConfigurationError, SimulationError
from repro.experiments.common import ExperimentContext
from repro.scmp import private_config


def _tiny_spec(benchmark="CG", seed=0, **config_overrides):
    return RunSpec(
        benchmark=benchmark,
        config=baseline_config(**config_overrides),
        seed=seed,
        scale=0.02,
    )


class TestSpec:
    def test_key_identity(self):
        spec = _tiny_spec()
        # The machine model leads the key; it is derived from the
        # config's type through the registry when not given explicitly.
        assert spec.key == ("acmp", "CG", "baseline::32KB::4lb", 0, 0.02)
        assert spec.machine == "acmp"

    def test_campaign_cross_product(self):
        campaign = Campaign(
            name="sweep",
            benchmarks=("CG", "UA"),
            design_points=(baseline_config(), worker_shared_config()),
            seeds=(0, 1, 2),
            scale=0.02,
        )
        runs = campaign.runs()
        assert len(runs) == campaign.size == 2 * 2 * 3
        assert len({spec.key for spec in runs}) == len(runs)

    def test_empty_campaign_rejected(self):
        with pytest.raises(ConfigurationError):
            Campaign(name="x", benchmarks=(), design_points=(baseline_config(),))

    def test_colliding_labels_rejected(self):
        with pytest.raises(ConfigurationError, match="colliding"):
            Campaign(
                name="x",
                benchmarks=("CG",),
                # Same label, different configs: silent collisions in the
                # store would serve wrong results.
                design_points=(
                    baseline_config(),
                    baseline_config(arbitration="icount"),
                ),
            )


class TestResultStore:
    def test_round_trip_across_instances(self, tmp_path):
        spec = _tiny_spec()
        result = execute_run(spec)
        store = ResultStore(tmp_path / "cache")
        assert spec not in store
        store.put(spec, result)
        reopened = ResultStore(tmp_path / "cache")
        assert spec in reopened
        loaded = reopened.get(spec)
        assert result_to_dict(loaded) == result_to_dict(result)
        assert reopened.keys() == [spec.key]

    def test_distinct_keys_distinct_paths(self, tmp_path):
        store = ResultStore(tmp_path)
        paths = {
            store.path_for(_tiny_spec()),
            store.path_for(_tiny_spec(seed=1)),
            store.path_for(_tiny_spec(benchmark="UA")),
            store.path_for(_tiny_spec(line_buffers=8)),
        }
        assert len(paths) == 4

    def test_label_collision_detected_on_load(self, tmp_path):
        # worker_count is not part of the label, so these two specs
        # share a key; the store must refuse to serve one for the other
        # instead of silently returning a different machine's result.
        spec_9core = _tiny_spec()
        spec_5core = _tiny_spec(worker_count=4)
        assert spec_9core.key == spec_5core.key
        store = ResultStore(tmp_path)
        store.put(spec_9core, execute_run(spec_9core))
        with pytest.raises(SimulationError, match="different"):
            store.get(spec_5core)

    def test_warm_l2_mismatch_detected_on_load(self, tmp_path):
        spec_warm = _tiny_spec()
        spec_cold = RunSpec(
            benchmark="CG", config=baseline_config(), seed=0, scale=0.02,
            warm_l2=False,
        )
        store = ResultStore(tmp_path)
        store.put(spec_warm, execute_run(spec_warm))
        with pytest.raises(SimulationError, match="different"):
            store.get(spec_cold)


class TestStoreLegacyFallback:
    """Pre-machine-axis entries stay readable — for acmp scheduled runs
    only, and only when no namespaced entry shadows them."""

    def _relocate_to_legacy(self, store, spec):
        """Move a namespaced entry to the pre-machine-axis location."""
        path = store.path_for(spec)
        legacy = store.root / spec.benchmark / path.name
        legacy.parent.mkdir(parents=True, exist_ok=True)
        shutil.move(path, legacy)
        return legacy

    def test_legacy_entry_served_for_acmp_scheduled(self, tmp_path):
        spec = _tiny_spec()
        result = execute_run(spec)
        store = ResultStore(tmp_path)
        store.put(spec, result)
        self._relocate_to_legacy(store, spec)
        assert spec in store
        assert result_to_dict(store.get(spec)) == result_to_dict(result)
        # keys() walks the legacy layout too (payload header is the
        # authoritative key, machine defaulted to acmp).
        assert store.keys() == [spec.key]

    def test_namespaced_entry_shadows_legacy(self, tmp_path):
        spec = _tiny_spec()
        result = execute_run(spec)
        store = ResultStore(tmp_path)
        store.put(spec, result)
        legacy = self._relocate_to_legacy(store, spec)
        # Corrupt the legacy copy, then write a fresh namespaced entry:
        # reads must prefer the namespaced path and never touch legacy.
        legacy.write_text("{not json")
        store.put(spec, result)
        assert result_to_dict(store.get(spec)) == result_to_dict(result)

    def test_reference_engine_never_reads_legacy(self, tmp_path):
        # Only scheduled-engine acmp runs existed before the machine
        # axis, so a reference-flavor spec must miss even if a file with
        # its exact name sits in the legacy location.
        spec_skip = _tiny_spec()
        result = execute_run(spec_skip)
        store = ResultStore(tmp_path)
        store.put(spec_skip, result)
        legacy = self._relocate_to_legacy(store, spec_skip)
        spec_ref = RunSpec(
            benchmark=spec_skip.benchmark,
            config=spec_skip.config,
            seed=spec_skip.seed,
            scale=spec_skip.scale,
            cycle_skip=False,
        )
        ref_name = store.path_for(spec_ref).name
        (legacy.parent / ref_name).write_text(legacy.read_text())
        assert spec_ref not in store
        assert store.get(spec_ref) is None

    def test_non_acmp_machine_never_reads_legacy(self, tmp_path):
        spec = RunSpec(
            benchmark="CG", config=private_config(core_count=2), scale=0.02
        )
        store = ResultStore(tmp_path)
        # Plant a file at the legacy location under the scmp spec's
        # filename; the fallback is acmp-only, so this must stay unseen.
        legacy = store.root / spec.benchmark / store.path_for(spec).name
        legacy.parent.mkdir(parents=True, exist_ok=True)
        legacy.write_text(json.dumps({"key": list(spec.key), "result": {}}))
        assert spec not in store
        assert store.get(spec) is None


class TestStoreConcurrentWriters:
    """Two runners over one store tree: engine flavors stay separate and
    interleaved writes never corrupt or cross-serve entries."""

    def test_engine_flavors_write_distinct_entries(self, tmp_path):
        spec_skip = _tiny_spec(worker_count=2)
        spec_ref = RunSpec(
            benchmark="CG",
            config=baseline_config(worker_count=2),
            scale=0.02,
            cycle_skip=False,
        )
        store = ResultStore(tmp_path)
        assert store.path_for(spec_skip) != store.path_for(spec_ref)
        assert store.path_for(spec_ref).name.endswith("__ref.json")

        # Two concurrent runners — one per engine flavor — share the
        # tree, as an engine cross-check batch on one host would.
        stores = [ResultStore(tmp_path), ResultStore(tmp_path)]
        reports = {}

        def runner(index, spec):
            reports[index] = run_specs(
                [spec], store=stores[index], name=f"runner-{index}"
            )

        threads = [
            threading.Thread(target=runner, args=(0, spec_skip)),
            threading.Thread(target=runner, args=(1, spec_ref)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert reports[0].executed == reports[1].executed == 1
        assert len(store) == 2  # one entry per flavor, same run key
        # Each flavor round-trips through a fresh store handle; the two
        # engines are bit-identical by contract, so the payloads agree,
        # but each must have been served from its own file.
        fresh = ResultStore(tmp_path)
        skip_loaded = fresh.get(spec_skip)
        ref_loaded = fresh.get(spec_ref)
        assert result_to_dict(skip_loaded) == result_to_dict(ref_loaded)
        # Tampering with the ref entry must not leak into skip reads
        # (i.e. the flavors really are separate files).
        store.path_for(spec_ref).unlink()
        assert fresh.get(spec_ref) is None
        assert fresh.get(spec_skip) is not None

    def test_flavor_mismatch_inside_entry_is_rejected(self, tmp_path):
        spec = _tiny_spec(worker_count=2)
        store = ResultStore(tmp_path)
        store.put(spec, execute_run(spec))
        path = store.path_for(spec)
        payload = json.loads(path.read_text())
        payload["engine"] = "reference"
        path.write_text(json.dumps(payload))
        with pytest.raises(SimulationError, match="never share"):
            store.get(spec)

    def test_interleaved_writers_land_every_entry(self, tmp_path):
        # Two runner threads racing disjoint-but-interleaved spec lists
        # over one tree: every entry lands intact (atomic tmp-file
        # replace), including the spec both runners write.
        result = execute_run(_tiny_spec(worker_count=2))
        specs = [
            _tiny_spec(worker_count=2, seed=seed) for seed in range(6)
        ]
        stores = [ResultStore(tmp_path), ResultStore(tmp_path)]

        def writer(store, mine):
            for spec in mine:
                store.put(spec, result)

        threads = [
            threading.Thread(target=writer, args=(stores[0], specs[:4])),
            threading.Thread(target=writer, args=(stores[1], specs[2:])),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        fresh = ResultStore(tmp_path)
        assert len(fresh) == len(specs)
        for spec in specs:
            assert result_to_dict(fresh.get(spec)) == result_to_dict(result)
        assert not list(fresh.root.rglob("*.tmp"))


class TestSharding:
    """--shard K/N must partition a campaign: disjoint and complete."""

    def _campaign_specs(self):
        return Campaign(
            name="shardable",
            benchmarks=("CG", "UA", "CoMD"),
            design_points=(
                baseline_config(),
                worker_shared_config(),
                private_config(core_count=4),
            ),
            seeds=(0, 1, 2),
            scale=0.02,
        ).runs()

    @pytest.mark.parametrize("count", (1, 2, 3, 4, 7))
    def test_shards_disjoint_and_complete(self, count):
        specs = self._campaign_specs()
        shards = [
            shard_specs(specs, index, count)
            for index in range(1, count + 1)
        ]
        seen = [spec.key for shard in shards for spec in shard]
        assert sorted(seen) == sorted(spec.key for spec in specs)
        assert len(seen) == len(set(seen))

    def test_shard_assignment_is_enumeration_order_independent(self):
        specs = self._campaign_specs()
        forward = {spec.key for spec in shard_specs(specs, 1, 3)}
        backward = {
            spec.key for spec in shard_specs(list(reversed(specs)), 1, 3)
        }
        assert forward == backward

    def test_runner_executes_only_its_shard(self, monkeypatch, tmp_path):
        result = execute_run(_tiny_spec(worker_count=2))
        monkeypatch.setattr(
            campaign_runner, "execute_run", lambda spec: result
        )
        specs = self._campaign_specs()
        keys_by_shard = []
        total_sharded_out = 0
        for index in (1, 2, 3):
            report = run_specs(
                specs, shard=(index, 3), name=f"shard-{index}"
            )
            keys_by_shard.append(set(report.results))
            assert report.sharded_out == len(specs) - len(report.results)
            total_sharded_out += report.sharded_out
        union = set().union(*keys_by_shard)
        assert union == {spec.key for spec in specs}
        assert sum(len(keys) for keys in keys_by_shard) == len(union)
        assert total_sharded_out == 2 * len(specs)


class TestRunner:
    def test_serial_and_parallel_agree(self, tmp_path):
        campaign = Campaign(
            name="agree",
            benchmarks=("CG", "UA"),
            design_points=(baseline_config(),),
            scale=0.02,
        )
        serial = run_campaign(campaign)
        parallel = run_campaign(campaign, jobs=2)
        assert serial.results.keys() == parallel.results.keys()
        for key, result in serial.results.items():
            assert result_to_dict(result) == result_to_dict(
                parallel.results[key]
            )
        assert serial.executed == parallel.executed == 2

    def test_store_caching_across_invocations(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        campaign = Campaign(
            name="cached",
            benchmarks=("CG",),
            design_points=(baseline_config(),),
            seeds=(0, 1),
            scale=0.02,
        )
        first = run_campaign(campaign, store=store)
        assert (first.executed, first.cached) == (2, 0)
        second = run_campaign(campaign, store=store)
        assert (second.executed, second.cached) == (0, 2)
        for key, result in first.results.items():
            assert result_to_dict(result) == result_to_dict(
                second.results[key]
            )

    def test_per_seed_traces_differ(self):
        # Different seeds synthesise different trace realisations, so the
        # runs are genuinely independent samples.
        base = execute_run(_tiny_spec(seed=0))
        other = execute_run(_tiny_spec(seed=7))
        assert base.cycles != other.cycles

    def test_progress_hook_called(self):
        calls = []
        run_specs(
            [_tiny_spec(), _tiny_spec(benchmark="UA")],
            progress=lambda done, total, spec, elapsed: calls.append(
                (done, total)
            ),
        )
        assert calls == [(1, 2), (2, 2)]

    def test_duplicate_specs_run_once(self):
        report = run_specs([_tiny_spec(), _tiny_spec()])
        assert report.total == 1
        assert report.executed == 1

    def test_jobs_clamped_to_host_cpus(self, monkeypatch, caplog):
        monkeypatch.setattr(campaign_runner.os, "cpu_count", lambda: 2)
        with caplog.at_level("WARNING", logger="repro.campaign.runner"):
            report = run_specs(
                [_tiny_spec(), _tiny_spec(benchmark="UA")], jobs=64
            )
        assert report.jobs == 64
        assert report.effective_jobs == 2
        assert "clamping --jobs 64 to 2 host CPU(s)" in caplog.text
        assert "(clamped to 2)" in report.summary()

    def test_jobs_within_host_cpus_not_clamped(self, monkeypatch, caplog):
        monkeypatch.setattr(campaign_runner.os, "cpu_count", lambda: 8)
        with caplog.at_level("WARNING", logger="repro.campaign.runner"):
            report = run_specs([_tiny_spec()], jobs=1)
        assert report.jobs == 1
        assert report.effective_jobs == 1
        assert "clamping" not in caplog.text
        assert "(clamped" not in report.summary()

    def test_colliding_specs_in_one_batch_rejected(self):
        with pytest.raises(ConfigurationError, match="share the key"):
            run_specs([_tiny_spec(), _tiny_spec(worker_count=4)])


class TestFromFailuresResume:
    """failures.jsonl as a resume manifest: recovered runs are pruned
    from it exactly once."""

    def _journal_entry(self, spec):
        from dataclasses import asdict

        return {
            "machine": spec.machine,
            "benchmark": spec.benchmark,
            "label": spec.config.label(),
            "seed": spec.seed,
            "scale": spec.scale,
            "warm_l2": spec.warm_l2,
            "cycle_skip": spec.cycle_skip,
            "engine": spec.engine,
            "config": asdict(spec.config),
            "error": "RuntimeError: transient",
            "attempts": 2,
        }

    def test_cli_resume_prunes_recovered_run_exactly_once(
        self, tmp_path, capsys
    ):
        from repro.campaign.__main__ import main

        store = ResultStore(tmp_path / "cache")
        # A run that failed transiently in some past sweep but succeeds
        # now: journalled, absent from the store.
        spec = _tiny_spec(worker_count=2)
        with store.journal_path.open("a") as journal:
            journal.write(json.dumps(self._journal_entry(spec)) + "\n")

        code = main(
            ["--cache-dir", str(store.root), "--from-failures", "--quiet"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "pruned 1 recovered run(s)" in out
        assert store.get(spec) is not None
        assert store.journalled_failures() == []

        # Second resume: the manifest is empty — the recovered run is
        # not pruned (or executed) a second time.
        code = main(
            ["--cache-dir", str(store.root), "--from-failures", "--quiet"]
        )
        assert code == 0
        assert "pruned" not in capsys.readouterr().out

    def test_prune_drops_only_matching_flavor(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        spec = _tiny_spec(worker_count=2)
        ref_spec = RunSpec(
            benchmark=spec.benchmark,
            config=spec.config,
            seed=spec.seed,
            scale=spec.scale,
            cycle_skip=False,
        )
        with store.journal_path.open("a") as journal:
            journal.write(json.dumps(self._journal_entry(spec)) + "\n")
            journal.write(json.dumps(self._journal_entry(ref_spec)) + "\n")
        # Only the scheduled flavor recovered: the reference cross-check
        # entry must survive the compaction.
        assert store.prune_journal({(spec.key, spec.flavor)}) == 1
        remaining = store.journalled_failures()
        assert len(remaining) == 1
        assert remaining[0]["engine"] == "reference"
        # Re-compacting with the same success set is a no-op: an entry
        # is pruned exactly once.
        assert store.prune_journal({(spec.key, spec.flavor)}) == 0
        assert len(store.journalled_failures()) == 1

    def test_failed_specs_skips_entries_already_in_store(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        spec = _tiny_spec(worker_count=2)
        store.put(spec, execute_run(spec))
        with store.journal_path.open("a") as journal:
            journal.write(json.dumps(self._journal_entry(spec)) + "\n")
        # The run already landed (another shard recovered it): the
        # manifest rebuild must not schedule it again.
        assert store.failed_specs() == []


class TestExperimentContextIntegration:
    def test_context_uses_store(self, tmp_path):
        cache = tmp_path / "cache"
        first = ExperimentContext(
            scale=0.02, benchmarks=["CG"], cache_dir=cache
        )
        result = first.run("CG", baseline_config())
        # A fresh context with the same cache must not re-simulate: the
        # stored result round-trips identically.
        second = ExperimentContext(
            scale=0.02, benchmarks=["CG"], cache_dir=cache
        )
        cached = second.run("CG", baseline_config())
        assert result_to_dict(cached) == result_to_dict(result)
        assert len(ResultStore(cache)) == 1

    def test_context_rejects_label_collision(self):
        ctx = ExperimentContext(scale=0.02, benchmarks=["CG"])
        ctx.run("CG", baseline_config())
        with pytest.raises(ConfigurationError, match="share the label"):
            ctx.run("CG", baseline_config(worker_count=4))

    def test_context_handles_non_default_core_count(self):
        # The in-process path must synthesise traces matching the design
        # point's core count, exactly as the campaign workers do.
        ctx = ExperimentContext(scale=0.02, benchmarks=["CG"])
        result = ctx.run("CG", baseline_config(worker_count=4))
        assert len(result.cores) == 5

    def test_context_parallel_matches_serial(self):
        pairs = [
            ("CG", baseline_config()),
            ("CG", worker_shared_config()),
            ("UA", baseline_config()),
            ("UA", worker_shared_config()),
        ]
        serial = ExperimentContext(scale=0.02, benchmarks=["CG", "UA"])
        parallel = ExperimentContext(
            scale=0.02, benchmarks=["CG", "UA"], jobs=2
        )
        parallel.ensure(pairs)
        for name, config in pairs:
            assert result_to_dict(
                parallel.run(name, config)
            ) == result_to_dict(serial.run(name, config))


class TestFaultTolerance:
    """A failing run is retried once, journalled, and never aborts a sweep."""

    def _bad_spec(self):
        return RunSpec(
            benchmark="NO_SUCH_BENCH", config=baseline_config(), scale=0.02
        )

    def test_failure_journalled_and_sweep_completes(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        good = _tiny_spec()
        report = run_specs(
            [good, self._bad_spec()], store=store, strict=False
        )
        assert good.key in report.results
        assert store.get(good) is not None  # the good run still landed
        assert len(report.failures) == 1
        failure = report.failures[0]
        assert failure.attempts == campaign_runner.MAX_ATTEMPTS
        assert "NO_SUCH_BENCH" in failure.spec.benchmark
        assert "FAILED" in report.summary()
        lines = (
            (tmp_path / "cache" / "failures.jsonl").read_text().splitlines()
        )
        assert len(lines) == 1
        entry = json.loads(lines[0])
        assert entry["benchmark"] == "NO_SUCH_BENCH"
        assert entry["attempts"] == campaign_runner.MAX_ATTEMPTS
        assert entry["config"]["worker_count"] == 8
        assert entry["error"]

    def test_strict_raises_after_finishing_everything_else(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        good = _tiny_spec()
        with pytest.raises(SimulationError, match="still failing"):
            run_specs([good, self._bad_spec()], store=store)
        # The sweep was not aborted: the good run is cached and the
        # failure journalled before the raise.
        assert store.get(good) is not None
        assert (tmp_path / "cache" / "failures.jsonl").exists()

    def test_retry_recovers_transient_failure(self, monkeypatch):
        real = campaign_runner.execute_run
        calls = {"n": 0}

        def flaky(spec):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient worker crash")
            return real(spec)

        monkeypatch.setattr(campaign_runner, "execute_run", flaky)
        report = run_specs([_tiny_spec()], strict=True)
        assert not report.failures
        assert len(report.results) == 1
        assert calls["n"] == 2

    def test_parallel_sweep_survives_failures(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        specs = [_tiny_spec(seed=0), _tiny_spec(seed=1), self._bad_spec()]
        report = run_specs(specs, jobs=2, store=store, strict=False)
        assert len(report.results) == 2
        assert len(report.failures) == 1
        assert report.executed == 2

    def test_no_store_still_tolerates_failures(self):
        report = run_specs(
            [_tiny_spec(), self._bad_spec()], strict=False
        )
        assert len(report.results) == 1
        assert len(report.failures) == 1


class TestJournalForensics:
    """failures.jsonl entries carry when/where/how-long; legacy lines
    without those fields keep parsing."""

    def _bad_spec(self):
        return RunSpec(
            benchmark="NO_SUCH_BENCH", config=baseline_config(), scale=0.02
        )

    def _journal_one_failure(self, root):
        store = ResultStore(root)
        run_specs([self._bad_spec()], store=store, strict=False)
        return store

    def test_new_entries_carry_forensic_fields(self, tmp_path):
        import datetime
        import socket

        store = self._journal_one_failure(tmp_path / "cache")
        (entry,) = store.journalled_failures()
        # ISO-8601, parseable back to an aware datetime.
        stamp = datetime.datetime.fromisoformat(entry["time"])
        assert stamp.tzinfo is not None
        assert entry["host"] == socket.gethostname()
        assert isinstance(entry["duration_s"], float)
        assert entry["duration_s"] >= 0.0

    def test_legacy_lines_without_fields_still_parse(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        spec = self._bad_spec()
        legacy = {
            "machine": spec.machine,
            "benchmark": spec.benchmark,
            "label": spec.config.label(),
            "seed": spec.seed,
            "scale": spec.scale,
            "engine": spec.engine,
            "sampling": spec.sampling,
            "config": {
                "worker_count": spec.config.worker_count,
                "cores_per_cache": spec.config.cores_per_cache,
            },
            "error": "boom",
            "attempts": 2,
        }
        store.journal_path.write_text(json.dumps(legacy) + "\n")
        (entry,) = store.journalled_failures()
        assert "time" not in entry and "host" not in entry
        (rebuilt,) = store.failed_specs()
        assert rebuilt.benchmark == spec.benchmark

    def test_prune_preserves_fields_of_kept_entries(self, tmp_path):
        store = self._journal_one_failure(tmp_path / "cache")
        good = _tiny_spec()
        run_specs([good], store=store, strict=True)
        # Pruning the recovered run must rewrite the journal without
        # stripping the surviving entry's forensic fields.
        assert store.prune_journal({(good.key, good.flavor)}) == 0
        (kept,) = store.journalled_failures()
        assert "time" in kept and "host" in kept and "duration_s" in kept

    def test_merge_preserves_journal_fields(self, tmp_path):
        source = self._journal_one_failure(tmp_path / "source")
        (original,) = source.journalled_failures()
        merge_stores([source.root], tmp_path / "merged")
        merged = ResultStore(tmp_path / "merged")
        assert merged.journalled_failures() == [original]


class TestStoreMaintenance:
    """merge / gc / --status: store-tree upkeep without simulation."""

    def _store_with(self, root, specs_and_results):
        store = ResultStore(root)
        for spec, result in specs_and_results:
            store.put(spec, result)
        return store

    def _result_for(self, spec, cycles=100):
        from repro.machine.results import SimulationResult

        return SimulationResult(
            benchmark=spec.benchmark,
            config_label=spec.config.label(),
            cycles=cycles,
            machine=spec.machine,
        )

    def test_merge_unions_disjoint_trees(self, tmp_path):
        from repro.campaign import merge_stores

        spec_a = _tiny_spec("CG")
        spec_b = _tiny_spec("UA")
        self._store_with(tmp_path / "a", [(spec_a, self._result_for(spec_a))])
        self._store_with(tmp_path / "b", [(spec_b, self._result_for(spec_b))])
        report = merge_stores(
            [tmp_path / "a", tmp_path / "b"], tmp_path / "merged"
        )
        assert report.copied == 2 and report.replaced == 0
        merged = ResultStore(tmp_path / "merged")
        assert merged.get(spec_a).cycles == 100
        assert merged.get(spec_b).cycles == 100

    def test_merge_newest_wins_on_collision(self, tmp_path):
        import os

        from repro.campaign import merge_stores

        spec = _tiny_spec("CG")
        old = self._store_with(
            tmp_path / "old", [(spec, self._result_for(spec, cycles=1))]
        )
        new = self._store_with(
            tmp_path / "new", [(spec, self._result_for(spec, cycles=2))]
        )
        stale = old.path_for(spec)
        fresh = new.path_for(spec)
        os.utime(stale, (1_000_000, 1_000_000))
        os.utime(fresh, (2_000_000, 2_000_000))
        merge_stores([tmp_path / "old"], tmp_path / "merged")
        report = merge_stores([tmp_path / "new"], tmp_path / "merged")
        assert report.replaced == 1
        assert ResultStore(tmp_path / "merged").get(spec).cycles == 2
        # Merging the stale tree back does not regress the entry.
        report = merge_stores([tmp_path / "old"], tmp_path / "merged")
        assert report.skipped == 1
        assert ResultStore(tmp_path / "merged").get(spec).cycles == 2

    def test_merge_unions_failure_journals(self, tmp_path):
        from repro.campaign import merge_stores

        line = json.dumps({"machine": "acmp", "benchmark": "CG"})
        for name in ("a", "b"):
            store = ResultStore(tmp_path / name)
            store.journal_path.write_text(line + "\n")
        merge_stores([tmp_path / "a", tmp_path / "b"], tmp_path / "merged")
        merged = ResultStore(tmp_path / "merged")
        assert len(merged.journalled_failures()) == 1  # deduplicated

    def test_merge_rejects_bad_sources(self, tmp_path):
        from repro.campaign import merge_stores

        with pytest.raises(ConfigurationError, match="not a directory"):
            merge_stores([tmp_path / "missing"], tmp_path / "merged")
        (tmp_path / "tree").mkdir()
        with pytest.raises(ConfigurationError, match="destination itself"):
            merge_stores([tmp_path / "tree"], tmp_path / "tree")

    def test_gc_drops_unparsable_flavors(self, tmp_path):
        spec = _tiny_spec("CG")
        store = self._store_with(
            tmp_path, [(spec, self._result_for(spec))]
        )
        good = store.path_for(spec)
        sampled = RunSpec(
            benchmark="CG",
            config=baseline_config(),
            scale=0.02,
            sampling="fast",
        )
        store.put(sampled, self._result_for(sampled))
        # Three kinds of debris: corrupt JSON, a retired machine model,
        # and an unparsable sampling flavor.
        corrupt = good.parent / "corrupt.json"
        corrupt.write_text("{not json")
        retired = json.loads(good.read_text())
        retired["key"][0] = "retired-machine"
        (good.parent / "retired.json").write_text(json.dumps(retired))
        bad_sampling = json.loads(good.read_text())
        bad_sampling["sampling"] = "x-not-a-plan"
        (good.parent / "badsamp.json").write_text(json.dumps(bad_sampling))

        victims = store.gc(dry_run=True)
        assert len(victims) == 3
        assert len(store) == 5  # dry run removed nothing
        assert len(store.gc()) == 3
        assert len(store) == 2
        assert store.get(spec) is not None
        assert store.get(sampled) is not None

    def test_status_reports_done_failed_pending(self, tmp_path, capsys):
        from repro.campaign.__main__ import main
        from repro.machine.model import get_model

        store = ResultStore(tmp_path)
        model = get_model("acmp")
        points = model.standard_design_points()
        specs = [
            RunSpec(benchmark="CG", config=config, scale=0.02)
            for config in points
        ]
        # Two done, one journalled as failed, the rest pending.
        for spec in specs[:2]:
            store.put(spec, self._result_for(spec))
        failed = specs[2]
        entry = {
            "machine": failed.machine,
            "benchmark": failed.benchmark,
            "label": failed.config.label(),
            "seed": failed.seed,
            "scale": failed.scale,
            "engine": failed.engine,
            "sampling": failed.sampling,
        }
        with store.journal_path.open("a") as journal:
            journal.write(json.dumps(entry) + "\n")

        code = main(
            [
                "--cache-dir", str(tmp_path), "--status", "--machine",
                "acmp", "--benchmarks", "CG", "--scale", "0.02",
                "--shards", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert (
            f"acmp: {len(points)} runs — 2 done, 1 failed, "
            f"{len(points) - 3} pending"
        ) in out
        assert "shard 1/2" in out and "shard 2/2" in out

    def test_sampled_campaign_caches_separately(self, tmp_path):
        full = _tiny_spec("CG", worker_count=2)
        sampled = RunSpec(
            benchmark="CG",
            config=baseline_config(worker_count=2),
            scale=0.02,
            sampling="d1000000:s7000000:w7000000:r0",
        )
        store = ResultStore(tmp_path)
        run_specs([full, sampled], store=store, name="both-flavors")
        assert len(store) == 2
        # The sampled entry carries its annotation; the full one not.
        assert store.get(full).sampling is None
        info = store.get(sampled).sampling
        assert info is not None and info["plan"] == sampled.sampling

    def test_mixed_flavor_batch_prefers_full_detail(self, tmp_path):
        """One batch carrying both flavors of a key: results surfaces
        the full-detail run deterministically, and ``completed`` keeps
        the flavor-exact record for journal compaction."""
        full = _tiny_spec("CG", worker_count=2)
        sampled = RunSpec(
            benchmark="CG",
            config=baseline_config(worker_count=2),
            scale=0.02,
            sampling="d1000000:s7000000:w7000000:r0",
        )
        for batch in ([full, sampled], [sampled, full]):
            report = run_specs(batch, name="mixed")
            assert report.results[full.key].sampling is None
            assert report.completed == {
                (full.key, full.flavor),
                (sampled.key, sampled.flavor),
            }
