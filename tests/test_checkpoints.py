"""The warm-checkpoint store and the batched functional warmer.

Three contracts:

* the :class:`BatchedWarmer` is a pure speedup — the warm state it
  produces is bit-identical to the scalar reference walk's;
* :class:`CheckpointStore` entries are served only under their exact
  identity (header verification, shape digests) and degrade to misses,
  never to wrong state;
* the campaign maintenance commands treat the checkpoint tree as
  first-class: ``gc`` prunes stale/unparsable entries, ``merge``
  unions trees newest-wins.
"""

import os
import time
from dataclasses import replace

import pytest

from repro.campaign.store import ResultStore, merge_stores
from repro.errors import ConfigurationError
from repro.machine.model import get_model
from repro.machine.system import warm_shape_digest
from repro.sampling import (
    BatchedWarmer,
    CheckpointKey,
    CheckpointStore,
    SamplingPlan,
    trace_fingerprint,
)
from repro.sampling.simulator import _warm_interval
from repro.sampling.slicer import IntervalKind, slice_traces
from repro.trace.synthesis import synthesize_benchmark

TINY_PLAN = SamplingPlan(
    detail_instructions=2_000,
    skip_instructions=6_000,
    warmup_instructions=6_000,
)


def _warm_intervals(traces):
    return [
        interval
        for interval in slice_traces(traces, TINY_PLAN)
        if interval.kind is not IntervalKind.SKIP
    ]


class TestBatchedWarmer:
    @pytest.mark.parametrize("machine", ["acmp", "scmp"])
    @pytest.mark.parametrize("point", ["baseline", "shared"])
    def test_batched_walk_is_bit_identical_to_scalar(self, machine, point):
        model = get_model(machine)
        config = (
            model.baseline_config() if point == "baseline"
            else model.shared_config()
        )
        traces = synthesize_benchmark(
            "UA", thread_count=config.core_count, scale=0.2
        )
        intervals = _warm_intervals(traces)
        assert intervals, "probe trace too small to slice"

        scalar = model.build_system(config, traces)
        for interval in intervals:
            _warm_interval(scalar, traces, interval)

        batched = model.build_system(config, traces)
        warmer = BatchedWarmer(batched, traces)
        blocks = sum(warmer.warm_interval(i) for i in intervals)
        assert blocks > 0

        assert (
            batched.capture_warm_state().to_dict()
            == scalar.capture_warm_state().to_dict()
        )

    def test_batched_walk_survives_a_restore(self):
        """Restores adopt snapshot storage; the warmer must keep
        warming the adopted tables, not stranded pre-restore ones."""
        model = get_model("acmp")
        config = model.shared_config()
        traces = synthesize_benchmark(
            "UA", thread_count=config.core_count, scale=0.2
        )
        intervals = _warm_intervals(traces)
        assert len(intervals) >= 2

        scalar = model.build_system(config, traces)
        for interval in intervals:
            _warm_interval(scalar, traces, interval)

        batched = model.build_system(config, traces)
        warmer = BatchedWarmer(batched, traces)
        warmer.warm_interval(intervals[0])
        batched.restore_warm_state(batched.capture_warm_state())
        for interval in intervals[1:]:
            warmer.warm_interval(interval)
        assert (
            batched.capture_warm_state().to_dict()
            == scalar.capture_warm_state().to_dict()
        )


def _key(**overrides):
    fields = dict(
        machine="acmp", benchmark="UA", seed=0, scale=1.0, threads=9,
        fingerprint="a" * 12, plan="d2000:s6000:w6000:r0",
        warm_l2=True, shape="b" * 12,
    )
    fields.update(overrides)
    return CheckpointKey(**fields)


class TestCheckpointStore:
    def test_round_trip(self, tmp_path):
        store = CheckpointStore(tmp_path)
        assert store.get(_key(), 0) is None
        store.put(_key(), 0, {"cores": []}, "shared::32KB")
        assert store.get(_key(), 0) == {"cores": []}
        assert len(store) == 1
        assert store.total_bytes() > 0

    @pytest.mark.parametrize(
        "mismatch",
        [
            {"fingerprint": "c" * 12},
            {"shape": "c" * 12},
            {"machine": "scmp"},
            {"seed": 1},
            {"scale": 0.5},
            {"plan": "d1000:s6000:w6000:r0"},
            {"warm_l2": False},
        ],
    )
    def test_identity_mismatch_is_a_miss(self, tmp_path, mismatch):
        store = CheckpointStore(tmp_path)
        store.put(_key(), 0, {"cores": []})
        other = _key(**mismatch)
        # A differing key lands in a different directory; force the
        # collision by copying the entry onto the other key's path.
        victim = store.path_for(other, 0)
        victim.parent.mkdir(parents=True, exist_ok=True)
        victim.write_bytes(store.path_for(_key(), 0).read_bytes())
        assert store.get(other, 0) is None

    def test_wrong_detail_index_and_corruption_are_misses(self, tmp_path):
        store = CheckpointStore(tmp_path)
        path = store.put(_key(), 2, {"cores": []})
        assert store.get(_key(), 2) == {"cores": []}
        bad = store.path_for(_key(), 3)
        bad.write_bytes(path.read_bytes())  # claims detail=2, named 3
        assert store.get(_key(), 3) is None
        path.write_text("{ not json")
        assert store.get(_key(), 2) is None

    def test_gc_prunes_stale_and_unparsable_entries(self, tmp_path):
        traces = synthesize_benchmark("CG", thread_count=3, scale=0.05)
        live_key = _key(
            benchmark="CG", threads=3, scale=0.05,
            fingerprint=trace_fingerprint(traces),
        )
        store = CheckpointStore(tmp_path)
        live = store.put(live_key, 0, {"cores": []})
        stale = store.put(replace(live_key, fingerprint="d" * 12), 0, {})
        retired = store.put(_key(machine="vliw9000"), 0, {})
        corrupt = store.path_for(_key(benchmark="BT"), 0)
        corrupt.parent.mkdir(parents=True, exist_ok=True)
        corrupt.write_text("{ not json")

        preview = set(store.gc(dry_run=True))
        assert preview == {stale, retired, corrupt}
        assert all(path.exists() for path in preview)
        assert set(store.gc()) == preview
        assert live.exists()
        assert not any(path.exists() for path in preview)

    def test_merge_unions_checkpoint_trees_newest_wins(self, tmp_path):
        roots = [tmp_path / name for name in ("host_a", "host_b", "merged")]
        for root in roots:
            ResultStore(root)  # materialise the result-store trees
        key = _key()
        store_a = CheckpointStore(roots[0] / CheckpointStore.SUBDIR)
        store_b = CheckpointStore(roots[1] / CheckpointStore.SUBDIR)
        store_a.put(key, 0, {"writer": "a"})
        store_a.put(key, 1, {"writer": "a"})
        store_b.put(key, 1, {"writer": "b"})
        store_b.put(key, 2, {"writer": "b"})
        # Host B's detail1 is strictly newer than host A's.
        newer = time.time() + 10
        os.utime(store_b.path_for(key, 1), (newer, newer))

        report = merge_stores([roots[0], roots[1]], roots[2])
        assert report.checkpoints >= 3
        assert "checkpoint" in report.summary()
        merged = CheckpointStore(roots[2] / CheckpointStore.SUBDIR)
        assert merged.get(key, 0) == {"writer": "a"}
        assert merged.get(key, 1) == {"writer": "b"}
        assert merged.get(key, 2) == {"writer": "b"}


class TestShapeDigest:
    def test_digest_ignores_timing_but_not_geometry(self):
        model = get_model("acmp")
        config = model.baseline_config()
        digest = warm_shape_digest(config, model.build_topology(config))
        again = warm_shape_digest(config, model.build_topology(config))
        assert digest == again
        bigger = model.baseline_config(worker_icache_bytes=64 * 1024)
        assert digest != warm_shape_digest(
            bigger, model.build_topology(bigger)
        )

    def test_restore_refuses_a_different_shape(self):
        model = get_model("acmp")
        config = model.baseline_config()
        traces = synthesize_benchmark(
            "CG", thread_count=config.core_count, scale=0.05
        )
        state = model.build_system(config, traces).capture_warm_state()
        bigger = model.baseline_config(worker_icache_bytes=64 * 1024)
        target = model.build_system(bigger, traces)
        with pytest.raises(ConfigurationError, match="design point"):
            target.restore_warm_state(state)
