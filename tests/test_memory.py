"""Unit tests for the DRAM model, memory controller and L2 hierarchy."""

import pytest

from repro.memory import (
    DramModel,
    DramTimings,
    FcfsBus,
    InstructionHierarchy,
    MemoryController,
)


class TestDramTimings:
    def test_ddr3_1600_defaults(self):
        timings = DramTimings()
        assert timings.tck_ns == 1.25
        assert timings.row_hit_ns() == pytest.approx((11 + 4) * 1.25)
        assert timings.row_miss_ns() == pytest.approx((11 + 11 + 11 + 4) * 1.25)


class TestDramModel:
    def test_row_hit_faster_than_miss(self):
        dram = DramModel()
        first = dram.access(0x0000, now=0)  # row miss (cold)
        # Lines interleave across 8 banks, so the next line in bank 0 is
        # 8 lines away; it shares the open row.
        second = dram.access(0x0000 + 64 * 8, now=first)
        assert first == dram.row_miss_cycles
        assert second - first == dram.row_hit_cycles
        assert dram.stats.row_hits == 1
        assert dram.stats.row_misses == 1

    def test_row_conflict_reopens(self):
        dram = DramModel(row_bytes=8192, bank_count=8)
        done1 = dram.access(0x0000, now=0)
        # Same bank, different row: 8 banks x 64 B interleave means
        # +8*64 hits the same bank; row differs at 8 KB granularity.
        conflict_address = 8192 * 8  # same bank 0, different row
        done2 = dram.access(conflict_address, now=done1)
        assert done2 - done1 == dram.row_miss_cycles

    def test_busy_bank_serialises(self):
        dram = DramModel()
        first = dram.access(0x0000, now=0)
        second = dram.access(0x0000, now=0)  # same bank, must queue
        assert second > first
        assert dram.stats.busy_wait_cycles > 0

    def test_different_banks_overlap(self):
        dram = DramModel()
        first = dram.access(0x0000, now=0)
        second = dram.access(0x0040, now=0)  # bank 1: starts immediately
        assert second <= first + dram.row_hit_cycles


class TestFcfsBus:
    def test_latency_applied(self):
        bus = FcfsBus(width_bytes=32, latency=4)
        assert bus.schedule(now=10, payload_bytes=64) == 10 + 4

    def test_back_to_back_contention(self):
        bus = FcfsBus(width_bytes=32, latency=4)
        first = bus.schedule(now=0, payload_bytes=64)
        second = bus.schedule(now=0, payload_bytes=64)
        assert first == 4
        assert second == 6  # waits 2 transfer cycles
        assert bus.stats.wait_cycles == 2

    def test_idle_bus_no_wait(self):
        bus = FcfsBus()
        bus.schedule(now=0)
        bus.schedule(now=100)
        assert bus.stats.wait_cycles == 0


class TestMemoryController:
    def test_fetch_line_roundtrip(self):
        controller = MemoryController()
        done = controller.fetch_line(0x1000, now=0)
        # Request bus latency + DRAM row miss + response bus latency.
        minimum = 4 + controller.dram.row_miss_cycles + 4
        assert done >= minimum

    def test_contention_across_requests(self):
        controller = MemoryController()
        first = controller.fetch_line(0x0000, now=0)
        second = controller.fetch_line(0x0000, now=0)  # same bank
        assert second > first


class TestInstructionHierarchy:
    def test_l2_hit_is_20_cycles(self):
        hierarchy = InstructionHierarchy(MemoryController())
        hierarchy.l2.fill(0x1000)
        result = hierarchy.fetch_line(0x1000, now=100)
        assert result.l2_hit
        assert result.completion_cycle == 120

    def test_l2_miss_goes_to_dram(self):
        hierarchy = InstructionHierarchy(MemoryController())
        result = hierarchy.fetch_line(0x2000, now=0)
        assert not result.l2_hit
        assert result.completion_cycle > 20 + 8

    def test_l2_learns_line(self):
        hierarchy = InstructionHierarchy(MemoryController())
        first = hierarchy.fetch_line(0x3000, now=0)
        second = hierarchy.fetch_line(0x3000, now=first.completion_cycle)
        assert not first.l2_hit
        assert second.l2_hit

    def test_paper_l2_geometry(self):
        hierarchy = InstructionHierarchy(MemoryController())
        assert hierarchy.l2.size_bytes == 1024 * 1024
        assert hierarchy.l2.ways == 32
        assert hierarchy.l2_latency == 20
