"""Unit tests for trace containers and streams."""

import pytest

from repro.errors import TraceError
from repro.trace.records import (
    BasicBlockRecord,
    EndRecord,
    IpcRecord,
    SyncKind,
    SyncRecord,
)
from repro.trace.stream import ThreadTrace, TraceSet, TraceStream


def _parallel_trace(thread_id=0):
    return ThreadTrace(
        thread_id=thread_id,
        records=[
            BasicBlockRecord(0x100, 5),
            SyncRecord(SyncKind.PARALLEL_START, 0),
            BasicBlockRecord(0x200, 7),
            BasicBlockRecord(0x300, 9),
            SyncRecord(SyncKind.PARALLEL_END, 0),
            BasicBlockRecord(0x400, 3),
        ],
    )


class TestThreadTrace:
    def test_instruction_count(self):
        assert _parallel_trace().instruction_count == 24

    def test_region_split(self):
        trace = _parallel_trace()
        parallel = list(trace.parallel_region_blocks())
        serial = list(trace.serial_region_blocks())
        assert [b.address for b in parallel] == [0x200, 0x300]
        assert [b.address for b in serial] == [0x100, 0x400]

    def test_unbalanced_end_raises(self):
        trace = ThreadTrace(0, [SyncRecord(SyncKind.PARALLEL_END, 0)])
        with pytest.raises(TraceError):
            list(trace.parallel_region_blocks())

    def test_negative_thread_id_rejected(self):
        with pytest.raises(TraceError):
            ThreadTrace(thread_id=-1)


class TestTraceSet:
    def test_master_and_workers(self):
        trace_set = TraceSet(
            benchmark="demo",
            threads=[_parallel_trace(0), _parallel_trace(1)],
        )
        assert trace_set.master.thread_id == 0
        assert len(trace_set.workers) == 1
        assert trace_set.instruction_count == 48

    def test_thread_id_mismatch_rejected(self):
        with pytest.raises(TraceError):
            TraceSet(benchmark="demo", threads=[_parallel_trace(1)])

    def test_empty_master_raises(self):
        with pytest.raises(TraceError):
            TraceSet(benchmark="demo", threads=[]).master


class TestTraceStream:
    def test_peek_does_not_consume(self):
        stream = TraceStream([BasicBlockRecord(0x100, 1), IpcRecord(1.0)])
        first = stream.peek()
        assert stream.peek() is first
        assert stream.consumed == 0

    def test_next_consumes_in_order(self):
        records = [BasicBlockRecord(0x100, 1), IpcRecord(1.0)]
        stream = TraceStream(records)
        assert stream.next() is records[0]
        assert stream.next() is records[1]
        assert stream.consumed == 2

    def test_exhaustion_returns_end_record(self):
        stream = TraceStream([])
        assert isinstance(stream.peek(), EndRecord)
        assert isinstance(stream.next(), EndRecord)
        assert stream.exhausted
        assert stream.consumed == 0

    def test_exhausted_after_draining(self):
        stream = TraceStream([BasicBlockRecord(0x100, 1)])
        assert not stream.exhausted
        stream.next()
        assert stream.exhausted
