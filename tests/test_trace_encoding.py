"""Round-trip and error tests for the trace codecs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TraceFormatError
from repro.trace.encoding import (
    decode_thread_trace,
    encode_thread_trace,
    format_thread_trace,
    parse_thread_trace,
    read_trace_set,
    write_trace_set,
)
from repro.trace.records import (
    BasicBlockRecord,
    BranchKind,
    BranchOutcome,
    EndRecord,
    IpcRecord,
    SyncKind,
    SyncRecord,
)
from repro.trace.stream import ThreadTrace, TraceSet

_branches = st.one_of(
    st.none(),
    st.builds(
        BranchOutcome,
        kind=st.sampled_from(
            [BranchKind.CONDITIONAL, BranchKind.INDIRECT]
        ),
        taken=st.booleans(),
        target=st.integers(min_value=0, max_value=2**40),
    ),
    st.builds(
        BranchOutcome,
        kind=st.just(BranchKind.UNCONDITIONAL),
        taken=st.just(True),
        target=st.integers(min_value=0, max_value=2**40),
    ),
)

_records = st.one_of(
    st.builds(
        BasicBlockRecord,
        address=st.integers(min_value=0, max_value=2**40),
        instruction_count=st.integers(min_value=1, max_value=500),
        branch=_branches,
    ),
    st.builds(
        SyncRecord,
        kind=st.sampled_from(list(SyncKind)),
        object_id=st.integers(min_value=0, max_value=1000),
    ),
    st.builds(IpcRecord, ipc=st.floats(min_value=0.01, max_value=16.0)),
    st.just(EndRecord()),
)


class TestBinaryCodec:
    @given(st.lists(_records, max_size=100), st.integers(min_value=0, max_value=100))
    @settings(max_examples=50)
    def test_roundtrip(self, records, thread_id):
        trace = ThreadTrace(thread_id=thread_id, records=records)
        decoded = decode_thread_trace(encode_thread_trace(trace))
        assert decoded.thread_id == trace.thread_id
        assert decoded.records == trace.records

    def test_bad_magic_rejected(self):
        data = encode_thread_trace(ThreadTrace(0, []))
        with pytest.raises(TraceFormatError, match="magic"):
            decode_thread_trace(b"XXXX" + data[4:])

    def test_truncated_rejected(self):
        trace = ThreadTrace(0, [BasicBlockRecord(0x100, 4)])
        data = encode_thread_trace(trace)
        with pytest.raises(TraceFormatError):
            decode_thread_trace(data[:-2])

    def test_trailing_bytes_rejected(self):
        data = encode_thread_trace(ThreadTrace(0, []))
        with pytest.raises(TraceFormatError, match="trailing"):
            decode_thread_trace(data + b"\x00")

    def test_short_header_rejected(self):
        with pytest.raises(TraceFormatError):
            decode_thread_trace(b"RI")


class TestTextCodec:
    @given(st.lists(_records, max_size=60), st.integers(min_value=0, max_value=50))
    @settings(max_examples=50)
    def test_roundtrip_structure(self, records, thread_id):
        trace = ThreadTrace(thread_id=thread_id, records=records)
        parsed = parse_thread_trace(format_thread_trace(trace))
        assert parsed.thread_id == trace.thread_id
        assert len(parsed.records) == len(trace.records)
        for original, reparsed in zip(trace.records, parsed.records):
            if isinstance(original, IpcRecord):
                assert reparsed.ipc == pytest.approx(original.ipc)
            else:
                assert reparsed == original

    def test_missing_header_rejected(self):
        with pytest.raises(TraceFormatError):
            parse_thread_trace("B 0x100 4")

    def test_garbage_line_rejected(self):
        with pytest.raises(TraceFormatError, match="line 2"):
            parse_thread_trace("# thread 0\nZ nonsense")


class TestTraceSetIo:
    def test_write_read_roundtrip(self, tmp_path):
        trace_set = TraceSet(
            benchmark="demo",
            threads=[
                ThreadTrace(0, [BasicBlockRecord(0x100, 4), IpcRecord(1.5)]),
                ThreadTrace(1, [SyncRecord(SyncKind.PARALLEL_START, 0)]),
            ],
        )
        write_trace_set(trace_set, tmp_path / "traces")
        loaded = read_trace_set(tmp_path / "traces")
        assert loaded.benchmark == "demo"
        assert loaded.thread_count == 2
        assert loaded.threads[0].records == trace_set.threads[0].records
        assert loaded.threads[1].records == trace_set.threads[1].records

    def test_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(TraceFormatError, match="manifest"):
            read_trace_set(tmp_path)
