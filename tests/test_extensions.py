"""Tests for the Section VII future-work extensions.

The paper's conclusion proposes evaluating (a) SMT-style fetch policies as
the I-bus arbitration ("the arbitration policy on an I-bus becomes the
fetching policy") and (b) sharing more front-end structures such as the
branch predictor. Both are implemented as configuration options; these
tests exercise them end-to-end, plus the crossbar interconnect option.
"""

import pytest

from repro.acmp import baseline_config, simulate, worker_shared_config
from repro.errors import ConfigurationError
from repro.power import worker_cluster_area
from repro.trace.synthesis import synthesize_benchmark


@pytest.fixture(scope="module")
def ua_traces():
    return synthesize_benchmark("UA", thread_count=9, scale=0.15)


class TestArbitrationPolicies:
    @pytest.mark.parametrize(
        "policy",
        ["round-robin", "fixed-priority", "least-recently-granted", "icount"],
    )
    def test_policies_run_to_completion(self, ua_traces, policy):
        config = worker_shared_config(
            cores_per_cache=8, icache_kb=32, bus_count=1, arbitration=policy
        )
        result = simulate(config, ua_traces)
        assert result.total_committed == ua_traces.instruction_count

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            worker_shared_config(arbitration="lottery")

    def test_policies_change_timing(self, ua_traces):
        cycles = {}
        for policy in ("round-robin", "fixed-priority"):
            config = worker_shared_config(
                cores_per_cache=8, icache_kb=32, bus_count=1, arbitration=policy
            )
            cycles[policy] = simulate(config, ua_traces).cycles
        # Unfair arbitration starves high-id cores; completion time of the
        # whole job should not beat the fair policy by much, and typically
        # loses. At minimum the policies must be distinguishable.
        assert cycles["round-robin"] != cycles["fixed-priority"]


class TestSharedFetchPredictor:
    def test_requires_shared_topology(self):
        with pytest.raises(ConfigurationError):
            baseline_config(shared_fetch_predictor=True)

    def test_runs_and_commits(self, ua_traces):
        config = worker_shared_config(
            cores_per_cache=8, icache_kb=32, bus_count=2,
            shared_fetch_predictor=True,
        )
        result = simulate(config, ua_traces)
        assert result.total_committed == ua_traces.instruction_count

    def test_predictor_stats_not_multiplied(self, ua_traces):
        config = worker_shared_config(
            cores_per_cache=8, icache_kb=32, bus_count=2,
            shared_fetch_predictor=True,
        )
        result = simulate(config, ua_traces)
        workers = result.cores[1:]
        reporting = [core for core in workers if core.branch_lookups > 0]
        # One group-level predictor: exactly one worker reports its stats.
        assert len(reporting) == 1

    def test_cross_thread_training_reduces_mispredicts(self):
        # All threads run the same code: a shared predictor sees each
        # branch 8x as often and should mispredict less per instruction.
        traces = synthesize_benchmark("DC", thread_count=9, scale=0.15)
        private = simulate(
            worker_shared_config(cores_per_cache=8, icache_kb=32, bus_count=2),
            traces,
        )
        shared = simulate(
            worker_shared_config(
                cores_per_cache=8, icache_kb=32, bus_count=2,
                shared_fetch_predictor=True,
            ),
            traces,
        )
        private_mispredicts = sum(c.branch_mispredictions for c in private.cores[1:])
        shared_mispredicts = sum(c.branch_mispredictions for c in shared.cores[1:])
        # Not a strict win (data-dependent branches stay random), but the
        # loop-exit training must not get worse.
        assert shared_mispredicts <= private_mispredicts * 1.2


class TestCrossbar:
    def test_rejected_on_bad_name(self):
        with pytest.raises(ConfigurationError):
            worker_shared_config(interconnect="mesh")

    def test_crossbar_runs(self, ua_traces):
        config = worker_shared_config(
            cores_per_cache=8, icache_kb=32, bus_count=2, interconnect="crossbar"
        )
        result = simulate(config, ua_traces)
        assert result.total_committed == ua_traces.instruction_count

    def test_crossbar_costs_more_area_than_bus(self):
        bus = worker_cluster_area(
            worker_shared_config(bus_count=2, interconnect="bus")
        ).total
        crossbar = worker_cluster_area(
            worker_shared_config(bus_count=2, interconnect="crossbar")
        ).total
        assert crossbar > bus

    def test_crossbar_not_slower_than_single_bus(self, ua_traces):
        single = simulate(
            worker_shared_config(cores_per_cache=8, icache_kb=32, bus_count=1),
            ua_traces,
        )
        crossbar = simulate(
            worker_shared_config(
                cores_per_cache=8, icache_kb=32, bus_count=2,
                interconnect="crossbar",
            ),
            ua_traces,
        )
        assert crossbar.cycles <= single.cycles
