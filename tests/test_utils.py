"""Unit tests for repro.utils helpers."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.utils import (
    RunningStats,
    align_down,
    align_up,
    geometric_mean,
    harmonic_mean,
    is_power_of_two,
    log2_int,
    mask,
    require,
    require_positive,
    require_power_of_two,
    require_range,
)


class TestBits:
    def test_is_power_of_two_accepts_powers(self):
        for exponent in range(20):
            assert is_power_of_two(1 << exponent)

    def test_is_power_of_two_rejects_non_powers(self):
        for value in (0, -1, 3, 6, 12, 100):
            assert not is_power_of_two(value)

    def test_log2_int(self):
        assert log2_int(1) == 0
        assert log2_int(64) == 6
        assert log2_int(32 * 1024) == 15

    def test_log2_int_rejects_non_power(self):
        with pytest.raises(ConfigurationError):
            log2_int(48)

    def test_mask(self):
        assert mask(0) == 0
        assert mask(6) == 63
        assert mask(16) == 0xFFFF

    def test_mask_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            mask(-1)

    def test_align_down(self):
        assert align_down(0x12345, 64) == 0x12340
        assert align_down(64, 64) == 64

    def test_align_up(self):
        assert align_up(0x12341, 64) == 0x12380
        assert align_up(128, 64) == 128

    def test_align_rejects_non_power(self):
        with pytest.raises(ConfigurationError):
            align_down(10, 3)
        with pytest.raises(ConfigurationError):
            align_up(10, 3)

    @given(st.integers(min_value=0, max_value=2**40), st.integers(min_value=0, max_value=20))
    def test_align_down_up_bracket(self, address, shift):
        alignment = 1 << shift
        down = align_down(address, alignment)
        up = align_up(address, alignment)
        assert down <= address <= up
        assert down % alignment == 0
        assert up % alignment == 0
        assert up - down in (0, alignment)


class TestRunningStats:
    def test_empty(self):
        stats = RunningStats()
        assert stats.count == 0
        assert stats.mean == 0.0
        assert stats.stddev == 0.0

    def test_known_values(self):
        stats = RunningStats()
        stats.extend([2.0, 4.0, 6.0])
        assert stats.count == 3
        assert stats.mean == pytest.approx(4.0)
        assert stats.total == pytest.approx(12.0)
        assert stats.minimum == 2.0
        assert stats.maximum == 6.0
        assert stats.variance == pytest.approx(8.0 / 3.0)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=200))
    def test_matches_batch_mean(self, samples):
        stats = RunningStats()
        stats.extend(samples)
        assert stats.mean == pytest.approx(sum(samples) / len(samples), abs=1e-6)


class TestMeans:
    def test_geometric_mean(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)
        assert geometric_mean([]) == 0.0

    def test_geometric_mean_rejects_non_positive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_harmonic_mean(self):
        assert harmonic_mean([1, 1]) == pytest.approx(1.0)
        assert harmonic_mean([2, 6, 6]) == pytest.approx(3 / (0.5 + 1 / 6 + 1 / 6))
        assert harmonic_mean([]) == 0.0

    @given(st.lists(st.floats(min_value=0.01, max_value=1e4), min_size=1, max_size=50))
    def test_mean_ordering(self, values):
        # harmonic <= geometric <= arithmetic for positive values
        arithmetic = sum(values) / len(values)
        assert harmonic_mean(values) <= geometric_mean(values) + 1e-9
        assert geometric_mean(values) <= arithmetic + 1e-9


class TestValidation:
    def test_require(self):
        require(True, "fine")
        with pytest.raises(ConfigurationError, match="broken"):
            require(False, "broken")

    def test_require_positive(self):
        require_positive(1, "x")
        with pytest.raises(ConfigurationError):
            require_positive(0, "x")

    def test_require_power_of_two(self):
        require_power_of_two(16, "x")
        with pytest.raises(ConfigurationError):
            require_power_of_two(18, "x")

    def test_require_range(self):
        require_range(0.5, 0.0, 1.0, "x")
        with pytest.raises(ConfigurationError):
            require_range(1.5, 0.0, 1.0, "x")

    def test_stats_nan_free(self):
        assert not math.isnan(RunningStats().mean)
