"""Tests for the EXPERIMENTS.md renderer."""

from repro.experiments.common import ExperimentResult
from repro.experiments.export import SHAPE_CHECKS, ShapeCheck, render_markdown
from repro.experiments.registry import experiment_ids


def _result(experiment_id="fig01", **summary):
    return ExperimentResult(
        experiment_id=experiment_id,
        title="demo",
        headers=["a"],
        rows=[["x"]],
        rendered="a\n-\nx",
        summary=summary,
    )


class TestShapeCheck:
    def test_pass_and_fail(self):
        check = ShapeCheck("claim", "~2", "value", 1.0, 3.0)
        measured, ok = check.evaluate(_result(value=2.0))
        assert ok and measured == "2.000"
        measured, ok = check.evaluate(_result(value=5.0))
        assert not ok

    def test_missing_key(self):
        check = ShapeCheck("claim", "~2", "absent", 1.0, 3.0)
        measured, ok = check.evaluate(_result())
        assert not ok and measured == "(missing)"


class TestCoverage:
    def test_every_experiment_has_checks(self):
        assert set(SHAPE_CHECKS) == set(experiment_ids())

    def test_all_checks_have_valid_ranges(self):
        for checks in SHAPE_CHECKS.values():
            for check in checks:
                assert check.low <= check.high


class TestRender:
    def test_renders_pass_counts(self):
        results = [
            _result(
                experiment_id="fig01",
                crossover_percent=1.8,
                measured_speedup_amean=1.05,
            )
        ]
        markdown = render_markdown(results, scale=1.0)
        assert "Shape checks passed: 2/2." in markdown
        assert "## fig01" in markdown
        assert "| yes |" in markdown

    def test_renders_failures_visibly(self):
        results = [_result(experiment_id="fig01", crossover_percent=50.0)]
        markdown = render_markdown(results, scale=1.0)
        assert "| NO |" in markdown

    def test_seed_interval_rendered(self):
        check = ShapeCheck("claim", "~2", "value", 1.0, 3.0)
        measured, ok = check.evaluate(
            _result(value=2.0, value_ci95=0.12, seed_count=3.0)
        )
        assert ok
        # The whole confidence band sits inside the acceptance
        # interval: the claim holds across trace realisations.
        assert measured == "2.000 ± 0.120 (95% CI, 3 seeds, CI-stable)"

    def test_seed_interval_fragility_rendered(self):
        check = ShapeCheck("claim", "~2", "value", 1.0, 3.0)
        measured, ok = check.evaluate(
            _result(value=2.9, value_ci95=0.5, seed_count=3.0)
        )
        assert ok  # the mean passes ...
        # ... but the band crosses the boundary: a lucky-seed pass.
        assert measured == "2.900 ± 0.500 (95% CI, 3 seeds, CI-fragile)"
