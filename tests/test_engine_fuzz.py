"""Randomized cross-engine equivalence fuzzing (seeded, deterministic).

The hand-picked grid in ``tests/test_scheduler_equivalence.py`` pins
one configuration per known scheduler path. This harness instead draws
whole design points at random — topology (core count, cores per cache),
interconnect shape (bus count, *bus width*, crossbar vs multi-bus,
arbitration policy), front-end geometry (FTQ/IQ capacity, line buffers,
iTLB sharing) and the workload mix (benchmark, synthesis seed, scale) —
from a fixed PRNG seed list, and asserts the scheduled engine stays
bit-identical to the cycle-by-cycle reference engine on every draw, for
both registered machine models. Every seed is an independent
reproducible case: a failure report names the seed, and re-running just
that parametrization replays the identical machine and workload.

The random axes deliberately stress the commit-replay fast path: small
and large instruction queues change how often a quiescent front-end
leaves a draining back-end behind, narrow buses stretch fill latencies
(longer replay windows), and sub-unit serial IPC scaling on the scmp
exercises replay windows that mix pacing and commit cycles.
"""

import random

import pytest

from repro.acmp import AcmpConfig, result_to_dict
from repro.errors import DeadlockError
from repro.machine import simulate
from repro.scmp import ScmpConfig
from repro.trace.records import (
    BasicBlockRecord,
    BranchKind,
    BranchOutcome,
    IpcRecord,
    SyncKind,
    SyncRecord,
)
from repro.trace.stream import ThreadTrace, TraceSet
from repro.trace.synthesis import synthesize_benchmark

#: Fixed fuzz seeds; each draws one (config, workload) pair per machine.
#: Extend this list to widen coverage — every entry must stay green.
FUZZ_SEEDS = tuple(range(1, 13))

#: Seeds for the redirect-heavy draw (independent trajectory: adding or
#: reordering rng calls there cannot re-roll the base FUZZ_SEEDS cases).
REDIRECT_FUZZ_SEEDS = tuple(range(1, 7))

#: Benchmarks the workload draw mixes over: the two equivalence-grid
#: staples plus mixes with heavier sync (CoEVP), larger footprints
#: (CoMD) and a different phase structure (BT).
_BENCH_POOL = ("CG", "UA", "BT", "CoMD", "CoEVP")


def _draw_common(rng: random.Random) -> dict:
    """Machine-neutral substrate axes shared by both models."""
    itlb = rng.random() < 0.4
    return {
        "bus_count": rng.choice((1, 2)),
        "bus_width_bytes": rng.choice((8, 16, 32)),
        "bus_latency": rng.choice((1, 2, 3)),
        "line_buffers": rng.choice((2, 4, 8)),
        "ftq_capacity": rng.choice((4, 8)),
        "iq_capacity": rng.choice((16, 32, 64, 128)),
        "interconnect": rng.choice(("bus", "crossbar")),
        "itlb_enabled": itlb,
        "mshr_capacity": rng.choice((4, 16)),
    }


def _draw_acmp(rng: random.Random) -> AcmpConfig:
    workers = rng.choice((2, 4, 8))
    divisors = [d for d in (1, 2, 4, 8) if d <= workers and workers % d == 0]
    cpc = rng.choice(divisors)
    common = _draw_common(rng)
    shared = cpc > 1
    return AcmpConfig(
        worker_count=workers,
        cores_per_cache=cpc,
        worker_icache_bytes=rng.choice((16, 32)) * 1024,
        arbitration=rng.choice(("round-robin", "icount"))
        if shared
        else "round-robin",
        shared_itlb=common["itlb_enabled"] and shared and rng.random() < 0.5,
        **common,
    )


def _draw_scmp(rng: random.Random) -> ScmpConfig:
    cores = rng.choice((2, 4, 8))
    divisors = [d for d in (1, 2, 4, 8) if d <= cores and cores % d == 0]
    cpc = rng.choice(divisors)
    common = _draw_common(rng)
    shared = cpc > 1
    return ScmpConfig(
        core_count_total=cores,
        cores_per_cache=cpc,
        icache_bytes=rng.choice((16, 32)) * 1024,
        serial_ipc_scale=rng.choice((0.4, 0.5, 0.7, 1.0)),
        arbitration=rng.choice(("round-robin", "icount"))
        if shared
        else "round-robin",
        shared_itlb=common["itlb_enabled"] and shared and rng.random() < 0.5,
        **common,
    )


def _draw_workload(rng: random.Random, core_count: int):
    """One benchmark realisation: name × synthesis seed × scale."""
    bench = rng.choice(_BENCH_POOL)
    return synthesize_benchmark(
        bench,
        thread_count=core_count,
        scale=rng.choice((0.02, 0.03)),
        seed=rng.randrange(1 << 16),
    )


_DRAWERS = {"acmp": _draw_acmp, "scmp": _draw_scmp}

#: Stable per-machine salt (``hash(str)`` is randomized per process and
#: would re-roll every pinned draw on each run).
_SALT = {"acmp": 0xAC, "scmp": 0x5C}

# -- redirect-heavy draws ---------------------------------------------------
#
# The base draw rarely lingers in mispredict-redirect windows: penalties
# are the defaults and the benchmark pool leans predictable. This second
# draw family stresses the redirect-replay fast path specifically — the
# highest calibrated branch-MPKI workloads, stretched penalties, deep
# FTQs (more drain to batch) and double-bus interconnects (fill latency
# landing *inside* the redirect window).

#: The five workloads with the highest calibrated parallel branch MPKI.
_REDIRECT_BENCH_POOL = ("DC", "CoEVP", "imagick", "fma3d", "botsspar")

_REDIRECT_SALT = {"acmp": 0x4AAC, "scmp": 0x4A5C}


def _draw_redirect_common(rng: random.Random) -> dict:
    """Substrate axes biased toward long, frequent redirect windows."""
    itlb = rng.random() < 0.4
    return {
        "bus_count": 2,  # double-bus: fills straddle redirect windows
        "bus_width_bytes": rng.choice((8, 16)),
        "bus_latency": rng.choice((2, 3)),
        "line_buffers": rng.choice((2, 4)),
        "ftq_capacity": rng.choice((8, 16)),  # deep FTQs: more to drain
        "iq_capacity": rng.choice((16, 32)),
        "interconnect": "bus",
        "itlb_enabled": itlb,
        "mshr_capacity": rng.choice((4, 16)),
    }


def _draw_redirect_acmp(rng: random.Random) -> AcmpConfig:
    workers = rng.choice((2, 4))
    cpc = rng.choice([d for d in (1, 2, 4) if d <= workers])
    common = _draw_redirect_common(rng)
    shared = cpc > 1
    return AcmpConfig(
        worker_count=workers,
        cores_per_cache=cpc,
        worker_icache_bytes=rng.choice((16, 32)) * 1024,
        mispredict_penalty_master=rng.choice((12, 20)),
        mispredict_penalty_worker=rng.choice((8, 16)),
        arbitration=rng.choice(("round-robin", "icount"))
        if shared
        else "round-robin",
        shared_itlb=common["itlb_enabled"] and shared and rng.random() < 0.5,
        **common,
    )


def _draw_redirect_scmp(rng: random.Random) -> ScmpConfig:
    cores = rng.choice((2, 4))
    cpc = rng.choice([d for d in (1, 2, 4) if d <= cores])
    common = _draw_redirect_common(rng)
    shared = cpc > 1
    return ScmpConfig(
        core_count_total=cores,
        cores_per_cache=cpc,
        icache_bytes=rng.choice((16, 32)) * 1024,
        serial_ipc_scale=rng.choice((0.5, 1.0)),
        mispredict_penalty=rng.choice((8, 16, 24)),
        arbitration=rng.choice(("round-robin", "icount"))
        if shared
        else "round-robin",
        shared_itlb=common["itlb_enabled"] and shared and rng.random() < 0.5,
        **common,
    )


_REDIRECT_DRAWERS = {"acmp": _draw_redirect_acmp, "scmp": _draw_redirect_scmp}


def _draw_redirect_workload(rng: random.Random, core_count: int):
    bench = rng.choice(_REDIRECT_BENCH_POOL)
    return synthesize_benchmark(
        bench,
        thread_count=core_count,
        scale=rng.choice((0.02, 0.03)),
        seed=rng.randrange(1 << 16),
    )


@pytest.mark.parametrize("machine", sorted(_DRAWERS))
@pytest.mark.parametrize("fuzz_seed", FUZZ_SEEDS)
def test_fuzzed_engines_bit_identical(machine, fuzz_seed):
    rng = random.Random((fuzz_seed << 8) ^ _SALT[machine])
    config = _DRAWERS[machine](rng)
    traces = _draw_workload(rng, config.core_count)
    scheduled = simulate(config, traces, cycle_skip=True)
    stepped = simulate(config, traces, cycle_skip=False)
    assert result_to_dict(scheduled) == result_to_dict(stepped), (
        f"seed {fuzz_seed}: scheduled != reference for {machine} "
        f"{config.label()} on {traces.benchmark}"
    )
    # The payload equality above is the contract; spot-check the axes
    # that make it meaningful (same work happened, nothing was elided
    # into oblivion).
    assert scheduled.total_committed == traces.instruction_count
    assert scheduled.cycles == stepped.cycles


@pytest.mark.parametrize("machine", sorted(_REDIRECT_DRAWERS))
@pytest.mark.parametrize("fuzz_seed", REDIRECT_FUZZ_SEEDS)
def test_redirect_heavy_engines_bit_identical(machine, fuzz_seed):
    rng = random.Random((fuzz_seed << 8) ^ _REDIRECT_SALT[machine])
    config = _REDIRECT_DRAWERS[machine](rng)
    traces = _draw_redirect_workload(rng, config.core_count)
    scheduled = simulate(config, traces, cycle_skip=True)
    stepped = simulate(config, traces, cycle_skip=False)
    assert result_to_dict(scheduled) == result_to_dict(stepped), (
        f"seed {fuzz_seed}: scheduled != reference for {machine} "
        f"{config.label()} on {traces.benchmark}"
    )
    assert scheduled.total_committed == traces.instruction_count
    assert scheduled.cycles == stepped.cycles


# -- streamed-source draws --------------------------------------------------
#
# Same spirit, different source: each draw round-trips its workload
# through the chunked on-disk format and asserts the scheduled engine
# is bit-identical across sources. This is the fuzzing leg of the
# trace-ingestion differential battery — random topologies and
# workloads instead of the fixed grid in test_streamed_differential.

#: Independent salt so the streamed draws never share a trajectory with
#: the pinned base/redirect families.
_STREAM_SALT = {"acmp": 0x57AC, "scmp": 0x575C}

STREAM_FUZZ_SEEDS = tuple(range(1, 5))


@pytest.mark.parametrize("machine", sorted(_DRAWERS))
@pytest.mark.parametrize("fuzz_seed", STREAM_FUZZ_SEEDS)
def test_fuzzed_streamed_source_bit_identical(machine, fuzz_seed, tmp_path):
    from repro.trace import open_trace_set, write_trace_set

    rng = random.Random((fuzz_seed << 8) ^ _STREAM_SALT[machine])
    config = _DRAWERS[machine](rng)
    traces = _draw_workload(rng, config.core_count)
    write_trace_set(traces, tmp_path / "set", chunked=True, chunk_records=256)
    streamed = open_trace_set(tmp_path / "set")
    memory = simulate(config, traces, cycle_skip=True)
    disk = simulate(config, streamed, cycle_skip=True)
    assert result_to_dict(memory) == result_to_dict(disk), (
        f"seed {fuzz_seed}: streamed != in-memory for {machine} "
        f"{config.label()} on {traces.benchmark}"
    )
    assert memory.total_committed == traces.instruction_count


def _mispredict_storm(base: int, blocks: int) -> list:
    """Blocks ending in never-before-seen not-taken conditionals.

    gshare counters initialise weakly taken, so each fresh index
    predicts taken; a not-taken outcome at a fresh branch address is a
    near-certain mispredict, and not-taken outcomes keep the global
    history at zero so distinct addresses keep hitting fresh counters.
    The result: a dense stream of redirect drain/penalty windows.
    """
    return [
        BasicBlockRecord(
            base + index * 64,
            8,
            BranchOutcome(BranchKind.CONDITIONAL, False, 0),
        )
        for index in range(blocks)
    ]


def _redirect_deadlock_traces() -> TraceSet:
    """Phantom-phase hang reached through a mispredict storm: the
    healthy threads burn through dense redirect windows right up to the
    final sync, then block; worker 2 waits on a phase the master never
    starts. The watchdog must fire at the stepped engine's exact cycle
    even though the scheduled engine batched the preceding redirects."""
    master = [
        IpcRecord(1.0),
        *_mispredict_storm(0x10000, 40),
        SyncRecord(SyncKind.PARALLEL_START, 0),
        IpcRecord(2.0),
        *_mispredict_storm(0x20000, 40),
        SyncRecord(SyncKind.PARALLEL_END, 0),
    ]
    worker = [
        SyncRecord(SyncKind.PARALLEL_START, 0),
        IpcRecord(1.0),
        *_mispredict_storm(0x30000, 40),
        SyncRecord(SyncKind.PARALLEL_END, 0),
    ]
    bad_worker = [
        SyncRecord(SyncKind.PARALLEL_START, 7),
        IpcRecord(1.0),
        BasicBlockRecord(0x40000, 8),
        SyncRecord(SyncKind.PARALLEL_END, 7),
    ]
    return TraceSet(
        "redirect-phantom-phase",
        [
            ThreadTrace(0, master),
            ThreadTrace(1, worker),
            ThreadTrace(2, bad_worker),
        ],
    )


@pytest.mark.parametrize(
    ("label", "config"),
    [
        (
            "acmp-long-penalty",
            AcmpConfig(
                worker_count=2,
                mispredict_penalty_master=20,
                mispredict_penalty_worker=16,
                ftq_capacity=16,
            ),
        ),
        (
            "scmp-shared-long-penalty",
            ScmpConfig(
                core_count_total=3,
                cores_per_cache=3,
                bus_count=2,
                mispredict_penalty=24,
                ftq_capacity=16,
            ),
        ),
    ],
    ids=lambda v: v if isinstance(v, str) else "",
)
def test_deadlock_identity_through_redirect_windows(label, config):
    traces = _redirect_deadlock_traces()
    with pytest.raises(DeadlockError) as scheduled:
        simulate(config, traces, cycle_skip=True)
    with pytest.raises(DeadlockError) as stepped:
        simulate(config, traces, cycle_skip=False)
    assert str(scheduled.value) == str(stepped.value)
    assert "phase 7" in str(scheduled.value)


def test_seed_list_is_stable():
    """The draw for a given seed never drifts: seed 1's acmp config is
    pinned field by field, so an inserted or reordered rng call (which
    would silently re-roll every fuzz case) fails loudly here."""
    rng = random.Random((1 << 8) ^ _SALT["acmp"])
    config = _draw_acmp(rng)
    assert config == AcmpConfig(
        worker_count=4,
        cores_per_cache=1,
        worker_icache_bytes=32 * 1024,
        arbitration="round-robin",
        interconnect="crossbar",
        bus_count=1,
        bus_width_bytes=32,
        bus_latency=2,
        line_buffers=4,
        ftq_capacity=4,
        iq_capacity=64,
        itlb_enabled=False,
        shared_itlb=False,
        mshr_capacity=4,
    )
    # The workload draw is part of the pinned trajectory too.
    traces = _draw_workload(rng, config.core_count)
    assert (traces.benchmark, traces.thread_count) == ("CoEVP", 5)
