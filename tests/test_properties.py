"""Cross-module property-based tests on simulator invariants."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.acmp import AcmpConfig, simulate
from repro.errors import WorkloadError
from repro.interconnect import Bus
from repro.trace.synthesis import synthesize
from repro.trace.validation import validate_trace_set
from repro.workloads.model import WorkloadModel


def _make_model(
    bb_parallel: float,
    body_factor: float,
    trips: int,
    serial_pct: float,
    ipc_worker: float,
    phases: int,
) -> WorkloadModel:
    body = bb_parallel * body_factor
    return WorkloadModel(
        name="prop",
        suite="NPB",
        serial_fraction=serial_pct / 100.0,
        bb_bytes_serial=24,
        bb_bytes_parallel=bb_parallel,
        loop_body_bytes_serial=96,
        loop_body_bytes_parallel=body,
        inner_trips_serial=10,
        inner_trips_parallel=trips,
        footprint_serial_bytes=2048,
        footprint_parallel_bytes=max(4096, int(body * 2)),
        cold_mpki_serial=10.0,
        cold_mpki_parallel=0.2,
        branch_mpki_serial=4.0,
        branch_mpki_parallel=1.0,
        sharing_dynamic=0.99,
        sharing_static=0.97,
        ipc_master_serial=1.8,
        ipc_master_parallel=2.0,
        ipc_worker_parallel=ipc_worker,
        parallel_phases=phases,
        uses_critical_sections=False,
        imbalance=0.05,
        parallel_instructions=3000,
    )


model_params = st.tuples(
    st.floats(min_value=16, max_value=400),  # bb_parallel bytes
    st.floats(min_value=1.0, max_value=8.0),  # body factor
    st.integers(min_value=1, max_value=40),  # trips
    st.floats(min_value=0.0, max_value=20.0),  # serial %
    st.floats(min_value=0.3, max_value=2.0),  # worker IPC
    st.integers(min_value=1, max_value=3),  # phases
)


class TestSynthesisProperties:
    @given(model_params)
    @settings(max_examples=20, deadline=None)
    def test_synthesized_traces_always_validate(self, params):
        model = _make_model(*params)
        traces = synthesize(model, thread_count=3, scale=1.0)
        report = validate_trace_set(traces)
        assert report.parallel_phase_count == model.parallel_phases
        assert report.total_instructions > 0

    @given(model_params)
    @settings(max_examples=10, deadline=None)
    def test_worker_budget_met(self, params):
        model = _make_model(*params)
        traces = synthesize(model, thread_count=3, scale=1.0)
        budget = model.scaled_parallel_instructions(1.0)
        for worker in traces.workers:
            executed = sum(
                b.instruction_count for b in worker.parallel_region_blocks()
            )
            # The walker may overshoot by at most ~one basic block per
            # phase chunk; it must never undershoot.
            assert executed >= budget
            assert executed <= budget * 1.5 + 64 * model.parallel_phases


class TestSimulationConservation:
    @given(
        cpc=st.sampled_from([1, 2, 4]),
        bus_count=st.sampled_from([1, 2]),
        line_buffers=st.sampled_from([2, 4, 8]),
        policy=st.sampled_from(["lru", "plru", "fifo"]),
    )
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_all_instructions_commit_everywhere(
        self, cpc, bus_count, line_buffers, policy
    ):
        model = _make_model(96.0, 3.0, 10, 2.0, 0.8, 2)
        traces = synthesize(model, thread_count=5, scale=1.0)
        config = AcmpConfig(
            worker_count=4,
            cores_per_cache=cpc,
            bus_count=bus_count,
            line_buffers=line_buffers,
            icache_policy=policy,
        )
        result = simulate(config, traces)
        assert result.total_committed == traces.instruction_count
        # CPI stack consistency: base + stalls == active cycles per core.
        for core in result.cores:
            assert core.base_cycles + core.total_stalls >= 0
        # Access-ratio bounds.
        assert 0.0 <= result.worker_access_ratio() <= 1.0
        # Cache accounting.
        for group in result.cache_groups:
            assert group.hits + group.misses == group.accesses
            assert group.compulsory_misses <= group.misses


class TestBusProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),
                st.integers(min_value=0, max_value=10),
            ),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_every_request_eventually_granted(self, requests):
        bus = Bus(requester_count=4)
        for requester, delay in requests:
            bus.request(requester, 0x40 * requester, now=delay)
        grants = 0
        for cycle in range(2000):
            if bus.step(cycle) is not None:
                grants += 1
            if grants == len(requests):
                break
        assert grants == len(requests)
        assert bus.stats.transactions == len(requests)
        per_requester = sum(bus.stats.per_requester_transactions.values())
        assert per_requester == len(requests)

    @given(st.integers(min_value=1, max_value=6))
    @settings(max_examples=10, deadline=None)
    def test_utilization_bounded(self, n):
        bus = Bus(requester_count=n)
        for requester in range(n):
            bus.request(requester, 0x40 * requester, now=0)
        total = 4 * n
        for cycle in range(total):
            bus.step(cycle)
        assert 0.0 <= bus.stats.utilization(total) <= 1.0


class TestModelValidationProperty:
    @given(
        st.floats(min_value=-10, max_value=120),
    )
    @settings(max_examples=25)
    def test_serial_fraction_bounds_enforced(self, serial_pct):
        if 0.0 <= serial_pct / 100.0 < 1.0:
            _make_model(96.0, 2.0, 5, serial_pct, 0.8, 1)
        else:
            with pytest.raises(WorkloadError):
                _make_model(96.0, 2.0, 5, serial_pct, 0.8, 1)
