"""Integration tests for the full ACMP system and simulator."""

import pytest

from repro.acmp import (
    AcmpConfig,
    all_shared_config,
    baseline_config,
    build_topology,
    simulate,
    worker_shared_config,
)
from repro.errors import ConfigurationError
from repro.trace.synthesis import synthesize_benchmark


@pytest.fixture(scope="module")
def cg_traces():
    return synthesize_benchmark("CG", thread_count=9, scale=0.15)


@pytest.fixture(scope="module")
def cg_baseline(cg_traces):
    return simulate(baseline_config(), cg_traces)


class TestConfig:
    def test_table1_defaults(self):
        config = AcmpConfig()
        assert config.worker_count == 8
        assert config.worker_icache_bytes == 32 * 1024
        assert config.icache_ways == 8
        assert config.icache_latency == 1
        assert config.line_buffers == 4
        assert config.bus_width_bytes == 32
        assert config.bus_latency == 2
        assert config.arbitration == "round-robin"
        assert config.gshare_bytes == 16 * 1024
        assert config.loop_predictor_entries == 256
        assert config.l2_bytes == 1024 * 1024
        assert config.l2_latency == 20

    def test_invalid_cpc_rejected(self):
        with pytest.raises(ConfigurationError):
            AcmpConfig(cores_per_cache=3)
        with pytest.raises(ConfigurationError):
            AcmpConfig(cores_per_cache=16)

    def test_all_shared_requires_full_group(self):
        with pytest.raises(ConfigurationError):
            AcmpConfig(all_shared=True, cores_per_cache=4)

    def test_labels(self):
        assert baseline_config().label() == "baseline::32KB::4lb"
        assert (
            worker_shared_config().label() == "cpc=8::16KB::4lb::double-bus"
        )
        assert "all-shared" in all_shared_config().label()


class TestTopology:
    def test_baseline_private_groups(self):
        topology = build_topology(baseline_config())
        assert topology.icache_count == 9
        assert all(not group.shared for group in topology.groups)

    def test_cpc4_two_worker_groups(self):
        topology = build_topology(
            worker_shared_config(cores_per_cache=4, icache_kb=32)
        )
        assert topology.icache_count == 3  # master + two worker groups
        shared = topology.shared_groups
        assert len(shared) == 2
        assert shared[0].core_ids == (1, 2, 3, 4)
        assert shared[1].core_ids == (5, 6, 7, 8)

    def test_all_shared_single_group(self):
        topology = build_topology(all_shared_config())
        assert topology.icache_count == 1
        assert topology.groups[0].core_ids == tuple(range(9))

    def test_group_of(self):
        topology = build_topology(worker_shared_config())
        assert topology.group_of(0).core_ids == (0,)
        assert 5 in topology.group_of(5).core_ids
        with pytest.raises(KeyError):
            topology.group_of(99)


class TestSimulation:
    def test_all_instructions_commit(self, cg_traces, cg_baseline):
        assert cg_baseline.total_committed == cg_traces.instruction_count

    def test_cycle_count_positive_and_bounded(self, cg_traces, cg_baseline):
        assert cg_baseline.cycles > 0
        # Sanity: cannot be faster than the master's trace at max IPC.
        assert cg_baseline.cycles > cg_traces.master.instruction_count / 16

    def test_deterministic(self, cg_traces):
        first = simulate(baseline_config(), cg_traces)
        second = simulate(baseline_config(), cg_traces)
        assert first.cycles == second.cycles
        assert first.worker_icache_misses() == second.worker_icache_misses()

    def test_thread_count_mismatch_rejected(self, cg_traces):
        with pytest.raises(ConfigurationError):
            simulate(AcmpConfig(worker_count=4), cg_traces)

    def test_shared_commits_everything_too(self, cg_traces):
        shared = simulate(
            worker_shared_config(cores_per_cache=8, icache_kb=32, bus_count=1),
            cg_traces,
        )
        assert shared.total_committed == cg_traces.instruction_count

    def test_sharing_reduces_worker_misses(self, cg_traces, cg_baseline):
        # Fig. 11: cross-thread prefetching cuts worker I-cache misses.
        shared = simulate(
            worker_shared_config(cores_per_cache=8, icache_kb=32, bus_count=1),
            cg_traces,
        )
        assert shared.worker_icache_misses() < cg_baseline.worker_icache_misses()

    def test_shared_16kb_beats_private_32kb_misses(self, cg_traces, cg_baseline):
        # Fig. 11: even a 16 KB shared I-cache misses less than 8x32 KB private.
        shared = simulate(worker_shared_config(), cg_traces)
        assert shared.worker_icache_misses() < cg_baseline.worker_icache_misses()

    def test_bus_traffic_only_in_shared_configs(self, cg_traces, cg_baseline):
        shared = simulate(
            worker_shared_config(cores_per_cache=8, icache_kb=32, bus_count=1),
            cg_traces,
        )
        assert all(g.bus_transactions == 0 for g in cg_baseline.cache_groups)
        assert any(g.bus_transactions > 0 for g in shared.cache_groups)

    def test_all_shared_runs(self, cg_traces):
        result = simulate(all_shared_config(), cg_traces)
        assert result.total_committed == cg_traces.instruction_count
        assert len(result.cache_groups) == 1

    def test_cpi_stack_components_sum(self, cg_baseline):
        stack = cg_baseline.cpi_stack()
        assert stack["base"] > 0
        workers = cg_baseline.cores[1:]
        total_cycles = sum(
            core.base_cycles + core.total_stalls for core in workers
        )
        committed = sum(core.committed for core in workers)
        assert sum(stack.values()) == pytest.approx(total_cycles / committed)

    def test_access_ratio_in_unit_range(self, cg_baseline):
        ratio = cg_baseline.worker_access_ratio()
        assert 0.0 <= ratio <= 1.0

    def test_critical_sections_hand_off(self):
        traces = synthesize_benchmark("botsspar", thread_count=9, scale=0.1)
        result = simulate(baseline_config(), traces)
        assert result.lock_hand_offs >= 0
        assert result.total_committed == traces.instruction_count


class TestWarmup:
    def test_warm_l2_reduces_time(self, cg_traces):
        cold = simulate(baseline_config(), cg_traces, warm_l2=False)
        warm = simulate(baseline_config(), cg_traces, warm_l2=True)
        assert warm.cycles <= cold.cycles

    def test_warm_l2_keeps_icache_misses(self, cg_traces):
        cold = simulate(baseline_config(), cg_traces, warm_l2=False)
        warm = simulate(baseline_config(), cg_traces, warm_l2=True)
        assert warm.worker_icache_misses() == cold.worker_icache_misses()
