"""Integration tests for the experiment drivers (shape fidelity checks).

Run on a reduced benchmark subset and scale so the whole module stays
fast; the full-scale runs live in benchmarks/ and EXPERIMENTS.md.
"""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.common import ExperimentContext
from repro.experiments.registry import (
    EXPERIMENTS,
    experiment_ids,
    run_experiment,
)

#: Small but informative subset: a bus-sensitive code (UA), a tight-loop
#: code (CG), a long-block code (BT) and the high-MPKI outlier (CoEVP).
SUBSET = ["BT", "CG", "UA", "CoEVP"]


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(scale=0.2, benchmarks=SUBSET)


class TestRegistry:
    def test_all_paper_artifacts_covered(self):
        expected = {
            "fig01",
            "fig02",
            "fig03",
            "fig04",
            "table1",
            "fig07",
            "fig08",
            "fig09",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
        }
        assert set(experiment_ids()) == expected

    def test_unknown_id_rejected(self):
        with pytest.raises(ConfigurationError):
            run_experiment("fig99")

    def test_id_normalisation(self, ctx):
        result = run_experiment("Fig 01", ctx)
        assert result.experiment_id == "fig01"


class TestAnalyticExperiments:
    def test_fig01_crossover(self, ctx):
        result = run_experiment("fig01", ctx)
        assert 1.0 < result.summary["crossover_percent"] < 3.0

    def test_fig01_cross_machine_measurement(self, ctx):
        # fig01's simulated half compares two machine models through
        # the campaign layer; the ACMP should not lose on average once
        # serial phases replay at the lean core's rate on the SCMP.
        result = run_experiment("fig01", ctx)
        assert result.summary["measured_speedup_amean"] >= 0.99
        assert 0.0 <= result.summary["acmp_win_fraction"] <= 1.0

    def test_table1_matches_paper(self):
        result = run_experiment("table1")
        assert result.summary["all_match"] == 1.0


class TestCharacterisationExperiments:
    def test_fig02_ratio(self, ctx):
        result = run_experiment("fig02", ctx)
        assert result.summary["amean_ratio"] > 2.0

    def test_fig03_coevp_outlier(self, ctx):
        result = run_experiment("fig03", ctx)
        assert result.summary["coevp_parallel_mpki"] == pytest.approx(1.27, rel=0.5)
        assert (
            result.summary["max_other_parallel_mpki"]
            < result.summary["coevp_parallel_mpki"]
        )

    def test_fig04_sharing(self, ctx):
        result = run_experiment("fig04", ctx)
        assert result.summary["mean_dynamic_sharing_percent"] > 97.0


class TestTimingExperiments:
    def test_fig07_shape(self, ctx):
        result = run_experiment("fig07", ctx)
        # Slowdown grows with sharing degree; UA degrades most at cpc=8.
        assert result.summary["mean_cpc8_ratio"] >= result.summary["mean_cpc2_ratio"]
        assert result.summary["worst_cpc8_ratio"] > 1.05

    def test_fig08_bus_domination(self, ctx):
        result = run_experiment("fig08", ctx)
        assert result.summary["bus_dominated_count"] >= len(SUBSET) - 1

    def test_fig09_line_buffer_split(self, ctx):
        result = run_experiment("fig09", ctx)
        # CG (tight loops) must sit far below BT (large bodies).
        by_name = {row[0]: row for row in result.rows}
        assert by_name["CG"][2] < 30.0  # 4 LB column, percent
        assert by_name["BT"][2] > 60.0

    def test_fig10_double_bus_recovers(self, ctx):
        result = run_experiment("fig10", ctx)
        assert result.summary["mean_double_bus"] < result.summary["mean_naive"] + 1e-9
        assert result.summary["mean_double_bus"] == pytest.approx(1.0, abs=0.03)

    def test_fig11_sharing_cuts_misses(self, ctx):
        result = run_experiment("fig11", ctx)
        assert result.summary["mean_ratio_32kb_percent"] < 80.0
        assert result.summary["mean_ratio_16kb_percent"] < 100.0

    def test_fig12_headline_savings(self, ctx):
        result = run_experiment("fig12", ctx)
        assert result.summary["area_4_LB_double_bus"] == pytest.approx(0.89, abs=0.03)
        assert result.summary["energy_4_LB_double_bus"] < 1.0
        assert result.summary["time_4_LB_double_bus"] == pytest.approx(1.0, abs=0.03)

    def test_fig13_serial_fraction_trend(self, ctx):
        result = run_experiment("fig13", ctx)
        assert (
            result.summary["high_serial_mean_ratio"]
            >= result.summary["low_serial_mean_ratio"] - 0.01
        )


class TestRenderedOutput:
    def test_every_experiment_renders(self, ctx):
        for experiment_id in experiment_ids():
            result = run_experiment(experiment_id, ctx)
            assert result.rendered
            assert result.headers
            assert str(result).startswith(f"== {experiment_id}")

    def test_results_memoised_across_figures(self, ctx):
        # Figs 7 and 8 share the cpc=8 naive run: the context cache must
        # contain exactly one entry for that design point per benchmark.
        run_experiment("fig07", ctx)
        before = len(ctx._results)
        run_experiment("fig08", ctx)
        after = len(ctx._results)
        assert after == before  # no extra simulations needed


class TestSeedSweeps:
    def test_mean_ci_math(self):
        from repro.experiments.common import mean_ci

        single = mean_ci([2.0])
        assert (single.mean, single.half_width, single.n) == (2.0, 0.0, 1)
        triple = mean_ci([1.0, 2.0, 3.0])
        assert triple.mean == 2.0
        assert triple.n == 3
        # s = 1, se = 1/sqrt(3), t(df=2, 95%) = 4.303
        assert triple.half_width == pytest.approx(4.303 / 3**0.5, rel=1e-3)
        assert "±" in str(triple)

    def test_seed_sweep_orders_and_dedupes(self):
        sweep_ctx = ExperimentContext(
            scale=0.02, benchmarks=["CG"], seed=1, seeds=(0, 1, 2)
        )
        assert sweep_ctx.seed_sweep == (1, 0, 2)
        assert ExperimentContext(scale=0.02).seed_sweep == (0,)

    def test_fig07_surfaces_interval(self):
        sweep_ctx = ExperimentContext(
            scale=0.03, benchmarks=["CG", "UA"], seeds=(1, 2)
        )
        result = run_experiment("fig07", sweep_ctx)
        assert "seed sweep, n=3" in result.rendered
        assert "mean_cpc8_ratio_ci95" in result.summary
        assert result.summary["seed_count"] == 3.0
        assert result.summary["mean_cpc8_ratio_ci95"] >= 0.0

    def test_single_seed_output_unchanged(self):
        plain = ExperimentContext(scale=0.03, benchmarks=["CG"])
        result = run_experiment("fig07", plain)
        assert "seed sweep" not in result.rendered
        assert "mean_cpc8_ratio_ci95" not in result.summary
