"""Tests for the machine-model abstraction layer.

Covers the registry (lookup, config-type resolution, duplicate
protection), the symmetric-CMP model's topology and serial-IPC replay
scaling, serialization round-trips for every registered model with
cross-model rejection, the machine/engine-aware result store (legacy
acmp entries included), campaign sharding, and the interconnect
busy-cycle batching.
"""

import json

import pytest

from repro.acmp import AcmpConfig, baseline_config, worker_shared_config
from repro.campaign import (
    ResultStore,
    RunSpec,
    execute_run,
    parse_shard,
    run_specs,
    shard_specs,
)
from repro.errors import ConfigurationError, SimulationError
from repro.machine import (
    get_model,
    model_for_config,
    model_names,
    register_model,
    result_from_dict,
    result_to_dict,
    scale_serial_ipc,
    simulate,
)
from repro.machine.simulator import SystemSimulator
from repro.scmp import ScmpConfig, banked_config, private_config
from repro.scmp.topology import build_topology
from repro.trace.records import IpcRecord, SyncKind, SyncRecord
from repro.trace.synthesis import synthesize_benchmark


class TestRegistry:
    def test_builtin_models_known(self):
        assert model_names() == ["acmp", "scmp"]
        assert get_model("acmp").name == "acmp"
        assert get_model("scmp").name == "scmp"

    def test_unknown_model_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown machine"):
            get_model("tpu")

    def test_config_type_resolution(self):
        assert model_for_config(baseline_config()).name == "acmp"
        assert model_for_config(private_config()).name == "scmp"
        with pytest.raises(ConfigurationError, match="no registered"):
            model_for_config(object())

    def test_reregistering_same_model_is_noop(self):
        model = get_model("scmp")
        assert register_model(model) is model

    def test_conflicting_registration_rejected(self):
        class Impostor:
            name = "acmp"
            config_type = dict

        with pytest.raises(ConfigurationError, match="already registered"):
            register_model(Impostor())

    def test_config_space_builds_valid_configs(self):
        # Every value of every swept dimension must construct, alone,
        # a valid configuration of its model.
        for name in model_names():
            model = get_model(name)
            space = model.config_space()
            assert space
            for dimension, values in space.items():
                for value in values:
                    model.default_config(**{dimension: value})

    def test_standard_design_points_have_unique_labels(self):
        for name in model_names():
            points = get_model(name).standard_design_points()
            labels = [config.label() for config in points]
            assert len(set(labels)) == len(labels) >= 2

    def test_result_schema_names_machine(self):
        for name in model_names():
            assert get_model(name).result_schema()["machine"] == name


class TestScmpModel:
    def test_uniform_topology_has_no_master_group(self):
        topology = build_topology(
            banked_config(cores_per_cache=4, core_count=8)
        )
        assert topology.icache_count == 2
        assert topology.groups[0].core_ids == (0, 1, 2, 3)
        assert topology.groups[1].core_ids == (4, 5, 6, 7)

    def test_divisibility_enforced(self):
        with pytest.raises(ConfigurationError):
            ScmpConfig(core_count_total=6, cores_per_cache=4)

    def test_sub_line_iq_capacity_rejected(self):
        # A queue smaller than one fetch line can never accept a
        # line-sized fetch piece: the machine would hang, so the
        # substrate config rejects it up front (for every model).
        with pytest.raises(ConfigurationError, match="full\\s+fetch line"):
            ScmpConfig(core_count_total=4, iq_capacity=8)
        with pytest.raises(ConfigurationError, match="full\\s+fetch line"):
            AcmpConfig(worker_count=4, iq_capacity=15)
        # One full line is the smallest legal capacity.
        assert AcmpConfig(worker_count=4, iq_capacity=16).iq_capacity == 16

    def test_labels_are_namespaced(self):
        assert private_config().label() == "scmp8::private::32KB::4lb"
        assert (
            banked_config().label() == "scmp8::cpc=8::16KB::4lb::double-bus"
        )

    def test_serial_ipc_scaling_only_touches_serial_sections(self):
        records = [
            IpcRecord(2.0),  # serial
            SyncRecord(SyncKind.PARALLEL_START, 0),
            IpcRecord(2.0),  # parallel: untouched
            SyncRecord(SyncKind.PARALLEL_END, 0),
            IpcRecord(2.0),  # serial again
        ]
        scaled = scale_serial_ipc(records, 0.5)
        assert [r.ipc for r in scaled if isinstance(r, IpcRecord)] == [
            1.0,
            2.0,
            1.0,
        ]

    def test_lean_serial_replay_slows_master_thread(self):
        traces = synthesize_benchmark("CoMD", thread_count=9, scale=0.05)
        lean = simulate(private_config(core_count=9), traces)
        big = simulate(
            private_config(core_count=9, serial_ipc_scale=1.0), traces
        )
        assert lean.cycles > big.cycles
        assert lean.machine == big.machine == "scmp"

    def test_scmp_committed_matches_traces(self):
        traces = synthesize_benchmark("CG", thread_count=8, scale=0.03)
        result = simulate(banked_config(), traces)
        assert result.total_committed == traces.instruction_count


@pytest.fixture(scope="module")
def per_model_results():
    """One small simulated result per registered machine model."""
    results = {}
    for name in model_names():
        model = get_model(name)
        config = model.default_config()
        traces = synthesize_benchmark(
            "CG", thread_count=config.core_count, scale=0.02
        )
        results[name] = simulate(config, traces)
    return results


class TestCrossModelSerialization:
    """Every model's results survive JSON round-trips and reject
    payloads from a different model with a clear error."""

    def test_round_trip_every_model(self, per_model_results):
        for name, result in per_model_results.items():
            payload = result_to_dict(result)
            assert payload["machine"] == name
            rebuilt = result_from_dict(json.loads(json.dumps(payload)))
            assert result_to_dict(rebuilt) == payload
            assert rebuilt.machine == name

    def test_expected_machine_accepts_own_payload(self, per_model_results):
        for name, result in per_model_results.items():
            rebuilt = result_from_dict(
                result_to_dict(result), expect_machine=name
            )
            assert rebuilt.cycles == result.cycles

    def test_cross_model_payload_rejected(self, per_model_results):
        names = list(per_model_results)
        for name in names:
            for other in names:
                if other == name:
                    continue
                with pytest.raises(SimulationError, match="machine model"):
                    result_from_dict(
                        result_to_dict(per_model_results[name]),
                        expect_machine=other,
                    )

    def test_legacy_payload_defaults_to_acmp(self, per_model_results):
        payload = result_to_dict(per_model_results["acmp"])
        del payload["machine"]  # pre-machine-axis payload
        rebuilt = result_from_dict(payload, expect_machine="acmp")
        assert rebuilt.machine == "acmp"


def _spec(config, benchmark="CG", **kwargs):
    return RunSpec(benchmark=benchmark, config=config, scale=0.02, **kwargs)


class TestMachineAwareStore:
    def test_machines_never_share_entries(self, tmp_path):
        store = ResultStore(tmp_path)
        acmp_spec = _spec(baseline_config())
        scmp_spec = _spec(private_config(core_count=9))
        store.put(acmp_spec, execute_run(acmp_spec))
        assert acmp_spec in store
        assert scmp_spec not in store
        store.put(scmp_spec, execute_run(scmp_spec))
        assert {key[0] for key in store.keys()} == {"acmp", "scmp"}
        assert store.get(scmp_spec).machine == "scmp"

    def test_engine_flavors_never_share_entries(self, tmp_path):
        # The fix for the shared-cache-entry bug: --no-cycle-skip runs
        # must not read (or be read by) scheduled-engine entries.
        store = ResultStore(tmp_path)
        skip_spec = _spec(baseline_config())
        ref_spec = _spec(baseline_config(), cycle_skip=False)
        assert store.path_for(skip_spec) != store.path_for(ref_spec)
        store.put(skip_spec, execute_run(skip_spec))
        assert skip_spec in store
        assert ref_spec not in store
        store.put(ref_spec, execute_run(ref_spec))
        assert store.get(ref_spec) is not None

    def test_legacy_acmp_entry_still_readable(self, tmp_path):
        # Entries written before the machine axis lived directly under
        # <root>/<benchmark>/ with no machine directory or engine tag.
        store = ResultStore(tmp_path)
        spec = _spec(baseline_config())
        result = execute_run(spec)
        legacy_dir = tmp_path / "CG"
        legacy_dir.mkdir()
        legacy_payload = {
            "key": list(spec.key[1:]),  # old 4-element key
            "config_digest": spec.config_digest(),
            "result": result_to_dict(result),
        }
        (legacy_dir / store.path_for(spec).name).write_text(
            json.dumps(legacy_payload)
        )
        assert spec in store
        loaded = store.get(spec)
        assert result_to_dict(loaded) == result_to_dict(result)
        assert store.keys() == [spec.key]


class TestSharding:
    def test_parse_shard(self):
        assert parse_shard("2/4") == (2, 4)
        for bad in ("0/4", "5/4", "x/4", "3"):
            with pytest.raises(ConfigurationError):
                parse_shard(bad)

    def test_partition_is_complete_and_disjoint(self):
        specs = [
            _spec(config, benchmark=benchmark, seed=seed)
            for benchmark in ("CG", "UA", "BT", "IS")
            for config in (baseline_config(), worker_shared_config())
            for seed in (0, 1)
        ]
        count = 3
        shards = [shard_specs(specs, k, count) for k in range(1, count + 1)]
        all_keys = sorted(spec.key for shard in shards for spec in shard)
        assert all_keys == sorted(spec.key for spec in specs)
        seen = set()
        for shard in shards:
            keys = {spec.key for spec in shard}
            assert not keys & seen
            seen |= keys

    def test_partition_is_order_independent(self):
        specs = [
            _spec(baseline_config(), benchmark=benchmark, seed=seed)
            for benchmark in ("CG", "UA", "BT")
            for seed in (0, 1)
        ]
        forward = {s.key for s in shard_specs(specs, 1, 2)}
        reverse = {s.key for s in shard_specs(list(reversed(specs)), 1, 2)}
        assert forward == reverse

    def test_run_specs_executes_only_its_shard(self, tmp_path):
        specs = [
            _spec(baseline_config(), benchmark=benchmark)
            for benchmark in ("CG", "UA")
        ]
        store = ResultStore(tmp_path)
        first = run_specs(specs, store=store, shard=(1, 2), strict=False)
        second = run_specs(specs, store=store, shard=(2, 2), strict=False)
        assert first.sharded_out + second.sharded_out == len(specs)
        assert len(first.results) + len(second.results) == len(specs)
        assert not set(first.results) & set(second.results)
        assert "on other shards" in (first.summary() + second.summary())
        # The shared store now holds the full campaign.
        merged = run_specs(specs, store=store, strict=False)
        assert merged.cached == len(specs)

    def test_failure_journal_is_resume_manifest(self, tmp_path):
        store = ResultStore(tmp_path)
        bad = RunSpec(
            benchmark="NO_SUCH_BENCH", config=private_config(), scale=0.02
        )
        good = _spec(baseline_config())
        report = run_specs([bad, good], store=store, strict=False)
        assert len(report.failures) == 1
        # Only the still-missing run is in the manifest; the journal
        # itself is append-only (concurrent hosts share it).
        manifest = store.failed_specs()
        assert [spec.key for spec in manifest] == [bad.key]
        assert manifest[0].machine == "scmp"
        entry = store.journalled_failures()[0]
        assert entry["machine"] == "scmp"
        assert entry["engine"] == "skip"
        # Once the run lands in the store, the manifest drops it even
        # before the explicit compaction rewrites the journal.
        store.put(bad, execute_run(good))
        assert store.failed_specs() == []
        assert store.journalled_failures()  # not rewritten yet
        assert store.prune_journal({(bad.key, bad.flavor)}) == 1
        assert store.journalled_failures() == []

    def test_prune_is_engine_aware(self, tmp_path):
        # A scheduled-engine success must not erase a reference-engine
        # failure of the same design point from the manifest.
        store = ResultStore(tmp_path)
        bad_ref = RunSpec(
            benchmark="NO_SUCH_BENCH",
            config=private_config(),
            scale=0.02,
            cycle_skip=False,
        )
        run_specs([bad_ref], store=store, strict=False)
        assert store.prune_journal({(bad_ref.key, ("skip", ""))}) == 0
        assert len(store.failed_specs()) == 1
        assert store.prune_journal({(bad_ref.key, ("reference", ""))}) == 1
        assert store.failed_specs() == []

    def test_cross_check_batch_runs_both_engines(self, tmp_path):
        # The two engine flavors of one design point are distinct work
        # units: a cross-check batch must execute and cache both.
        store = ResultStore(tmp_path)
        skip_spec = _spec(baseline_config())
        ref_spec = _spec(baseline_config(), cycle_skip=False)
        report = run_specs([skip_spec, ref_spec], store=store)
        assert report.total == 2
        assert report.executed == 2
        assert skip_spec in store
        assert ref_spec in store


class TestBusyBatching:
    """The interconnect's batched busy-cycle accounting (ROADMAP lever)."""

    def _simulator(self, config, bench="UA"):
        model = model_for_config(config)
        traces = synthesize_benchmark(
            bench, thread_count=config.core_count, scale=0.05
        )
        system = model.build_system(config, traces)
        system.warm_instruction_l2s()
        return SystemSimulator(system)

    def test_narrow_bus_batches_busy_windows(self):
        # 64 B lines over an 8 B bus occupy a bus for 8 cycles: the
        # interconnect component must sleep across those windows and
        # recover the busy accounting in batches.
        simulator = self._simulator(
            worker_shared_config(bus_count=1, bus_width_bytes=8)
        )
        result = simulator.run()
        stats = simulator.kernel.stats
        assert stats.interconnect_busy_batched > 0
        busy = sum(group.bus_busy_cycles for group in result.cache_groups)
        assert busy >= stats.interconnect_busy_batched

    def test_reference_engine_never_batches(self):
        config = worker_shared_config(bus_count=1, bus_width_bytes=8)
        model = model_for_config(config)
        traces = synthesize_benchmark(
            "UA", thread_count=config.core_count, scale=0.05
        )
        system = model.build_system(config, traces)
        system.warm_instruction_l2s()
        simulator = SystemSimulator(system, cycle_skip=False)
        simulator.run()
        assert simulator.kernel.stats.interconnect_busy_batched == 0

    def test_default_width_still_engages(self):
        # Even at the paper's 32 B bus (2-cycle occupancy), draining
        # transfers let the component sleep and settle on wake.
        simulator = self._simulator(worker_shared_config())
        simulator.run()
        assert simulator.kernel.stats.interconnect_busy_batched > 0
