"""Tests for the instruction TLB extension (Section VII)."""

import pytest

from repro.acmp import baseline_config, simulate, worker_shared_config
from repro.errors import ConfigurationError
from repro.frontend.itlb import InstructionTlb
from repro.trace.synthesis import synthesize_benchmark


class TestInstructionTlb:
    def test_cold_miss_then_hit(self):
        itlb = InstructionTlb(entries=4, miss_penalty=30)
        assert itlb.translate(0x1000) == 30
        assert itlb.translate(0x1FFF) == 0  # same 4 KB page
        assert itlb.translate(0x2000) == 30  # next page
        assert itlb.stats.lookups == 3
        assert itlb.stats.misses == 2
        assert itlb.stats.compulsory_misses == 2

    def test_lru_eviction(self):
        itlb = InstructionTlb(entries=2, miss_penalty=10)
        itlb.translate(0x0000)  # page 0
        itlb.translate(0x1000)  # page 1
        itlb.translate(0x0000)  # touch page 0: page 1 becomes LRU
        itlb.translate(0x2000)  # page 2 evicts page 1
        assert itlb.translate(0x0000) == 0
        assert itlb.translate(0x1000) == 10  # non-compulsory re-miss
        assert itlb.stats.compulsory_misses == 3
        assert itlb.stats.misses == 4

    def test_resident_pages_bounded(self):
        itlb = InstructionTlb(entries=3)
        for page in range(10):
            itlb.translate(page * 4096)
        assert len(itlb.resident_pages()) == 3

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            InstructionTlb(entries=0)
        with pytest.raises(ConfigurationError):
            InstructionTlb(page_bytes=3000)


class TestItlbIntegration:
    @pytest.fixture(scope="class")
    def traces(self):
        return synthesize_benchmark("CG", thread_count=9, scale=0.1)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            baseline_config(shared_itlb=True, itlb_enabled=True)
        with pytest.raises(ConfigurationError):
            worker_shared_config(shared_itlb=True)  # itlb not enabled

    def test_itlb_adds_walk_time(self, traces):
        without = simulate(baseline_config(), traces)
        with_tlb = simulate(baseline_config(itlb_enabled=True), traces)
        assert with_tlb.cycles >= without.cycles
        assert with_tlb.total_committed == traces.instruction_count

    def test_shared_itlb_runs(self, traces):
        config = worker_shared_config(itlb_enabled=True, shared_itlb=True)
        result = simulate(config, traces)
        assert result.total_committed == traces.instruction_count

    def test_shared_itlb_amortises_cold_walks(self, traces):
        # Private iTLBs: every worker walks every code page. Shared iTLB:
        # the group walks each page roughly once (cross-thread warming,
        # the same effect as the shared I-cache's mutual prefetching).
        private = simulate(
            worker_shared_config(itlb_enabled=True), traces
        )
        shared = simulate(
            worker_shared_config(itlb_enabled=True, shared_itlb=True), traces
        )
        assert shared.cycles <= private.cycles

    def test_shared_itlb_stats_reported_once_per_group(self, traces):
        # Group-shared structures follow one rule: counters appear on
        # the first member core only, never multiplied per core (the
        # same dedupe as shared fetch predictors).
        private = simulate(worker_shared_config(itlb_enabled=True), traces)
        assert all(
            core.itlb_lookups > 0 for core in private.cores
        )  # private iTLBs: every core reports its own
        shared = simulate(
            worker_shared_config(itlb_enabled=True, shared_itlb=True), traces
        )
        master, first_worker, *other_workers = shared.cores
        assert master.itlb_lookups > 0  # private master iTLB
        assert first_worker.itlb_lookups > 0  # the group's counters
        assert all(core.itlb_lookups == 0 for core in other_workers)
        assert all(core.itlb_misses == 0 for core in other_workers)
