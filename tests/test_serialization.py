"""Tests for JSON result persistence."""

import json

import pytest

from repro.acmp import baseline_config, simulate
from repro.acmp.serialization import (
    load_result,
    load_results,
    result_from_dict,
    result_to_dict,
    save_result,
    save_results,
)
from repro.errors import SimulationError
from repro.trace.synthesis import synthesize_benchmark


@pytest.fixture(scope="module")
def result():
    traces = synthesize_benchmark("IS", thread_count=9, scale=0.05)
    return simulate(baseline_config(), traces)


class TestRoundTrip:
    def test_dict_roundtrip_preserves_everything(self, result):
        rebuilt = result_from_dict(result_to_dict(result))
        assert rebuilt.benchmark == result.benchmark
        assert rebuilt.config_label == result.config_label
        assert rebuilt.cycles == result.cycles
        assert len(rebuilt.cores) == len(result.cores)
        for original, copy in zip(result.cores, rebuilt.cores):
            assert copy == original
        for original, copy in zip(result.cache_groups, rebuilt.cache_groups):
            assert copy == original

    def test_derived_metrics_survive(self, result):
        rebuilt = result_from_dict(result_to_dict(result))
        assert rebuilt.worker_icache_mpki() == result.worker_icache_mpki()
        assert rebuilt.cpi_stack() == result.cpi_stack()
        assert rebuilt.worker_access_ratio() == result.worker_access_ratio()

    def test_file_roundtrip(self, result, tmp_path):
        path = tmp_path / "result.json"
        save_result(result, path)
        loaded = load_result(path)
        assert loaded.cycles == result.cycles
        # The file must be real, readable JSON.
        payload = json.loads(path.read_text())
        assert payload["benchmark"] == "IS"

    def test_campaign_roundtrip(self, result, tmp_path):
        path = tmp_path / "campaign.json"
        save_results([result, result], path)
        loaded = load_results(path)
        assert len(loaded) == 2
        assert loaded[0].cycles == result.cycles


class TestErrorHandling:
    def test_bad_version_rejected(self, result):
        data = result_to_dict(result)
        data["version"] = 99
        with pytest.raises(SimulationError, match="version"):
            result_from_dict(data)

    def test_missing_field_rejected(self, result):
        data = result_to_dict(result)
        del data["cores"]
        with pytest.raises(SimulationError, match="malformed"):
            result_from_dict(data)

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("{not json")
        with pytest.raises(SimulationError, match="not valid JSON"):
            load_result(path)

    def test_non_campaign_file_rejected(self, tmp_path, result):
        path = tmp_path / "single.json"
        save_result(result, path)
        with pytest.raises(SimulationError, match="campaign"):
            load_results(path)
