"""Tests for the functional (timing-free) cache characterisation."""

import pytest

from repro.cache.functional import FunctionalICache, characterize_regions
from repro.trace.records import BasicBlockRecord, SyncKind, SyncRecord
from repro.trace.stream import ThreadTrace
from repro.trace.synthesis import synthesize_benchmark


class TestFunctionalICache:
    def test_block_spanning_lines(self):
        cache = FunctionalICache(size_bytes=1024, ways=2)
        block = BasicBlockRecord(address=0x20, instruction_count=24)  # 96 B
        misses = cache.access_block(block)
        assert misses == 2  # spans lines 0x00 and 0x40... and 0x80? 0x20+96=0x80 exclusive
        assert cache.accesses == 2

    def test_block_single_line(self):
        cache = FunctionalICache()
        block = BasicBlockRecord(address=0x40, instruction_count=4)
        assert cache.access_block(block) == 1
        assert cache.access_block(block) == 0

    def test_compulsory_tracking(self):
        cache = FunctionalICache(size_bytes=128, ways=1)
        a = BasicBlockRecord(0x000, 16)
        b = BasicBlockRecord(0x080, 16)  # conflicts in a 2-line direct map
        cache.access_block(a)
        cache.access_block(b)
        cache.access_block(a)
        assert cache.misses == 3
        assert cache.compulsory_misses == 2


class TestCharacterizeRegions:
    def test_region_attribution(self):
        trace = ThreadTrace(
            0,
            [
                BasicBlockRecord(0x000, 16),
                SyncRecord(SyncKind.PARALLEL_START, 0),
                BasicBlockRecord(0x400, 16),
                SyncRecord(SyncKind.PARALLEL_END, 0),
            ],
        )
        serial, parallel = characterize_regions(trace)
        assert serial.instructions == 16
        assert parallel.instructions == 16
        assert serial.misses == 1
        assert parallel.misses == 1

    def test_serial_mpki_exceeds_parallel_on_real_model(self):
        # Fig. 3 shape: serial code misses far more than parallel code.
        traces = synthesize_benchmark("imagick", thread_count=2, scale=0.5)
        serial, parallel = characterize_regions(traces.master)
        assert serial.steady_state_mpki > 5 * max(parallel.steady_state_mpki, 0.2)
        assert serial.steady_state_mpki > 20

    def test_coevp_parallel_mpki_near_paper_value(self):
        # Steady-state parallel MPKI must match the paper's 1.27 (Fig. 3).
        traces = synthesize_benchmark("CoEVP", thread_count=2, scale=1.0)
        _, parallel = characterize_regions(traces.master)
        assert parallel.steady_state_mpki == pytest.approx(1.27, rel=0.35)

    def test_reused_cold_misses_amortize(self):
        traces = synthesize_benchmark("EP", thread_count=2, scale=0.5)
        _, parallel = characterize_regions(traces.master)
        assert parallel.steady_state_mpki <= parallel.mpki
        assert parallel.steady_state_mpki < 0.2  # EP's steady-state is ~0

    def test_mpki_zero_for_empty_region(self):
        trace = ThreadTrace(0, [BasicBlockRecord(0x000, 16)])
        serial, parallel = characterize_regions(trace)
        assert parallel.instructions == 0
        assert parallel.mpki == 0.0
