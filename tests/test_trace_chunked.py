"""Chunked (``.trcz``) codec: round-trips, index seeks, corruption, memory.

The contract under test: a chunked file round-trips bit-exactly, the
footer index lets readers reach any record/instruction position without
decoding the prefix, every corruption mode surfaces as a
:class:`TraceFormatError` carrying file + byte-offset context, and a
walked trace never holds more than O(chunk) decoded records.
"""

import random
import tracemalloc
import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TraceFormatError
from repro.trace.chunked import (
    _Z_HEADER,
    _Z_TRAILER,
    ChunkedThreadReader,
    ChunkedTraceWriter,
    LazyThreadTrace,
    write_thread_trace_chunked,
)
from repro.trace.encoding import open_trace_set, write_trace_set
from repro.trace.records import (
    BasicBlockRecord,
    BranchKind,
    BranchOutcome,
    EndRecord,
    IpcRecord,
    SyncKind,
    SyncRecord,
)
from repro.trace.stream import ThreadTrace, TraceSet

_branches = st.one_of(
    st.none(),
    st.builds(
        BranchOutcome,
        kind=st.sampled_from([BranchKind.CONDITIONAL, BranchKind.INDIRECT]),
        taken=st.booleans(),
        target=st.integers(min_value=0, max_value=2**40),
    ),
)

_records = st.one_of(
    st.builds(
        BasicBlockRecord,
        address=st.integers(min_value=0, max_value=2**40),
        instruction_count=st.integers(min_value=1, max_value=500),
        branch=_branches,
    ),
    st.builds(
        SyncRecord,
        kind=st.sampled_from(list(SyncKind)),
        object_id=st.integers(min_value=0, max_value=1000),
    ),
    st.builds(IpcRecord, ipc=st.floats(min_value=0.01, max_value=16.0)),
    st.just(EndRecord()),
)


def _mixed_records(count: int, seed: int = 0) -> list:
    """A deterministic record mix with non-trivial instruction counts."""
    rng = random.Random(seed)
    records = []
    for index in range(count):
        roll = rng.random()
        if roll < 0.85:
            branch = None
            if rng.random() < 0.4:
                branch = BranchOutcome(
                    BranchKind.CONDITIONAL, rng.random() < 0.5, rng.randrange(2**30)
                )
            records.append(
                BasicBlockRecord(rng.randrange(2**30), rng.randrange(1, 40), branch)
            )
        elif roll < 0.95:
            records.append(SyncRecord(rng.choice(list(SyncKind)), rng.randrange(8)))
        else:
            records.append(IpcRecord(rng.uniform(0.1, 4.0)))
    return records


class TestChunkedRoundtrip:
    @given(
        st.lists(_records, max_size=120),
        st.integers(min_value=0, max_value=64),
        st.integers(min_value=1, max_value=17),
    )
    @settings(max_examples=40)
    def test_roundtrip(self, tmp_path_factory, records, thread_id, chunk_records):
        path = tmp_path_factory.mktemp("trcz") / "t.trcz"
        write_thread_trace_chunked(
            path, thread_id, records, chunk_records=chunk_records
        )
        reader = ChunkedThreadReader(path)
        assert reader.thread_id == thread_id
        assert reader.record_count == len(records)
        assert list(reader.iter_records()) == records
        assert reader.total_instructions == sum(
            r.instruction_count for r in records if isinstance(r, BasicBlockRecord)
        )

    def test_byte_stable_encoding(self, tmp_path):
        records = _mixed_records(700, seed=5)
        write_thread_trace_chunked(tmp_path / "a.trcz", 3, records, chunk_records=128)
        write_thread_trace_chunked(tmp_path / "b.trcz", 3, records, chunk_records=128)
        assert (tmp_path / "a.trcz").read_bytes() == (tmp_path / "b.trcz").read_bytes()

    def test_streaming_write_never_materializes(self, tmp_path):
        # The writer consumes a generator; totals still land in the header.
        def generate():
            for index in range(5000):
                yield BasicBlockRecord(index * 64, 3)

        write_thread_trace_chunked(tmp_path / "t.trcz", 0, generate(), chunk_records=256)
        reader = ChunkedThreadReader(tmp_path / "t.trcz")
        assert reader.record_count == 5000
        assert reader.total_instructions == 15000
        assert reader.chunk_count == 5000 // 256 + 1

    def test_empty_trace(self, tmp_path):
        write_thread_trace_chunked(tmp_path / "t.trcz", 2, [])
        reader = ChunkedThreadReader(tmp_path / "t.trcz")
        assert reader.record_count == 0
        assert reader.chunk_count == 0
        assert list(reader.iter_records()) == []

    def test_lazy_thread_trace_surfaces(self, tmp_path):
        records = _mixed_records(300, seed=9)
        write_thread_trace_chunked(tmp_path / "t.trcz", 1, records, chunk_records=64)
        lazy = LazyThreadTrace(ChunkedThreadReader(tmp_path / "t.trcz"))
        eager = ThreadTrace(thread_id=1, records=records)
        assert len(lazy) == len(eager)
        assert list(lazy) == records
        assert lazy.records[17] == records[17]
        assert lazy.records[-1] == records[-1]
        assert lazy.records[40:130] == records[40:130]
        assert lazy.instruction_count == eager.instruction_count
        assert list(lazy.basic_blocks()) == list(eager.basic_blocks())

    def test_strided_slice_rejected(self, tmp_path):
        write_thread_trace_chunked(tmp_path / "t.trcz", 0, _mixed_records(10))
        lazy = LazyThreadTrace(ChunkedThreadReader(tmp_path / "t.trcz"))
        with pytest.raises(TraceFormatError, match="contiguous"):
            lazy.records[::2]


class TestChunkIndexSeeks:
    """Seek-to-interval through the index == decoding the prefix."""

    @given(
        st.integers(min_value=0, max_value=2**31),
        st.integers(min_value=2, max_value=19),
        st.integers(min_value=20, max_value=400),
    )
    @settings(max_examples=30)
    def test_record_cut_points(
        self, tmp_path_factory, cut_seed, chunk_records, count
    ):
        records = _mixed_records(count, seed=cut_seed % 1000)
        path = tmp_path_factory.mktemp("seek") / "t.trcz"
        write_thread_trace_chunked(path, 0, records, chunk_records=chunk_records)
        reader = ChunkedThreadReader(path)
        rng = random.Random(cut_seed)
        for _ in range(5):
            start = rng.randrange(count + 1)
            end = rng.randrange(start, count + 1)
            assert list(reader.iter_records(start, end)) == records[start:end]

    @given(
        st.integers(min_value=0, max_value=2**31),
        st.integers(min_value=2, max_value=19),
    )
    @settings(max_examples=30)
    def test_instruction_cut_points(self, tmp_path_factory, cut_seed, chunk_records):
        records = _mixed_records(250, seed=cut_seed % 997)
        path = tmp_path_factory.mktemp("seekI") / "t.trcz"
        write_thread_trace_chunked(path, 0, records, chunk_records=chunk_records)
        reader = ChunkedThreadReader(path)
        total = reader.total_instructions
        rng = random.Random(~cut_seed)
        targets = [0, 1, total, total + 7] + [
            rng.randrange(total + 1) for _ in range(6) if total
        ]
        for target in targets:
            got = reader.seek_instruction(target)
            # Reference semantics: scan the whole stream from record 0.
            cumulative = 0
            expected = None
            for index, record in enumerate(records):
                if isinstance(record, BasicBlockRecord):
                    if cumulative + record.instruction_count >= target:
                        expected = (index, cumulative)
                        break
                    cumulative += record.instruction_count
            if target <= 0:
                expected = (0, 0)
            if expected is None:
                expected = (len(records), cumulative)
            assert got == expected, f"target={target}"

    def test_seek_skips_prefix_chunks(self, tmp_path):
        records = _mixed_records(4000, seed=11)
        path = tmp_path / "t.trcz"
        write_thread_trace_chunked(path, 0, records, chunk_records=128)
        reader = ChunkedThreadReader(path)
        assert reader.chunk_count > 20
        tail_start = 3500
        assert list(reader.iter_records(tail_start)) == records[tail_start:]
        # The acceptance contract: the prefix was never decoded — the
        # lowest chunk touched is the one holding the interval start.
        assert reader.stats.min_chunk_decoded == tail_start // 128
        assert reader.stats.chunks_decoded == reader.chunk_count - tail_start // 128


class TestCorruptionModes:
    """Every structural defect names the file and the byte offset."""

    def _write(self, tmp_path, count=600, chunk_records=128):
        path = tmp_path / "t.trcz"
        write_thread_trace_chunked(
            path, 0, _mixed_records(count, seed=3), chunk_records=chunk_records
        )
        return path

    def test_too_short(self, tmp_path):
        path = tmp_path / "t.trcz"
        path.write_bytes(b"RITZ")
        with pytest.raises(TraceFormatError, match="shorter than header"):
            ChunkedThreadReader(path)

    def test_bad_magic(self, tmp_path):
        path = self._write(tmp_path)
        data = bytearray(path.read_bytes())
        data[:4] = b"XXXX"
        path.write_bytes(bytes(data))
        with pytest.raises(TraceFormatError, match=r"t\.trcz @ byte 0: bad magic"):
            ChunkedThreadReader(path)

    def test_bad_version(self, tmp_path):
        path = self._write(tmp_path)
        data = bytearray(path.read_bytes())
        data[4] = 99
        path.write_bytes(bytes(data))
        with pytest.raises(TraceFormatError, match="version 99"):
            ChunkedThreadReader(path)

    def test_truncated_trailer(self, tmp_path):
        path = self._write(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[:-3])
        with pytest.raises(TraceFormatError, match="index magic|truncated"):
            ChunkedThreadReader(path)

    def test_index_out_of_bounds(self, tmp_path):
        path = self._write(tmp_path)
        data = bytearray(path.read_bytes())
        index_offset, chunk_count, magic = _Z_TRAILER.unpack(
            bytes(data[-_Z_TRAILER.size :])
        )
        data[-_Z_TRAILER.size :] = _Z_TRAILER.pack(len(data), chunk_count, magic)
        path.write_bytes(bytes(data))
        with pytest.raises(TraceFormatError, match="out of bounds"):
            ChunkedThreadReader(path)

    def test_corrupt_chunk_payload(self, tmp_path):
        path = self._write(tmp_path)
        data = bytearray(path.read_bytes())
        # Flip bytes inside the first chunk's deflate stream (just past
        # the header), leaving header/index/trailer intact.
        for offset in range(_Z_HEADER.size + 4, _Z_HEADER.size + 12):
            data[offset] ^= 0xFF
        path.write_bytes(bytes(data))
        reader = ChunkedThreadReader(path)  # opening never decodes chunks
        with pytest.raises(
            TraceFormatError, match=rf"t\.trcz @ byte {_Z_HEADER.size}: chunk 0"
        ):
            list(reader.iter_records())

    def test_trailing_bytes_in_chunk(self, tmp_path):
        # Rebuild chunk 0 with one extra encoded record the index does
        # not account for; offsets of later chunks shift accordingly.
        path = self._write(tmp_path, count=130, chunk_records=128)
        reader = ChunkedThreadReader(path)
        entries = reader._entries
        data = path.read_bytes()
        first = entries[0]
        plain = zlib.decompress(data[first.offset : first.offset + first.length])
        rebuilt = zlib.compress(plain + b"\x04", 6)  # one stray END record
        delta = len(rebuilt) - first.length
        body = bytearray()
        body += data[: first.offset]
        body += rebuilt
        body += data[first.offset + first.length : reader._data_end]
        index_offset = reader._data_end + delta
        from repro.trace.chunked import _Z_ENTRY

        body += _Z_ENTRY.pack(
            first.offset, len(rebuilt), first.first_record, first.instructions_before
        )
        for entry in entries[1:]:
            body += _Z_ENTRY.pack(
                entry.offset + delta,
                entry.length,
                entry.first_record,
                entry.instructions_before,
            )
        body += _Z_TRAILER.pack(index_offset, len(entries), b"ZIDX")
        path.write_bytes(bytes(body))
        fresh = ChunkedThreadReader(path)
        with pytest.raises(TraceFormatError, match="trailing bytes"):
            list(fresh.iter_records(0, 10))

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceFormatError, match="nowhere"):
            ChunkedThreadReader(tmp_path / "nowhere.trcz")


class TestResidency:
    """Decoded-record residency stays O(chunk), not O(trace)."""

    def test_lru_bounds_resident_records(self, tmp_path):
        path = tmp_path / "t.trcz"
        write_thread_trace_chunked(
            path, 0, _mixed_records(3000, seed=21), chunk_records=100
        )
        reader = ChunkedThreadReader(path)
        for _ in reader.iter_records():
            pass
        assert reader.stats.chunks_decoded == reader.chunk_count
        assert reader.stats.max_resident_records <= 2 * 100

    def test_sequential_walk_decodes_each_chunk_once(self, tmp_path):
        path = tmp_path / "t.trcz"
        write_thread_trace_chunked(
            path, 0, _mixed_records(1000, seed=22), chunk_records=64
        )
        reader = ChunkedThreadReader(path)
        list(reader.iter_records())
        assert reader.stats.chunks_decoded == reader.chunk_count

    def test_memory_bound_interval_run(self, tmp_path):
        """A big streamed trace walked end-to-end stays O(chunk) in RAM.

        Reduced-scale stand-in for a multi-hundred-MB capture: the
        writer consumes a generator (the full record list never
        exists), then a full walk plus an interval slice run under
        tracemalloc must peak far below the materialized-trace
        footprint (~tens of MB for this record count).
        """
        chunk_records = 1024
        total_records = 120_000
        path = tmp_path / "big.trcz"

        def generate():
            rng = random.Random(7)
            for index in range(total_records):
                if index % 50 == 49:
                    yield SyncRecord(SyncKind.BARRIER, 0)
                else:
                    yield BasicBlockRecord(
                        rng.randrange(2**30),
                        rng.randrange(1, 30),
                        BranchOutcome(BranchKind.CONDITIONAL, True, 0)
                        if index % 3 == 0
                        else None,
                    )

        with ChunkedTraceWriter(path, 0, chunk_records=chunk_records) as writer:
            writer.extend(generate())

        reader = ChunkedThreadReader(path)
        assert reader.record_count == total_records
        tracemalloc.start()
        count = sum(1 for _ in reader.iter_records())  # full streamed walk
        window = reader.iter_records(100_000, 103_000)  # interval materialization
        interval = list(window)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert count == total_records
        assert len(interval) == 3000
        # Live decoded records never exceeded the LRU bound...
        assert reader.stats.max_resident_records <= 2 * chunk_records
        # ...and the traced peak is a small multiple of one chunk, not
        # the ~20+ MB a materialized 120k-record list costs. 6 MB gives
        # the interval list + two cached chunks generous headroom.
        assert peak < 6 * 1024 * 1024, f"peak {peak / 1e6:.1f} MB is not O(chunk)"


class TestStreamedTraceSet:
    def test_open_trace_set_streams_and_matches(self, tmp_path):
        threads = [
            ThreadTrace(0, _mixed_records(400, seed=31)),
            ThreadTrace(1, _mixed_records(300, seed=32)),
        ]
        original = TraceSet(benchmark="demo", threads=threads)
        write_trace_set(original, tmp_path / "set", chunked=True, chunk_records=64)
        streamed = open_trace_set(tmp_path / "set")
        assert streamed.benchmark == "demo"
        assert streamed.thread_count == 2
        assert streamed.instruction_count == original.instruction_count
        for mine, theirs in zip(original.threads, streamed.threads):
            assert isinstance(theirs, LazyThreadTrace)
            assert list(theirs) == list(mine)
        materialized = streamed.materialize()
        assert [t.records for t in materialized.threads] == [
            t.records for t in original.threads
        ]
