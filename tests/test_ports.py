"""Focused tests for the I-cache ports' corner cases."""

import pytest

from repro.acmp.system import EventQueue
from repro.cache import SetAssociativeCache
from repro.errors import SimulationError
from repro.frontend import RequestState, SharedIcacheGroup
from repro.frontend.ports import PrivateIcachePort
from repro.interconnect import MultiBus
from repro.memory import InstructionHierarchy, MemoryController


def _group(core_count=2, bus_count=1, mshr_capacity=16, cache_kb=32):
    events = EventQueue()
    cache = SetAssociativeCache(cache_kb * 1024, 8, 64, name="icache")
    hierarchy = InstructionHierarchy(MemoryController())
    fills: dict[int, list] = {i: [] for i in range(core_count)}
    group = SharedIcacheGroup(
        core_ids=list(range(core_count)),
        cache=cache,
        hierarchy=hierarchy,
        interconnect=MultiBus(requester_count=core_count, bus_count=bus_count),
        scheduler=events.schedule,
        fill_callbacks={i: fills[i].append for i in range(core_count)},
        mshr_capacity=mshr_capacity,
    )
    return group, events, fills, cache, hierarchy


def _drain(group, events, cycles):
    for now in range(cycles):
        events.run_due(now)
        group.step(now)


class TestEventQueue:
    def test_runs_in_cycle_order(self):
        events = EventQueue()
        order = []
        events.schedule(5, lambda: order.append("b"))
        events.schedule(2, lambda: order.append("a"))
        events.run_due(10)
        assert order == ["a", "b"]

    def test_same_cycle_fifo(self):
        events = EventQueue()
        order = []
        events.schedule(3, lambda: order.append(1))
        events.schedule(3, lambda: order.append(2))
        events.run_due(3)
        assert order == [1, 2]

    def test_future_events_stay(self):
        events = EventQueue()
        events.schedule(9, lambda: None)
        assert events.run_due(8) == 0
        assert len(events) == 1
        assert events.next_cycle == 9


class TestSharedGroupCornerCases:
    def test_l2_hit_latency_path(self):
        group, events, fills, cache, hierarchy = _group()
        hierarchy.l2.fill(0x1000)
        request = group.request(0x1000, now=0, core_id=0)
        _drain(group, events, 40)
        assert fills[0] and fills[0][0] is request
        assert request.state is RequestState.DONE
        # grant(0) + bus latency(2) + icache miss -> L2 20 cycles.
        assert request.completion_at >= 20

    def test_hit_after_fill_is_fast(self):
        group, events, fills, cache, hierarchy = _group()
        hierarchy.l2.fill(0x1000)
        group.request(0x1000, now=0, core_id=0)
        _drain(group, events, 60)
        second = group.request(0x1000, now=60, core_id=1)
        for now in range(60, 80):
            events.run_due(now)
            group.step(now)
        assert second.icache_hit is True
        # grant + 2-cycle bus + 1-cycle cache.
        assert second.completion_at - second.granted_at <= 4

    def test_mshr_full_retries(self):
        group, events, fills, cache, hierarchy = _group(mshr_capacity=1)
        group.request(0x1000, now=0, core_id=0)
        group.request(0x2000, now=0, core_id=1)  # second distinct miss
        _drain(group, events, 400)
        assert len(fills[0]) == 1
        assert len(fills[1]) == 1
        assert group.mshrs.stats.full_stalls >= 1

    def test_flush_core_drops_queued_requests(self):
        group, events, fills, cache, hierarchy = _group()
        group.request(0x1000, now=0, core_id=0)
        group.request(0x3000, now=0, core_id=0)
        dropped = group.flush_core(0)
        assert dropped == 2

    def test_mismatched_interconnect_rejected(self):
        events = EventQueue()
        cache = SetAssociativeCache(32 * 1024, 8, 64)
        hierarchy = InstructionHierarchy(MemoryController())
        with pytest.raises(SimulationError, match="ports"):
            SharedIcacheGroup(
                core_ids=[0, 1, 2],
                cache=cache,
                hierarchy=hierarchy,
                interconnect=MultiBus(requester_count=2, bus_count=1),
                scheduler=events.schedule,
                fill_callbacks={},
            )

    def test_double_bus_parallel_service(self):
        group, events, fills, cache, hierarchy = _group(bus_count=2)
        hierarchy.l2.fill(0x1000)  # even line (bank 0)
        hierarchy.l2.fill(0x1040)  # odd line (bank 1)
        a = group.request(0x1000, now=0, core_id=0)
        b = group.request(0x1040, now=0, core_id=1)
        _drain(group, events, 40)
        assert a.granted_at == b.granted_at == 0  # no serialisation


class TestPrivatePort:
    def test_hit_latency_is_one_cycle(self):
        events = EventQueue()
        cache = SetAssociativeCache(32 * 1024, 8, 64)
        cache.fill(0x500)
        hierarchy = InstructionHierarchy(MemoryController())
        fills = []
        port = PrivateIcachePort(
            core_id=0,
            cache=cache,
            hierarchy=hierarchy,
            scheduler=events.schedule,
            on_fill=fills.append,
            latency=1,
        )
        request = port.request(0x500, now=10)
        assert request.completion_at == 11
        events.run_due(11)
        assert fills == [request]
        assert request.state is RequestState.DONE

    def test_miss_goes_down_hierarchy(self):
        events = EventQueue()
        cache = SetAssociativeCache(32 * 1024, 8, 64)
        hierarchy = InstructionHierarchy(MemoryController())
        hierarchy.l2.fill(0x600)
        fills = []
        port = PrivateIcachePort(
            core_id=0,
            cache=cache,
            hierarchy=hierarchy,
            scheduler=events.schedule,
            on_fill=fills.append,
        )
        request = port.request(0x600, now=0)
        assert request.completion_at == 21  # 1-cycle access + 20-cycle L2
        events.run_due(21)
        assert cache.probe(0x600)  # refill installed at completion
