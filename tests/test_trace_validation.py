"""Unit tests for trace protocol validation."""

import pytest

from repro.errors import TraceError
from repro.trace.records import (
    BasicBlockRecord,
    SyncKind,
    SyncRecord,
)
from repro.trace.stream import ThreadTrace, TraceSet
from repro.trace.validation import validate_thread_trace, validate_trace_set


def _sync(kind, object_id=0):
    return SyncRecord(kind, object_id)


def _phase(phase, blocks=1):
    records = [_sync(SyncKind.PARALLEL_START, phase)]
    records += [BasicBlockRecord(0x1000 + 64 * i, 4) for i in range(blocks)]
    records.append(_sync(SyncKind.PARALLEL_END, phase))
    return records


class TestThreadValidation:
    def test_master_with_serial_and_phase(self):
        trace = ThreadTrace(0, [BasicBlockRecord(0x100, 4)] + _phase(0))
        assert validate_thread_trace(trace, is_master=True) == 1

    def test_worker_outside_region_rejected(self):
        trace = ThreadTrace(1, [BasicBlockRecord(0x100, 4)])
        with pytest.raises(TraceError, match="outside"):
            validate_thread_trace(trace, is_master=False)

    def test_nested_parallel_rejected(self):
        trace = ThreadTrace(
            0,
            [_sync(SyncKind.PARALLEL_START), _sync(SyncKind.PARALLEL_START)],
        )
        with pytest.raises(TraceError, match="nested"):
            validate_thread_trace(trace, is_master=True)

    def test_unmatched_end_rejected(self):
        trace = ThreadTrace(0, [_sync(SyncKind.PARALLEL_END)])
        with pytest.raises(TraceError, match="without start"):
            validate_thread_trace(trace, is_master=True)

    def test_unterminated_region_rejected(self):
        trace = ThreadTrace(0, [_sync(SyncKind.PARALLEL_START)])
        with pytest.raises(TraceError, match="unterminated"):
            validate_thread_trace(trace, is_master=True)

    def test_lock_reacquire_rejected(self):
        trace = ThreadTrace(
            0,
            [
                _sync(SyncKind.PARALLEL_START),
                _sync(SyncKind.WAIT, 1),
                _sync(SyncKind.WAIT, 1),
                _sync(SyncKind.PARALLEL_END),
            ],
        )
        with pytest.raises(TraceError, match="re-acquires"):
            validate_thread_trace(trace, is_master=True)

    def test_signal_of_unheld_lock_rejected(self):
        trace = ThreadTrace(0, [_sync(SyncKind.SIGNAL, 2)])
        with pytest.raises(TraceError, match="unheld"):
            validate_thread_trace(trace, is_master=True)

    def test_unreleased_lock_rejected(self):
        trace = ThreadTrace(
            0,
            [
                _sync(SyncKind.PARALLEL_START),
                _sync(SyncKind.WAIT, 3),
                _sync(SyncKind.PARALLEL_END),
            ],
        )
        with pytest.raises(TraceError, match="never released"):
            validate_thread_trace(trace, is_master=True)

    def test_balanced_lock_ok(self):
        trace = ThreadTrace(
            0,
            [
                _sync(SyncKind.PARALLEL_START),
                _sync(SyncKind.WAIT, 3),
                BasicBlockRecord(0x100, 2),
                _sync(SyncKind.SIGNAL, 3),
                _sync(SyncKind.PARALLEL_END),
            ],
        )
        assert validate_thread_trace(trace, is_master=True) == 1


class TestSetValidation:
    def test_valid_set(self):
        trace_set = TraceSet(
            benchmark="demo",
            threads=[
                ThreadTrace(0, [BasicBlockRecord(0x100, 4)] + _phase(0, blocks=2)),
                ThreadTrace(1, _phase(0, blocks=3)),
            ],
        )
        report = validate_trace_set(trace_set)
        assert report.thread_count == 2
        assert report.parallel_phase_count == 1
        assert report.total_instructions == 4 + 8 + 12

    def test_phase_count_mismatch_rejected(self):
        trace_set = TraceSet(
            benchmark="demo",
            threads=[
                ThreadTrace(0, _phase(0) + _phase(1)),
                ThreadTrace(1, _phase(0)),
            ],
        )
        with pytest.raises(TraceError, match="disagree"):
            validate_trace_set(trace_set)

    def test_empty_set_rejected(self):
        with pytest.raises(TraceError, match="no threads"):
            validate_trace_set(TraceSet(benchmark="demo", threads=[]))
