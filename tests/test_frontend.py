"""Unit tests for the fetch engine and I-cache ports."""

import pytest

from repro.acmp.system import EventQueue
from repro.backend import CommitEngine
from repro.branch import FetchPredictor
from repro.cache import LineBufferSet, SetAssociativeCache
from repro.frontend import (
    FetchEngine,
    PrivateIcachePort,
    RequestState,
    SharedIcacheGroup,
)
from repro.interconnect import MultiBus
from repro.memory import InstructionHierarchy, MemoryController
from repro.runtime import RuntimeCoordinator, ThreadContext, ThreadState
from repro.trace.records import (
    BasicBlockRecord,
    BranchKind,
    BranchOutcome,
    IpcRecord,
    SyncKind,
    SyncRecord,
)
from repro.trace.stream import TraceStream


def _build_private_core(records, line_buffers=4, iq_capacity=64):
    """Assemble a single private-I-cache core over a record list."""
    events = EventQueue()
    contexts = [ThreadContext(thread_id=0)]
    runtime = RuntimeCoordinator(contexts)
    cache = SetAssociativeCache(32 * 1024, 8, 64, name="icache")
    hierarchy = InstructionHierarchy(MemoryController())
    backend = CommitEngine(iq_capacity=iq_capacity)
    engine = FetchEngine(
        core_id=0,
        context=contexts[0],
        stream=TraceStream(records),
        predictor=FetchPredictor(),
        line_buffers=LineBufferSet(count=line_buffers),
        port=None,
        runtime=runtime,
        mispredict_penalty=8,
    )
    port = PrivateIcachePort(
        core_id=0,
        cache=cache,
        hierarchy=hierarchy,
        scheduler=events.schedule,
        on_fill=engine.on_fill,
    )
    engine.port = port
    engine.attach_backend(backend, iq_capacity=iq_capacity)
    hierarchy.l2.fill(0x0)  # warm line 0 in L2 so misses cost L2 latency
    return engine, backend, events, contexts[0], cache


def _run(engine, backend, events, cycles, cause="other"):
    committed = 0
    for now in range(cycles):
        events.run_due(now)
        engine.step(now)
        committed += backend.step(now, engine.stall_cause(now))
    return committed


class TestPrivateFetchPath:
    def test_single_block_flows_to_commit(self):
        records = [
            IpcRecord(1.0),
            BasicBlockRecord(0x0, 8),
        ]
        engine, backend, events, context, cache = _build_private_core(records)
        committed = _run(engine, backend, events, 40)
        assert committed == 8
        assert cache.stats.misses == 1  # one cold line

    def test_line_buffer_reuse_avoids_cache(self):
        # Ten iterations over the same line: one cache fetch, nine reuses.
        block = BasicBlockRecord(
            0x0, 8, BranchOutcome(BranchKind.CONDITIONAL, True, 0x0)
        )
        records = [IpcRecord(2.0)] + [block] * 10
        engine, backend, events, _, cache = _build_private_core(records)
        committed = _run(engine, backend, events, 120)
        assert committed == 80
        assert engine.line_buffers.stats.cache_fetches == 1
        assert engine.line_buffers.stats.access_ratio == pytest.approx(0.1)

    def test_multi_line_block_pieces(self):
        # 40 instructions = 160 B starting at 0x10 span lines 0x0, 0x40
        # and 0x80: three line fetches, three counted requests.
        records = [IpcRecord(4.0), BasicBlockRecord(0x10, 40)]
        engine, backend, events, _, cache = _build_private_core(records)
        committed = _run(engine, backend, events, 600)
        assert committed == 40
        assert engine.line_buffers.stats.cache_fetches == 3
        assert engine.line_buffers.stats.line_requests == 3

    def test_end_record_finishes_thread(self):
        records = [IpcRecord(1.0), BasicBlockRecord(0x0, 4)]
        engine, backend, events, context, _ = _build_private_core(records)
        _run(engine, backend, events, 60)
        assert context.state is ThreadState.FINISHED

    def test_mispredict_stalls_fill(self):
        # Identical runs except branch outcomes: an all-taken stream is
        # perfectly predictable, a random stream mispredicts ~50 % and the
        # redirect bubbles must outpace what the FTQ/IQ can hide.
        def run_with(branch_taken_sequence):
            records = [IpcRecord(4.0)]
            for taken in branch_taken_sequence:
                records.append(
                    BasicBlockRecord(
                        0x0, 8, BranchOutcome(BranchKind.CONDITIONAL, taken, 0x20)
                    )
                )
            engine, backend, events, context, _ = _build_private_core(records)
            cycles = None
            for now in range(3000):
                events.run_due(now)
                engine.step(now)
                backend.step(now, engine.stall_cause(now))
                if context.state is ThreadState.FINISHED:
                    cycles = now
                    break
            return cycles, engine.stats.redirects

        from random import Random

        rng = Random(7)
        steady, redirects_steady = run_with([True] * 60)
        noisy, redirects_noisy = run_with(
            [rng.random() < 0.5 for _ in range(60)]
        )
        assert steady is not None and noisy is not None
        assert redirects_noisy > redirects_steady
        assert noisy > steady

    def test_ipc_record_retargets_backend(self):
        records = [IpcRecord(3.5), BasicBlockRecord(0x0, 4)]
        engine, backend, events, _, _ = _build_private_core(records)
        _run(engine, backend, events, 20)
        assert backend.ipc == 3.5

    def test_sync_waits_for_drain_then_delivers(self):
        records = [
            IpcRecord(1.0),
            BasicBlockRecord(0x0, 4),
            SyncRecord(SyncKind.PARALLEL_START, 0),
            BasicBlockRecord(0x40, 4),
            SyncRecord(SyncKind.PARALLEL_END, 0),
        ]
        engine, backend, events, context, _ = _build_private_core(records)
        committed = _run(engine, backend, events, 400)
        assert committed == 8
        assert engine.stats.sync_events == 2
        assert context.state is ThreadState.FINISHED


class TestSharedFetchPath:
    def _build_shared_pair(self, records_a, records_b, bus_count=1):
        events = EventQueue()
        contexts = [ThreadContext(thread_id=0), ThreadContext(thread_id=1)]
        runtime = RuntimeCoordinator(contexts)
        cache = SetAssociativeCache(32 * 1024, 8, 64, name="shared-icache")
        hierarchy = InstructionHierarchy(MemoryController())
        cores = []
        for core_id, records in ((0, records_a), (1, records_b)):
            backend = CommitEngine(iq_capacity=64)
            engine = FetchEngine(
                core_id=core_id,
                context=contexts[core_id],
                stream=TraceStream(records),
                predictor=FetchPredictor(),
                line_buffers=LineBufferSet(count=4),
                port=None,
                runtime=runtime,
                mispredict_penalty=8,
            )
            engine.attach_backend(backend)
            cores.append((engine, backend))
        interconnect = MultiBus(requester_count=2, bus_count=bus_count)
        group = SharedIcacheGroup(
            core_ids=[0, 1],
            cache=cache,
            hierarchy=hierarchy,
            interconnect=interconnect,
            scheduler=events.schedule,
            fill_callbacks={
                0: cores[0][0].on_fill,
                1: cores[1][0].on_fill,
            },
        )
        for engine, _ in cores:
            engine.port = group.port_for(engine.core_id)
        hierarchy.l2.fill(0x0)
        hierarchy.l2.fill(0x40)
        return cores, group, events, contexts, cache

    def _run_shared(self, cores, group, events, contexts, cycles):
        total = 0
        for now in range(cycles):
            events.run_due(now)
            for engine, _ in cores:
                engine.step(now)
            group.step(now)
            for engine, backend in cores:
                if contexts[engine.core_id].state is ThreadState.FINISHED:
                    continue
                total += backend.step(now, engine.stall_cause(now))
        return total

    def test_both_cores_fetch_through_bus(self):
        records_a = [IpcRecord(1.0), BasicBlockRecord(0x0, 8)]
        records_b = [IpcRecord(1.0), BasicBlockRecord(0x40, 8)]
        cores, group, events, contexts, cache = self._build_shared_pair(
            records_a, records_b
        )
        committed = self._run_shared(cores, group, events, contexts, 80)
        assert committed == 16
        assert group.interconnect.total_transactions() == 2

    def test_mutual_prefetch_merges_same_line(self):
        # Both cores miss on the same cold line: one L2 fetch, one miss.
        records = [IpcRecord(1.0), BasicBlockRecord(0x80, 8)]
        cores, group, events, contexts, cache = self._build_shared_pair(
            list(records), list(records)
        )
        committed = self._run_shared(cores, group, events, contexts, 200)
        assert committed == 16
        assert cache.stats.misses == 1
        assert group.mshrs.stats.merges == 1

    def test_shared_access_latency_exceeds_private(self):
        records = [IpcRecord(1.0), BasicBlockRecord(0x0, 8)]
        engine, backend, events, context, _ = _build_private_core(list(records))
        private_cycles = None
        for now in range(200):
            events.run_due(now)
            engine.step(now)
            backend.step(now, engine.stall_cause(now))
            if context.state is ThreadState.FINISHED:
                private_cycles = now
                break
        cores, group, events2, contexts, _ = self._build_shared_pair(
            list(records), [IpcRecord(1.0), BasicBlockRecord(0x40, 8)]
        )
        self._run_shared(cores, group, events2, contexts, 200)
        shared_cycles = None
        for now in range(200):
            if contexts[0].state is ThreadState.FINISHED:
                shared_cycles = now
                break
        # The bus adds at least its 2-cycle latency to the fetch path.
        assert private_cycles is not None

    def test_request_states_progress(self):
        records_a = [IpcRecord(1.0), BasicBlockRecord(0x0, 8)]
        cores, group, events, contexts, _ = self._build_shared_pair(
            records_a, [IpcRecord(1.0), BasicBlockRecord(0x40, 8)]
        )
        engine = cores[0][0]
        engine.step(0)
        # The request is queued until the bus grants it.
        request = engine._ftq[0].pieces[0].request
        assert request is not None
        assert request.state is RequestState.QUEUED
        group.step(0)
        assert request.state in (RequestState.ON_BUS, RequestState.CACHE)
