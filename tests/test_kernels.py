"""Kernel backend tests: pylib semantics, compiled equivalence, selection.

``repro.kernels.pylib`` is the specification; the compiled backend must
be bit-identical on every operation, including tie-breaks and seen-set
insertion order. The equivalence classes here run both backends over the
same randomized operation streams and compare final table states. When
the extension is not already loaded, the fixture builds it into a temp
directory (skipping if the host has no C compiler), so the pure-Python
CI leg still exercises everything except the native code itself.

The routing classes cover the *consumer* side with no compiler at all:
each hot structure's kernel-call path is forced on (bound to ``pylib``)
and compared against its original inline loop.
"""

import importlib
import importlib.util
import random
import sys

import pytest

from repro.errors import ConfigurationError
from repro.kernels import pylib

# -- pylib semantics --------------------------------------------------------


class TestPylib:
    def test_find_way(self):
        row = [None, 0x40, 0x80, 0x40]
        assert pylib.find_way(row, 0x40) == 1  # first match wins
        assert pylib.find_way(row, None) == 0
        assert pylib.find_way(row, 0xC0) == -1
        assert pylib.find_way([], 0x40) == -1

    def test_gshare_update_matches_predictor_inline_path(self, monkeypatch):
        from repro.branch import gshare as gshare_module

        # Force the predictor onto its inline arithmetic, then replay
        # the same stream through pylib on a copied table.
        monkeypatch.setattr(gshare_module, "_native_update", None)
        predictor = gshare_module.GsharePredictor(size_bytes=1024)
        counters = list(predictor._counters)
        history = predictor._history
        mask = predictor._mask
        shift = predictor._index_shift
        rng = random.Random(11)
        for _ in range(2000):
            address = rng.randrange(1 << 20)
            taken = rng.random() < 0.5
            predictor.update(address, taken)
            history = pylib.gshare_update(
                counters, history, mask, shift, address, taken
            )
        assert counters == predictor._counters
        assert history == predictor._history

    def test_gshare_update_saturates(self):
        counters = [3, 0]
        assert pylib.gshare_update(counters, 0, 1, 0, 0, True) == 1
        assert counters == [3, 0]  # saturated high, no write
        assert pylib.gshare_update(counters, 1, 1, 0, 0, False) == 0
        assert counters == [3, 0]  # saturated low, no write

    def test_btb_probe(self):
        tags = [-1, 0x104]
        targets = [0, 0x9000]
        assert pylib.btb_probe(tags, targets, 1, 0x104) == 0x9000
        assert pylib.btb_probe(tags, targets, 1, 0x204) is None
        assert pylib.btb_probe(tags, targets, 0, -1) == 0  # tag match


# -- compiled backend equivalence ------------------------------------------


@pytest.fixture(scope="module")
def native(tmp_path_factory):
    """The compiled module: the loaded one, or a fresh temp-dir build."""
    from repro import kernels

    if kernels.NATIVE:
        return importlib.import_module("repro.kernels._native")
    from repro.kernels.build import build

    out = tmp_path_factory.mktemp("kernels")
    try:
        path = build(out_dir=out, verbose=False)
    except Exception as exc:  # no compiler / headers on this host
        pytest.skip(f"cannot build the native extension here: {exc}")
    spec = importlib.util.spec_from_file_location("_native", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _random_warm_tables(rng):
    """One randomized warm-structure state for a warm_lines trial."""
    l1_sets, l1_ways = 8, 4
    l2_sets, l2_ways = 16, 8
    line = lambda: rng.randrange(1 << 10) * 64  # noqa: E731
    l1_tags = [
        [line() if rng.random() < 0.5 else None for _ in range(l1_ways)]
        for _ in range(l1_sets)
    ]
    l1_order = [
        rng.sample(range(l1_ways), l1_ways) if rng.random() < 0.5 else None
        for _ in range(l1_sets)
    ]
    l2_tags = [
        [line() if rng.random() < 0.3 else None for _ in range(l2_ways)]
        for _ in range(l2_sets)
    ]
    l2_order = [
        rng.sample(range(l2_ways), l2_ways) if rng.random() < 0.5 else None
        for _ in range(l2_sets)
    ]
    state = {
        "lb_lines": [line() for _ in range(4)],
        "lb_uses": [rng.randrange(64) for _ in range(4)],
        "lb_clock": rng.randrange(64, 128),
        "l1_tags": l1_tags,
        "l1_order": l1_order,
        "l1_seen": set(rng.sample(range(0, 1 << 16, 64), 20)),
        "l2_tags": l2_tags,
        "l2_order": l2_order,
        "l2_seen": set(rng.sample(range(0, 1 << 16, 64), 20)),
    }
    start = rng.randrange(1 << 10) * 64
    end = start + rng.randrange(1, 40) * 64
    return state, (l1_ways, l2_ways), (start, end)


class TestCompiledEquivalence:
    def test_find_way(self, native):
        rng = random.Random(21)
        for _ in range(300):
            ways = rng.randrange(1, 9)
            row = [
                rng.randrange(16) * 64 if rng.random() < 0.7 else None
                for _ in range(ways)
            ]
            target = (
                None if rng.random() < 0.3 else rng.randrange(16) * 64
            )
            assert native.find_way(row, target) == pylib.find_way(
                row, target
            ), (row, target)

    def test_gshare_update(self, native):
        rng = random.Random(22)
        mask = (1 << 12) - 1
        counters_a = [rng.randrange(4) for _ in range(mask + 1)]
        counters_b = list(counters_a)
        history_a = history_b = 0
        for _ in range(5000):
            address = rng.randrange(1 << 24)
            taken = rng.random() < 0.5
            history_a = native.gshare_update(
                counters_a, history_a, mask, 2, address, taken
            )
            history_b = pylib.gshare_update(
                counters_b, history_b, mask, 2, address, taken
            )
        assert history_a == history_b
        assert counters_a == counters_b

    def test_btb_probe(self, native):
        rng = random.Random(23)
        entries = 64
        tags = [
            rng.randrange(1 << 16) if rng.random() < 0.5 else -1
            for _ in range(entries)
        ]
        targets = [rng.randrange(1 << 16) for _ in range(entries)]
        for _ in range(2000):
            index = rng.randrange(entries)
            address = (
                tags[index] if rng.random() < 0.5 else rng.randrange(1 << 16)
            )
            assert native.btb_probe(
                tags, targets, index, address
            ) == pylib.btb_probe(tags, targets, index, address)

    def test_warm_lines(self, native):
        for trial in range(30):
            # Both states are drawn from identically-seeded generators:
            # a deepcopy would rebuild the seen-sets in iteration order
            # and silently perturb their internal layout.
            seed = 2400 + trial
            state, (l1_ways, l2_ways), span = _random_warm_tables(
                random.Random(seed)
            )
            mirror, _, _ = _random_warm_tables(random.Random(seed))
            args = (span[0], span[1], 64)
            shape = (l1_ways, 0, 7, l2_ways, 0, 15)

            def run(impl, s):
                return impl(
                    *args,
                    s["lb_lines"],
                    s["lb_uses"],
                    s["lb_clock"],
                    s["l1_tags"],
                    s["l1_order"],
                    shape[0],
                    shape[1],
                    shape[2],
                    s["l1_seen"],
                    s["l2_tags"],
                    s["l2_order"],
                    shape[3],
                    shape[4],
                    shape[5],
                    s["l2_seen"],
                )

            clock_native = run(native.warm_lines, state)
            clock_py = run(pylib.warm_lines, mirror)
            assert clock_native == clock_py, f"trial {trial}"
            for field in ("lb_lines", "lb_uses", "l1_tags", "l1_order",
                          "l2_tags", "l2_order"):
                assert state[field] == mirror[field], (trial, field)
            # Seen-sets must match including insertion order (identical
            # insertion sequences yield identical iteration order).
            assert list(state["l1_seen"]) == list(mirror["l1_seen"]), trial
            assert list(state["l2_seen"]) == list(mirror["l2_seen"]), trial


# -- backend selection ------------------------------------------------------


def _fresh_kernels(monkeypatch, value, block_native=False):
    """Re-import repro.kernels under ``REPRO_KERNELS=value``, leaving
    the process's real module bindings untouched afterwards."""
    if value is None:
        monkeypatch.delenv("REPRO_KERNELS", raising=False)
    else:
        monkeypatch.setenv("REPRO_KERNELS", value)
    saved = {
        name: sys.modules.pop(name)
        for name in list(sys.modules)
        if name == "repro.kernels" or name.startswith("repro.kernels.")
    }

    class _BlockNative:
        def find_spec(self, fullname, path=None, target=None):
            if fullname == "repro.kernels._native":
                raise ImportError("native extension blocked for this test")
            return None

    finder = _BlockNative() if block_native else None
    if finder is not None:
        sys.meta_path.insert(0, finder)
    try:
        return importlib.import_module("repro.kernels")
    finally:
        if finder is not None:
            sys.meta_path.remove(finder)
        for name in list(sys.modules):
            if name == "repro.kernels" or name.startswith("repro.kernels."):
                del sys.modules[name]
        sys.modules.update(saved)


class TestBackendSelection:
    def test_py_override_forces_fallback(self, monkeypatch):
        module = _fresh_kernels(monkeypatch, "py")
        assert module.NATIVE is False
        assert module.backend_name() == "py"
        assert module.find_way is module.pylib.find_way

    def test_invalid_value_rejected(self, monkeypatch):
        with pytest.raises(ConfigurationError, match="REPRO_KERNELS"):
            _fresh_kernels(monkeypatch, "fast")

    def test_compiled_without_extension_rejected(self, monkeypatch):
        with pytest.raises(ConfigurationError, match="not.*built"):
            _fresh_kernels(monkeypatch, "compiled", block_native=True)

    def test_default_falls_back_silently(self, monkeypatch):
        module = _fresh_kernels(monkeypatch, None, block_native=True)
        assert module.NATIVE is False
        assert module.backend_name() == "py"


# -- consumer routing (works with no compiler: kernel path = pylib) ---------


class TestConsumerRouting:
    def test_set_assoc_kernel_path_matches_inline(self, monkeypatch):
        from repro.cache import set_assoc

        def build():
            return set_assoc.SetAssociativeCache(
                size_bytes=4096, ways=4, line_bytes=64
            )

        rng = random.Random(31)
        stream = [rng.randrange(1 << 14) * 4 for _ in range(4000)]

        monkeypatch.setattr(set_assoc, "_native_find_way", None)
        inline = build()
        for address in stream:
            inline.access(address)

        monkeypatch.setattr(
            set_assoc, "_native_find_way", pylib.find_way
        )
        routed = build()
        for address in stream:
            routed.access(address)

        assert routed._tags == inline._tags
        assert routed._policy._order == inline._policy._order
        assert routed.stats.hits == inline.stats.hits
        assert routed.stats.misses == inline.stats.misses

    def test_gshare_kernel_path_matches_inline(self, monkeypatch):
        from repro.branch import gshare as gshare_module

        rng = random.Random(32)
        stream = [
            (rng.randrange(1 << 20), rng.random() < 0.5)
            for _ in range(3000)
        ]

        monkeypatch.setattr(gshare_module, "_native_update", None)
        inline = gshare_module.GsharePredictor(size_bytes=1024)
        for address, taken in stream:
            inline.update(address, taken)

        monkeypatch.setattr(
            gshare_module, "_native_update", pylib.gshare_update
        )
        routed = gshare_module.GsharePredictor(size_bytes=1024)
        for address, taken in stream:
            routed.update(address, taken)

        assert routed._counters == inline._counters
        assert routed._history == inline._history

    def test_btb_kernel_path_matches_inline(self, monkeypatch):
        from repro.branch import btb as btb_module

        rng = random.Random(33)
        stream = [
            (rng.randrange(1 << 12) * 4, rng.randrange(1 << 16))
            for _ in range(3000)
        ]

        monkeypatch.setattr(btb_module, "_native_probe", None)
        inline = btb_module.BranchTargetBuffer(entries=256)
        inline_correct = [
            inline.predict_and_update(a, t) for a, t in stream
        ]

        monkeypatch.setattr(btb_module, "_native_probe", pylib.btb_probe)
        routed = btb_module.BranchTargetBuffer(entries=256)
        routed_correct = [
            routed.predict_and_update(a, t) for a, t in stream
        ]

        assert routed_correct == inline_correct
        assert routed._tags == inline._tags
        assert routed._targets == inline._targets
        assert routed.stats == inline.stats

    def test_warmer_kernel_path_matches_inline(self, monkeypatch):
        from repro.machine.model import get_model
        from repro.sampling import BatchedWarmer, SamplingPlan
        from repro.sampling import warmer as warmer_module
        from repro.sampling.slicer import IntervalKind, slice_traces
        from repro.trace.synthesis import synthesize_benchmark

        model = get_model("acmp")
        config = model.shared_config(itlb_enabled=True)
        traces = synthesize_benchmark(
            "UA", thread_count=config.core_count, scale=0.2
        )
        plan = SamplingPlan(
            detail_instructions=2_000,
            skip_instructions=6_000,
            warmup_instructions=6_000,
        )
        intervals = [
            interval
            for interval in slice_traces(traces, plan)
            if interval.kind is not IntervalKind.SKIP
        ]
        assert intervals, "probe trace too small to slice"

        monkeypatch.setattr(warmer_module, "_native_warm", None)
        inline_system = model.build_system(config, traces)
        inline_warmer = BatchedWarmer(inline_system, traces)
        inline_blocks = sum(
            inline_warmer.warm_interval(i) for i in intervals
        )

        monkeypatch.setattr(
            warmer_module, "_native_warm", pylib.warm_lines
        )
        routed_system = model.build_system(config, traces)
        routed_warmer = BatchedWarmer(routed_system, traces)
        routed_blocks = sum(
            routed_warmer.warm_interval(i) for i in intervals
        )

        assert routed_blocks == inline_blocks > 0
        assert (
            routed_system.capture_warm_state().to_dict()
            == inline_system.capture_warm_state().to_dict()
        )
