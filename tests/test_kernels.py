"""Kernel backend tests: pylib semantics, compiled equivalence, selection.

``repro.kernels.pylib`` is the specification; the compiled backend must
be bit-identical on every operation, including tie-breaks and seen-set
insertion order. The equivalence classes here run both backends over the
same randomized operation streams and compare final table states. When
the extension is not already loaded, the fixture builds it into a temp
directory (skipping if the host has no C compiler), so the pure-Python
CI leg still exercises everything except the native code itself.

The routing classes cover the *consumer* side with no compiler at all:
each hot structure's kernel-call path is forced on (bound to ``pylib``)
and compared against its original inline loop.
"""

import importlib
import importlib.util
import random
import sys

import pytest

from repro.errors import ConfigurationError
from repro.kernels import pylib

# -- pylib semantics --------------------------------------------------------


class TestPylib:
    def test_find_way(self):
        row = [None, 0x40, 0x80, 0x40]
        assert pylib.find_way(row, 0x40) == 1  # first match wins
        assert pylib.find_way(row, None) == 0
        assert pylib.find_way(row, 0xC0) == -1
        assert pylib.find_way([], 0x40) == -1

    def test_gshare_update_matches_predictor_inline_path(self, monkeypatch):
        from repro.branch import gshare as gshare_module

        # Force the predictor onto its inline arithmetic, then replay
        # the same stream through pylib on a copied table.
        monkeypatch.setattr(gshare_module, "_native_update", None)
        predictor = gshare_module.GsharePredictor(size_bytes=1024)
        counters = list(predictor._counters)
        history = predictor._history
        mask = predictor._mask
        shift = predictor._index_shift
        rng = random.Random(11)
        for _ in range(2000):
            address = rng.randrange(1 << 20)
            taken = rng.random() < 0.5
            predictor.update(address, taken)
            history = pylib.gshare_update(
                counters, history, mask, shift, address, taken
            )
        assert counters == predictor._counters
        assert history == predictor._history

    def test_gshare_update_saturates(self):
        counters = [3, 0]
        assert pylib.gshare_update(counters, 0, 1, 0, 0, True) == 1
        assert counters == [3, 0]  # saturated high, no write
        assert pylib.gshare_update(counters, 1, 1, 0, 0, False) == 0
        assert counters == [3, 0]  # saturated low, no write

    def test_btb_probe(self):
        tags = [-1, 0x104]
        targets = [0, 0x9000]
        assert pylib.btb_probe(tags, targets, 1, 0x104) == 0x9000
        assert pylib.btb_probe(tags, targets, 1, 0x204) is None
        assert pylib.btb_probe(tags, targets, 0, -1) == 0  # tag match


# -- compiled backend equivalence ------------------------------------------


@pytest.fixture(scope="module")
def native(tmp_path_factory):
    """The compiled module: the loaded one, or a fresh temp-dir build."""
    from repro import kernels

    if kernels.NATIVE:
        return importlib.import_module("repro.kernels._native")
    from repro.kernels.build import build

    out = tmp_path_factory.mktemp("kernels")
    try:
        path = build(out_dir=out, verbose=False)
    except Exception as exc:  # no compiler / headers on this host
        pytest.skip(f"cannot build the native extension here: {exc}")
    spec = importlib.util.spec_from_file_location("_native", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _random_warm_tables(rng):
    """One randomized warm-structure state for a warm_lines trial."""
    l1_sets, l1_ways = 8, 4
    l2_sets, l2_ways = 16, 8
    line = lambda: rng.randrange(1 << 10) * 64  # noqa: E731
    l1_tags = [
        [line() if rng.random() < 0.5 else None for _ in range(l1_ways)]
        for _ in range(l1_sets)
    ]
    l1_order = [
        rng.sample(range(l1_ways), l1_ways) if rng.random() < 0.5 else None
        for _ in range(l1_sets)
    ]
    l2_tags = [
        [line() if rng.random() < 0.3 else None for _ in range(l2_ways)]
        for _ in range(l2_sets)
    ]
    l2_order = [
        rng.sample(range(l2_ways), l2_ways) if rng.random() < 0.5 else None
        for _ in range(l2_sets)
    ]
    state = {
        "lb_lines": [line() for _ in range(4)],
        "lb_uses": [rng.randrange(64) for _ in range(4)],
        "lb_clock": rng.randrange(64, 128),
        "l1_tags": l1_tags,
        "l1_order": l1_order,
        "l1_seen": set(rng.sample(range(0, 1 << 16, 64), 20)),
        "l2_tags": l2_tags,
        "l2_order": l2_order,
        "l2_seen": set(rng.sample(range(0, 1 << 16, 64), 20)),
    }
    start = rng.randrange(1 << 10) * 64
    end = start + rng.randrange(1, 40) * 64
    return state, (l1_ways, l2_ways), (start, end)


class TestCompiledEquivalence:
    def test_find_way(self, native):
        rng = random.Random(21)
        for _ in range(300):
            ways = rng.randrange(1, 9)
            row = [
                rng.randrange(16) * 64 if rng.random() < 0.7 else None
                for _ in range(ways)
            ]
            target = (
                None if rng.random() < 0.3 else rng.randrange(16) * 64
            )
            assert native.find_way(row, target) == pylib.find_way(
                row, target
            ), (row, target)

    def test_gshare_update(self, native):
        rng = random.Random(22)
        mask = (1 << 12) - 1
        counters_a = [rng.randrange(4) for _ in range(mask + 1)]
        counters_b = list(counters_a)
        history_a = history_b = 0
        for _ in range(5000):
            address = rng.randrange(1 << 24)
            taken = rng.random() < 0.5
            history_a = native.gshare_update(
                counters_a, history_a, mask, 2, address, taken
            )
            history_b = pylib.gshare_update(
                counters_b, history_b, mask, 2, address, taken
            )
        assert history_a == history_b
        assert counters_a == counters_b

    def test_btb_probe(self, native):
        rng = random.Random(23)
        entries = 64
        tags = [
            rng.randrange(1 << 16) if rng.random() < 0.5 else -1
            for _ in range(entries)
        ]
        targets = [rng.randrange(1 << 16) for _ in range(entries)]
        for _ in range(2000):
            index = rng.randrange(entries)
            address = (
                tags[index] if rng.random() < 0.5 else rng.randrange(1 << 16)
            )
            assert native.btb_probe(
                tags, targets, index, address
            ) == pylib.btb_probe(tags, targets, index, address)

    def test_warm_lines(self, native):
        for trial in range(30):
            # Both states are drawn from identically-seeded generators:
            # a deepcopy would rebuild the seen-sets in iteration order
            # and silently perturb their internal layout.
            seed = 2400 + trial
            state, (l1_ways, l2_ways), span = _random_warm_tables(
                random.Random(seed)
            )
            mirror, _, _ = _random_warm_tables(random.Random(seed))
            args = (span[0], span[1], 64)
            shape = (l1_ways, 0, 7, l2_ways, 0, 15)

            def run(impl, s):
                return impl(
                    *args,
                    s["lb_lines"],
                    s["lb_uses"],
                    s["lb_clock"],
                    s["l1_tags"],
                    s["l1_order"],
                    shape[0],
                    shape[1],
                    shape[2],
                    s["l1_seen"],
                    s["l2_tags"],
                    s["l2_order"],
                    shape[3],
                    shape[4],
                    shape[5],
                    s["l2_seen"],
                )

            clock_native = run(native.warm_lines, state)
            clock_py = run(pylib.warm_lines, mirror)
            assert clock_native == clock_py, f"trial {trial}"
            for field in ("lb_lines", "lb_uses", "l1_tags", "l1_order",
                          "l2_tags", "l2_order"):
                assert state[field] == mirror[field], (trial, field)
            # Seen-sets must match including insertion order (identical
            # insertion sequences yield identical iteration order).
            assert list(state["l1_seen"]) == list(mirror["l1_seen"]), trial
            assert list(state["l2_seen"]) == list(mirror["l2_seen"]), trial


# -- backend selection ------------------------------------------------------


def _fresh_kernels(monkeypatch, value, block_native=False):
    """Re-import repro.kernels under ``REPRO_KERNELS=value``, leaving
    the process's real module bindings untouched afterwards."""
    if value is None:
        monkeypatch.delenv("REPRO_KERNELS", raising=False)
    else:
        monkeypatch.setenv("REPRO_KERNELS", value)
    saved = {
        name: sys.modules.pop(name)
        for name in list(sys.modules)
        if name == "repro.kernels" or name.startswith("repro.kernels.")
    }

    class _BlockNative:
        def find_spec(self, fullname, path=None, target=None):
            if fullname == "repro.kernels._native":
                raise ImportError("native extension blocked for this test")
            return None

    finder = _BlockNative() if block_native else None
    if finder is not None:
        sys.meta_path.insert(0, finder)
    try:
        return importlib.import_module("repro.kernels")
    finally:
        if finder is not None:
            sys.meta_path.remove(finder)
        for name in list(sys.modules):
            if name == "repro.kernels" or name.startswith("repro.kernels."):
                del sys.modules[name]
        sys.modules.update(saved)


class TestBackendSelection:
    def test_py_override_forces_fallback(self, monkeypatch):
        module = _fresh_kernels(monkeypatch, "py")
        assert module.NATIVE is False
        assert module.backend_name() == "py"
        assert module.find_way is module.pylib.find_way

    def test_invalid_value_rejected(self, monkeypatch):
        with pytest.raises(ConfigurationError, match="REPRO_KERNELS"):
            _fresh_kernels(monkeypatch, "fast")

    def test_compiled_without_extension_rejected(self, monkeypatch):
        with pytest.raises(ConfigurationError, match="not.*built"):
            _fresh_kernels(monkeypatch, "compiled", block_native=True)

    def test_default_falls_back_silently(self, monkeypatch):
        module = _fresh_kernels(monkeypatch, None, block_native=True)
        assert module.NATIVE is False
        assert module.backend_name() == "py"


# -- consumer routing (works with no compiler: kernel path = pylib) ---------


class TestConsumerRouting:
    def test_set_assoc_kernel_path_matches_inline(self, monkeypatch):
        from repro.cache import set_assoc

        def build():
            return set_assoc.SetAssociativeCache(
                size_bytes=4096, ways=4, line_bytes=64
            )

        rng = random.Random(31)
        stream = [rng.randrange(1 << 14) * 4 for _ in range(4000)]

        monkeypatch.setattr(set_assoc, "_native_find_way", None)
        inline = build()
        for address in stream:
            inline.access(address)

        monkeypatch.setattr(
            set_assoc, "_native_find_way", pylib.find_way
        )
        routed = build()
        for address in stream:
            routed.access(address)

        assert routed._tags == inline._tags
        assert routed._policy._order == inline._policy._order
        assert routed.stats.hits == inline.stats.hits
        assert routed.stats.misses == inline.stats.misses

    def test_gshare_kernel_path_matches_inline(self, monkeypatch):
        from repro.branch import gshare as gshare_module

        rng = random.Random(32)
        stream = [
            (rng.randrange(1 << 20), rng.random() < 0.5)
            for _ in range(3000)
        ]

        monkeypatch.setattr(gshare_module, "_native_update", None)
        inline = gshare_module.GsharePredictor(size_bytes=1024)
        for address, taken in stream:
            inline.update(address, taken)

        monkeypatch.setattr(
            gshare_module, "_native_update", pylib.gshare_update
        )
        routed = gshare_module.GsharePredictor(size_bytes=1024)
        for address, taken in stream:
            routed.update(address, taken)

        assert routed._counters == inline._counters
        assert routed._history == inline._history

    def test_btb_kernel_path_matches_inline(self, monkeypatch):
        from repro.branch import btb as btb_module

        rng = random.Random(33)
        stream = [
            (rng.randrange(1 << 12) * 4, rng.randrange(1 << 16))
            for _ in range(3000)
        ]

        monkeypatch.setattr(btb_module, "_native_probe", None)
        inline = btb_module.BranchTargetBuffer(entries=256)
        inline_correct = [
            inline.predict_and_update(a, t) for a, t in stream
        ]

        monkeypatch.setattr(btb_module, "_native_probe", pylib.btb_probe)
        routed = btb_module.BranchTargetBuffer(entries=256)
        routed_correct = [
            routed.predict_and_update(a, t) for a, t in stream
        ]

        assert routed_correct == inline_correct
        assert routed._tags == inline._tags
        assert routed._targets == inline._targets
        assert routed.stats == inline.stats

    def test_warmer_kernel_path_matches_inline(self, monkeypatch):
        from repro.machine.model import get_model
        from repro.sampling import BatchedWarmer, SamplingPlan
        from repro.sampling import warmer as warmer_module
        from repro.sampling.slicer import IntervalKind, slice_traces
        from repro.trace.synthesis import synthesize_benchmark

        model = get_model("acmp")
        config = model.shared_config(itlb_enabled=True)
        traces = synthesize_benchmark(
            "UA", thread_count=config.core_count, scale=0.2
        )
        plan = SamplingPlan(
            detail_instructions=2_000,
            skip_instructions=6_000,
            warmup_instructions=6_000,
        )
        intervals = [
            interval
            for interval in slice_traces(traces, plan)
            if interval.kind is not IntervalKind.SKIP
        ]
        assert intervals, "probe trace too small to slice"

        # Pin the whole-span kernel off: this test isolates the
        # per-block warm_lines routing.
        monkeypatch.setattr(warmer_module, "_native_span", None)
        monkeypatch.setattr(warmer_module, "_native_warm", None)
        inline_system = model.build_system(config, traces)
        inline_warmer = BatchedWarmer(inline_system, traces)
        inline_blocks = sum(
            inline_warmer.warm_interval(i) for i in intervals
        )

        monkeypatch.setattr(
            warmer_module, "_native_warm", pylib.warm_lines
        )
        routed_system = model.build_system(config, traces)
        routed_warmer = BatchedWarmer(routed_system, traces)
        routed_blocks = sum(
            routed_warmer.warm_interval(i) for i in intervals
        )

        assert routed_blocks == inline_blocks > 0
        assert (
            routed_system.capture_warm_state().to_dict()
            == inline_system.capture_warm_state().to_dict()
        )


# -- whole-span warming kernel ----------------------------------------------


def _sampled_warm_setup(scale=0.2, **config_overrides):
    """A sliced UA trace plus builders for span-walk routing tests."""
    from repro.machine.model import get_model
    from repro.sampling import SamplingPlan
    from repro.sampling.slicer import IntervalKind, slice_traces
    from repro.trace.synthesis import synthesize_benchmark

    model = get_model("acmp")
    config = model.shared_config(itlb_enabled=True, **config_overrides)
    traces = synthesize_benchmark(
        "UA", thread_count=config.core_count, scale=scale
    )
    plan = SamplingPlan(
        detail_instructions=2_000,
        skip_instructions=6_000,
        warmup_instructions=6_000,
    )
    intervals = [
        interval
        for interval in slice_traces(traces, plan)
        if interval.kind is not IntervalKind.SKIP
    ]
    assert intervals, "probe trace too small to slice"
    return model, config, traces, intervals


class TestWarmerSpanRouting:
    def test_span_path_matches_inline(self, monkeypatch):
        from repro.sampling import BatchedWarmer
        from repro.sampling import warmer as warmer_module

        model, config, traces, intervals = _sampled_warm_setup()

        monkeypatch.setattr(warmer_module, "_native_span", None)
        monkeypatch.setattr(warmer_module, "_native_warm", None)
        inline_system = model.build_system(config, traces)
        inline_blocks = sum(
            BatchedWarmer(inline_system, traces).warm_interval(i)
            for i in intervals
        )

        monkeypatch.setattr(
            warmer_module, "_native_span", pylib.warm_span
        )
        routed_system = model.build_system(config, traces)
        routed_warmer = BatchedWarmer(routed_system, traces)
        assert all(shape is not None for shape in routed_warmer._shapes)
        routed_blocks = sum(
            routed_warmer.warm_interval(i) for i in intervals
        )

        assert routed_blocks == inline_blocks > 0
        assert (
            routed_system.capture_warm_state().to_dict()
            == inline_system.capture_warm_state().to_dict()
        )

    def test_non_lru_l1_takes_fallback(self, monkeypatch):
        from repro.sampling import BatchedWarmer
        from repro.sampling import warmer as warmer_module

        model, config, traces, intervals = _sampled_warm_setup(
            icache_policy="plru"
        )

        def forbidden(*args):
            raise AssertionError(
                "span kernel engaged for a non-LRU L1"
            )

        monkeypatch.setattr(warmer_module, "_native_span", forbidden)
        monkeypatch.setattr(warmer_module, "_native_warm", None)
        routed_system = model.build_system(config, traces)
        routed_warmer = BatchedWarmer(routed_system, traces)
        assert all(shape is None for shape in routed_warmer._shapes)
        routed_blocks = sum(
            routed_warmer.warm_interval(i) for i in intervals
        )

        monkeypatch.setattr(warmer_module, "_native_span", None)
        inline_system = model.build_system(config, traces)
        inline_blocks = sum(
            BatchedWarmer(inline_system, traces).warm_interval(i)
            for i in intervals
        )

        assert routed_blocks == inline_blocks > 0
        assert (
            routed_system.capture_warm_state().to_dict()
            == inline_system.capture_warm_state().to_dict()
        )

    def test_span_path_safe_after_restore(self, monkeypatch):
        """Restores adopt snapshot storage; the span walk must re-read
        the inner tables and keep warming the adopted ones."""
        from repro.sampling import BatchedWarmer
        from repro.sampling import warmer as warmer_module

        model, config, traces, intervals = _sampled_warm_setup()
        assert len(intervals) >= 2

        def round_trip(span_impl):
            monkeypatch.setattr(warmer_module, "_native_span", span_impl)
            monkeypatch.setattr(warmer_module, "_native_warm", None)
            first = model.build_system(config, traces)
            BatchedWarmer(first, traces).warm_interval(intervals[0])
            snapshot = first.capture_warm_state()
            second = model.build_system(config, traces)
            warmer = BatchedWarmer(second, traces)
            second.restore_warm_state(snapshot)
            warmer.warm_interval(intervals[1])
            return second.capture_warm_state().to_dict()

        assert round_trip(pylib.warm_span) == round_trip(None)

    def test_span_encoding_cache_invalidation(self):
        from repro.sampling import BatchedWarmer

        model, config, traces, _ = _sampled_warm_setup()
        warmer = BatchedWarmer(model.build_system(config, traces), traces)
        records = traces.threads[0].records

        first = warmer._span_encoding(0, records)
        assert warmer._span_encoding(0, records) is first  # cached

        replaced = list(records)
        rebuilt = warmer._span_encoding(0, replaced)
        assert rebuilt is not first  # new list identity
        assert rebuilt.prefix == first.prefix

        replaced.append(replaced[0])
        regrown = warmer._span_encoding(0, replaced)
        assert regrown is not rebuilt  # same list, new length
        assert regrown.length == rebuilt.length + 1


# -- replay_walk: spec, consumer routing, compiled equivalence ---------------


def _random_engine(rng):
    from repro.backend.backend import CommitEngine

    engine = CommitEngine(
        iq_capacity=rng.choice([8, 16, 64]),
        initial_ipc=rng.choice([0.3, 0.6, 0.75, 1.0, 1.6, 2.3]),
    )
    engine.iq_push(rng.randrange(0, engine.iq_capacity + 1))
    engine._credit = rng.uniform(0.0, 0.99)
    return engine


class TestReplayWalkSpec:
    """pylib.replay_walk against the stepped CommitEngine loops."""

    def test_planning_modes_match_inline_walks(self, monkeypatch):
        from repro.backend import backend as backend_module

        monkeypatch.setattr(backend_module, "_native_replay", None)
        rng = random.Random(51)
        for _ in range(300):
            engine = _random_engine(rng)
            cap = rng.choice([5, 64, 4096])
            space = rng.randrange(0, engine.iq_capacity + 1)
            credit, ipc = engine._credit, engine._ipc
            iq = engine._iq_count

            next_commit = pylib.replay_walk(
                pylib.REPLAY_NEXT, credit, ipc, iq, cap, -1
            )
            assert engine.cycles_to_next_commit(cap) == (
                (next_commit or None) if iq else None
            )

            space_limit = engine.iq_capacity - space if space else -1
            horizon = pylib.replay_walk(
                pylib.REPLAY_HORIZON, credit, ipc, iq, cap, space_limit
            )
            assert engine.replay_horizon(space, cap) == (
                horizon if iq else None
            )

            drain = pylib.replay_walk(
                pylib.REPLAY_DRAIN, credit, ipc, iq, cap, -1
            )
            assert engine.drain_horizon(cap) == (
                (drain or None) if iq else None
            )

    def test_steps_mode_matches_stepped_settlement(self, monkeypatch):
        from repro.backend import backend as backend_module
        from repro.errors import SimulationError

        monkeypatch.setattr(backend_module, "_native_replay", None)
        rng = random.Random(52)
        stalls = 0
        for _ in range(400):
            engine = _random_engine(rng)
            cycles = rng.randrange(1, 60)
            committed, base, last, iq, credit, stalled = pylib.replay_walk(
                pylib.REPLAY_STEPS,
                engine._credit,
                engine._ipc,
                engine._iq_count,
                cycles,
                -1,
            )
            before = (engine.stats.committed, engine.stats.base_cycles)
            if stalled:
                stalls += 1
                with pytest.raises(SimulationError, match="stall boundary"):
                    engine.replay_steps(cycles)
            else:
                assert engine.replay_steps(cycles) == (
                    committed,
                    last if last else None,
                )
            # Identical post state either way: the walk stops on the
            # stall cycle with its credit earned and nothing charged.
            assert engine._iq_count == iq
            assert repr(engine._credit) == repr(credit)
            assert engine.stats.committed == before[0] + committed
            assert engine.stats.base_cycles == before[1] + base
        assert stalls > 0, "trial mix never crossed a stall boundary"


class TestBackendReplayRouting:
    """The CommitEngine kernel path (bound to pylib) vs its inline loops."""

    def test_routed_walks_match_inline(self, monkeypatch):
        from repro.backend import backend as backend_module

        rng = random.Random(53)
        for _ in range(200):
            seed = rng.randrange(1 << 30)
            cap = rng.choice([7, 64, 4096])
            capacity = _random_engine(random.Random(seed)).iq_capacity
            space = rng.randrange(0, capacity + 1)

            def walk(engine):
                results = [
                    engine.cycles_to_next_commit(cap),
                    engine.replay_horizon(space, cap),
                    engine.drain_horizon(cap),
                ]
                span = (engine.replay_horizon(0, cap) or 1) - 1
                if span:
                    results.append(engine.replay_steps(span))
                    results.append(engine._iq_count)
                    results.append(repr(engine._credit))
                    results.append(engine.stats.committed)
                    results.append(engine.stats.base_cycles)
                return results

            # The binding is module-level, so run each engine's full walk
            # under its own binding before switching.
            monkeypatch.setattr(backend_module, "_native_replay", None)
            inline = _random_engine(random.Random(seed))
            inline_results = walk(inline)
            assert inline.replay_walk_engaged == 0

            monkeypatch.setattr(
                backend_module, "_native_replay", pylib.replay_walk
            )
            routed = _random_engine(random.Random(seed))
            occupied = routed._iq_count > 0
            assert walk(routed) == inline_results
            # An empty queue short-circuits before the kernel call.
            assert (routed.replay_walk_engaged > 0) == occupied

    def test_routed_stall_matches_inline(self, monkeypatch):
        from repro.backend import backend as backend_module
        from repro.errors import SimulationError

        def drained_engine():
            engine = backend_module.CommitEngine(
                iq_capacity=8, initial_ipc=2.0
            )
            engine.iq_push(3)
            return engine

        monkeypatch.setattr(backend_module, "_native_replay", None)
        inline = drained_engine()
        with pytest.raises(SimulationError, match="stall boundary"):
            inline.replay_steps(10)  # drains on cycle 2, stalls on 3

        monkeypatch.setattr(
            backend_module, "_native_replay", pylib.replay_walk
        )
        routed = drained_engine()
        with pytest.raises(SimulationError, match="stall boundary"):
            routed.replay_steps(10)

        assert routed._iq_count == inline._iq_count == 0
        assert repr(routed._credit) == repr(inline._credit)
        assert routed.stats.committed == inline.stats.committed
        assert routed.stats.base_cycles == inline.stats.base_cycles


def _random_span_columns(rng, blocks):
    """Flat span columns covering every branch kind and zero-line blocks."""
    starts, counts, kinds, keys, targets, takens = [], [], [], [], [], []
    for _ in range(blocks):
        starts.append(rng.randrange(1 << 16) & -64)
        counts.append(rng.randrange(0, 6))
        kind = rng.choice([0, 1, 1, 1, 2])
        kinds.append(kind)
        keys.append(rng.randrange(1 << 16))
        targets.append(rng.randrange(1 << 16))
        takens.append(rng.randrange(2))
    return starts, counts, kinds, keys, targets, takens


def _random_span_state(rng, have_itlb):
    """One randomized full warm-structure state for a warm_span trial."""
    l1_sets, l1_ways = 8, 2
    l2_sets, l2_ways = 16, 4
    return {
        "lb_lines": [None] * 4,
        "lb_uses": [0] * 4,
        "lb_clock": rng.randrange(64),
        "l1_tags": [[None] * l1_ways for _ in range(l1_sets)],
        "l1_order": [None] * l1_sets,
        "l1_ways": l1_ways,
        "l1_shift": 6,
        "l1_set_mask": l1_sets - 1,
        "l1_seen": set(),
        "l2_tags": [[None] * l2_ways for _ in range(l2_sets)],
        "l2_order": [None] * l2_sets,
        "l2_ways": l2_ways,
        "l2_shift": 6,
        "l2_set_mask": l2_sets - 1,
        "l2_seen": set(),
        "g_counters": [rng.randrange(4) for _ in range(64)],
        "g_history": rng.randrange(64),
        "g_mask": 63,
        "g_shift": 2,
        "lp_tags": [-1] * 16,
        "lp_trips": [0] * 16,
        "lp_currents": [0] * 16,
        "lp_conf": [0] * 16,
        "lp_mask": 15,
        "lp_shift": 2,
        "b_tags": [-1] * 32,
        "b_targets": [0] * 32,
        "b_mask": 31,
        "b_shift": 2,
        "t_map": {} if have_itlb else None,
        "t_seen": set() if have_itlb else None,
        "t_clock": rng.randrange(64),
        "t_shift": 12,
        "t_capacity": 4,
    }


_SPAN_ARG_ORDER = (
    "lb_lines", "lb_uses", "lb_clock",
    "l1_tags", "l1_order", "l1_ways", "l1_shift", "l1_set_mask", "l1_seen",
    "l2_tags", "l2_order", "l2_ways", "l2_shift", "l2_set_mask", "l2_seen",
    "g_counters", "g_history", "g_mask", "g_shift",
    "lp_tags", "lp_trips", "lp_currents", "lp_conf", "lp_mask", "lp_shift",
    "b_tags", "b_targets", "b_mask", "b_shift",
    "t_map", "t_seen", "t_clock", "t_shift", "t_capacity",
)


class TestCompiledSpanEquivalence:
    def test_warm_span(self, native):
        for trial in range(60):
            rng = random.Random(6200 + trial)
            columns = _random_span_columns(rng, rng.randrange(1, 40))
            have_itlb = trial % 2 == 0
            # Identically-seeded states, not deepcopies: a copy would
            # rebuild seen-sets/dicts in iteration order and silently
            # perturb their internal layout.
            state = _random_span_state(random.Random(trial), have_itlb)
            mirror = _random_span_state(random.Random(trial), have_itlb)
            bend = len(columns[0])
            bstart = rng.randrange(0, bend)

            def run(impl, s):
                return impl(
                    bstart, bend, 64, *columns,
                    *(s[name] for name in _SPAN_ARG_ORDER),
                )

            result_native = run(native.warm_span, state)
            result_py = run(pylib.warm_span, mirror)
            assert result_native == result_py, trial
            for name in _SPAN_ARG_ORDER:
                value, expected = state[name], mirror[name]
                if isinstance(value, set):
                    # Insertion order must match, not just membership.
                    assert list(value) == list(expected), (trial, name)
                elif isinstance(value, dict):
                    assert list(value.items()) == list(expected.items()), (
                        trial, name,
                    )
                else:
                    assert value == expected, (trial, name)

    def test_replay_walk(self, native):
        rng = random.Random(63)
        for trial in range(4000):
            mode = rng.randrange(4)
            credit = rng.uniform(0.0, 1.5)
            ipc = rng.choice(
                [0.3, 0.6, 0.75, 1.0, 1.6, 2.3, rng.uniform(0.05, 4.0)]
            )
            iq = rng.randrange(0, 80)
            count = rng.randrange(0, 300)
            space_limit = rng.choice([-1, rng.randrange(0, 80)])
            result_py = pylib.replay_walk(
                mode, credit, ipc, iq, count, space_limit
            )
            result_native = native.replay_walk(
                mode, credit, ipc, iq, count, space_limit
            )
            assert result_py == result_native, (trial, mode)
            if mode == pylib.REPLAY_STEPS:
                # Float credit must match bit for bit, not just ==.
                assert repr(result_py[4]) == repr(result_native[4]), trial


# -- build CLI ---------------------------------------------------------------


def _fresh_kernels_with_stale_native(monkeypatch, value):
    """Re-import repro.kernels against a fake pre-PR native module
    (old entry points only), restoring real bindings afterwards."""
    import types

    if value is None:
        monkeypatch.delenv("REPRO_KERNELS", raising=False)
    else:
        monkeypatch.setenv("REPRO_KERNELS", value)
    saved = {
        name: sys.modules.pop(name)
        for name in list(sys.modules)
        if name == "repro.kernels" or name.startswith("repro.kernels.")
    }
    stale = types.ModuleType("repro.kernels._native")
    stale.find_way = pylib.find_way
    stale.gshare_update = pylib.gshare_update
    stale.btb_probe = pylib.btb_probe
    stale.warm_lines = pylib.warm_lines  # no warm_span / replay_walk
    sys.modules["repro.kernels._native"] = stale
    try:
        return importlib.import_module("repro.kernels")
    finally:
        for name in list(sys.modules):
            if name == "repro.kernels" or name.startswith("repro.kernels."):
                del sys.modules[name]
        sys.modules.update(saved)


class TestStaleExtension:
    def test_compiled_with_stale_extension_rejected(self, monkeypatch):
        with pytest.raises(ConfigurationError, match="stale"):
            _fresh_kernels_with_stale_native(monkeypatch, "compiled")

    def test_default_demotes_stale_extension(self, monkeypatch):
        module = _fresh_kernels_with_stale_native(monkeypatch, None)
        assert module.NATIVE is False
        assert module.backend_name() == "py"


class TestBuildCli:
    def test_check_reports_backend_and_staleness(self, capsys):
        from repro.kernels import build as build_module

        status = build_module.main(["--check"])
        out = capsys.readouterr().out
        assert "backend:" in out
        assert "cc:" in out
        assert "staleness:" in out
        assert status in (0, 1)
        assert (status == 0) == ("staleness: current" in out)

    def test_build_failure_surfaces_compiler_stderr(
        self, monkeypatch, tmp_path
    ):
        from repro.kernels import build as build_module

        class _Failed:
            returncode = 1
            stderr = "synthetic-diagnostic: expected ';'"
            stdout = ""

        monkeypatch.setattr(
            build_module.subprocess,
            "run",
            lambda command, capture_output, text: _Failed(),
        )
        with pytest.raises(
            build_module.BuildError, match="synthetic-diagnostic"
        ):
            build_module.build(out_dir=tmp_path, verbose=False)
