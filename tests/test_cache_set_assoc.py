"""Unit and property tests for the set-associative cache and policies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.replacement import (
    FifoPolicy,
    LruPolicy,
    RandomPolicy,
    TreePlruPolicy,
    make_policy,
)
from repro.cache.set_assoc import SetAssociativeCache
from repro.errors import ConfigurationError


class TestConstruction:
    def test_paper_icache_geometry(self):
        # Table I: 32 KB, 8-way, 64 B lines.
        cache = SetAssociativeCache(32 * 1024, 8, 64)
        assert cache.set_count == 64

    def test_rejects_non_power_of_two_size(self):
        with pytest.raises(ConfigurationError):
            SetAssociativeCache(30000, 8, 64)

    def test_rejects_zero_ways(self):
        with pytest.raises(ConfigurationError):
            SetAssociativeCache(1024, 0, 64)

    def test_rejects_more_ways_than_lines(self):
        with pytest.raises(ConfigurationError):
            SetAssociativeCache(128, 4, 64)


class TestAccessBehaviour:
    def test_miss_then_hit(self):
        cache = SetAssociativeCache(1024, 2, 64)
        assert not cache.access(0x100).hit
        assert cache.access(0x100).hit
        assert cache.access(0x13F).hit  # same line
        assert cache.stats.misses == 1
        assert cache.stats.hits == 2

    def test_compulsory_classification(self):
        cache = SetAssociativeCache(256, 1, 64)  # 4 direct-mapped lines
        cache.access(0x000)
        cache.access(0x100)  # evicts 0x000 (same set, direct-mapped)
        cache.access(0x000)  # miss again: non-compulsory
        assert cache.stats.misses == 3
        assert cache.stats.compulsory_misses == 2
        assert cache.stats.non_compulsory_misses == 1

    def test_lru_eviction_order(self):
        cache = SetAssociativeCache(128, 2, 64)  # one set, two ways
        cache.access(0x000)
        cache.access(0x080)
        cache.access(0x000)  # touch: 0x080 is now LRU
        cache.access(0x100)  # evicts 0x080
        assert cache.probe(0x000)
        assert not cache.probe(0x080)
        assert cache.probe(0x100)

    def test_probe_does_not_update(self):
        cache = SetAssociativeCache(128, 2, 64)
        cache.access(0x000)
        cache.access(0x080)
        cache.probe(0x000)  # must NOT refresh recency of 0x000... probe only
        assert cache.stats.accesses == 2

    def test_fill_installs_silently(self):
        cache = SetAssociativeCache(1024, 2, 64)
        assert cache.fill(0x200) is None
        assert cache.probe(0x200)
        assert cache.stats.accesses == 0

    def test_invalidate_all(self):
        cache = SetAssociativeCache(1024, 2, 64)
        cache.access(0x100)
        cache.invalidate_all()
        assert not cache.probe(0x100)
        assert cache.resident_lines() == set()

    def test_victim_reported(self):
        cache = SetAssociativeCache(128, 1, 64)  # 2 sets direct-mapped
        cache.access(0x000)
        result = cache.access(0x080)  # same set as 0x000 (set stride 128)
        assert result.victim_line == 0x000

    @given(st.lists(st.integers(min_value=0, max_value=0xFFFF), min_size=1, max_size=400))
    @settings(max_examples=30)
    def test_capacity_invariant(self, addresses):
        cache = SetAssociativeCache(1024, 4, 64)
        for address in addresses:
            cache.access(address)
        assert len(cache.resident_lines()) <= 1024 // 64
        stats = cache.stats
        assert stats.hits + stats.misses == stats.accesses

    @given(st.lists(st.integers(min_value=0, max_value=0xFFFFF), min_size=1, max_size=300))
    @settings(max_examples=30)
    def test_fits_entirely_when_small(self, addresses):
        # Any working set smaller than one way-capacity per set never
        # re-misses: second pass over the same addresses is all hits.
        cache = SetAssociativeCache(1024 * 1024, 16, 64)
        lines = {a & ~63 for a in addresses}
        for address in addresses:
            cache.access(address)
        before = cache.stats.misses
        assert before == len(lines)
        for address in addresses:
            assert cache.access(address).hit


class TestPolicies:
    def test_make_policy_names(self):
        for name, cls in [
            ("lru", LruPolicy),
            ("fifo", FifoPolicy),
            ("random", RandomPolicy),
            ("plru", TreePlruPolicy),
        ]:
            assert isinstance(make_policy(name, 4, 4), cls)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            make_policy("mru", 4, 4)

    def test_fifo_ignores_touches(self):
        cache = SetAssociativeCache(128, 2, 64, policy="fifo")
        cache.access(0x000)
        cache.access(0x080)
        cache.access(0x000)  # touch should not matter for FIFO
        cache.access(0x100)  # evicts 0x000 (oldest fill)
        assert not cache.probe(0x000)
        assert cache.probe(0x080)

    def test_plru_requires_power_of_two_ways(self):
        with pytest.raises(ConfigurationError):
            TreePlruPolicy(4, 3)

    def test_plru_victim_matches_lru_after_inorder_fills(self):
        policy = TreePlruPolicy(1, 4)
        for way in (0, 1, 2, 3):
            policy.on_fill(0, way)
        assert policy.victim(0) == 0

    def test_plru_victim_moves_away_from_touched_half(self):
        policy = TreePlruPolicy(1, 4)
        for way in (0, 1, 2, 3):
            policy.on_fill(0, way)
        policy.on_access(0, 0)
        assert policy.victim(0) in (2, 3)

    def test_random_policy_deterministic_with_seed(self):
        a = RandomPolicy(1, 8, seed=7)
        b = RandomPolicy(1, 8, seed=7)
        assert [a.victim(0) for _ in range(20)] == [b.victim(0) for _ in range(20)]

    @given(st.lists(st.integers(min_value=0, max_value=0x3FFF), min_size=1, max_size=200))
    @settings(max_examples=20)
    def test_all_policies_produce_valid_states(self, addresses):
        for policy in ("lru", "fifo", "random", "plru"):
            cache = SetAssociativeCache(512, 2, 64, policy=policy)
            for address in addresses:
                cache.access(address)
            assert len(cache.resident_lines()) <= 8
