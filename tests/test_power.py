"""Tests for the area/power models against the paper's published relations."""

import pytest

from repro.acmp import baseline_config, simulate, worker_shared_config
from repro.power import (
    DEFAULT_TECH,
    cache_access_energy_nj,
    cache_area_mm2,
    evaluate_power,
    interconnect_area_mm2,
    single_bus_area_mm2,
    worker_cluster_area,
)
from repro.trace.synthesis import synthesize_benchmark


class TestCacheModel:
    def test_area_grows_with_capacity(self):
        assert cache_area_mm2(32 * 1024) > cache_area_mm2(16 * 1024)

    def test_icache_share_of_core(self):
        # Section II-C: McPAT shows lean cores spend ~15% of area on I-caches.
        icache = cache_area_mm2(32 * 1024)
        core_total = DEFAULT_TECH.core_area_mm2 + icache
        assert 0.08 < icache / core_total < 0.20

    def test_access_energy_sublinear(self):
        # CACTI-like sqrt scaling: halving capacity saves ~30% per access.
        e32 = cache_access_energy_nj(32 * 1024)
        e16 = cache_access_energy_nj(16 * 1024)
        assert e16 / e32 == pytest.approx(0.707, rel=0.01)


class TestBusModel:
    def test_area_quadratic_in_width(self):
        # Section VI-D: quadratic dependence of bus area on line width.
        narrow = single_bus_area_mm2(32, 8)
        wide = single_bus_area_mm2(64, 8)
        assert 3.0 < wide / narrow < 4.2

    def test_double_bus_is_4x_single(self):
        # Section VI-B: two buses quadruple the I-interconnect area.
        single = interconnect_area_mm2(32, 8, 1)
        double = interconnect_area_mm2(32, 8, 2)
        assert double == pytest.approx(4 * single)

    def test_double_bus_fraction_of_16kb_cache(self):
        # Section VI-D: a double I-bus is ~45% of a 16 KB I-cache.
        ratio = interconnect_area_mm2(32, 8, 2) / cache_area_mm2(16 * 1024)
        assert 0.3 < ratio < 0.6

    def test_crossbar_grows_with_ports(self):
        bus = interconnect_area_mm2(32, 8, 4)
        crossbar = interconnect_area_mm2(32, 8, 4, crossbar=True)
        assert crossbar > bus


class TestClusterArea:
    def test_paper_headline_area_saving(self):
        # Fig. 12: the 16 KB shared + double bus design saves ~11% area.
        base = worker_cluster_area(baseline_config()).total
        shared = worker_cluster_area(worker_shared_config()).total
        saving = 1 - shared / base
        assert 0.08 < saving < 0.14

    def test_single_bus_saves_most_area(self):
        double = worker_cluster_area(worker_shared_config(bus_count=2)).total
        single = worker_cluster_area(worker_shared_config(bus_count=1)).total
        assert single < double

    def test_more_line_buffers_cost_area(self):
        four = worker_cluster_area(worker_shared_config(line_buffers=4)).total
        eight = worker_cluster_area(worker_shared_config(line_buffers=8)).total
        assert eight > four

    def test_breakdown_totals(self):
        area = worker_cluster_area(baseline_config())
        assert area.total == pytest.approx(
            area.cores + area.icaches + area.line_buffers + area.interconnect
        )
        assert area.interconnect == 0.0  # private baseline has no I-bus


class TestEnergyEvaluation:
    @pytest.fixture(scope="class")
    def runs(self):
        traces = synthesize_benchmark("CG", thread_count=9, scale=0.15)
        base_config = baseline_config()
        shared_config = worker_shared_config()
        base = simulate(base_config, traces)
        shared = simulate(shared_config, traces)
        return (
            evaluate_power(base, base_config),
            evaluate_power(shared, shared_config),
        )

    def test_energy_positive_components(self, runs):
        base, shared = runs
        for report in runs:
            breakdown = report.energy.as_dict()
            assert breakdown["total"] > 0
            assert breakdown["static"] > 0
            assert breakdown["core_dynamic"] > 0

    def test_sharing_saves_energy(self, runs):
        # Fig. 12: the chosen design point saves ~5% energy.
        base, shared = runs
        saving = 1 - shared.energy_nj / base.energy_nj
        assert 0.0 < saving < 0.15

    def test_baseline_has_no_bus_energy(self, runs):
        base, shared = runs
        assert base.energy.interconnect_dynamic == 0.0
        assert shared.energy.interconnect_dynamic > 0.0

    def test_area_ratio_matches_static_model(self, runs):
        base, shared = runs
        assert shared.area_mm2 < base.area_mm2
