"""Tests for the drain-then-penalty branch-redirect model.

A mispredicted branch resolves in the back-end, roughly when the
pre-branch backlog has committed; only then does the front-end pay the
flush/refill penalty and restart fetch. This is what exposes the shared
I-cache's access latency on every misprediction — the mechanism behind
the Fig. 13 serial-code penalty.
"""

from random import Random

import pytest

from repro.acmp import baseline_config, simulate, worker_shared_config
from repro.errors import WorkloadError
from repro.trace.records import (
    BasicBlockRecord,
    BranchKind,
    BranchOutcome,
    IpcRecord,
)
from repro.trace.stream import ThreadTrace, TraceSet


def _random_branch_blocks(count, rng, address=0x1000):
    """Blocks whose branches are unpredictable (taken to fall-through)."""
    blocks = []
    for _ in range(count):
        block = BasicBlockRecord(
            address,
            8,
            BranchOutcome(
                BranchKind.CONDITIONAL,
                rng.random() < 0.5,
                address + 32,  # fall-through target: control flow unchanged
            ),
        )
        blocks.append(block)
    return blocks


def _steady_blocks(count, address=0x1000):
    return [
        BasicBlockRecord(
            address, 8, BranchOutcome(BranchKind.CONDITIONAL, True, address)
        )
        for _ in range(count)
    ]


def _single_thread_set(records):
    # worker_count=1 => master + one worker; give the worker a minimal
    # matching phase structure.
    from repro.trace.records import SyncKind, SyncRecord

    master = [IpcRecord(2.0)] + records + [
        SyncRecord(SyncKind.PARALLEL_START, 0),
        IpcRecord(2.0),
        BasicBlockRecord(0x9000, 4),
        SyncRecord(SyncKind.PARALLEL_END, 0),
    ]
    worker = [
        SyncRecord(SyncKind.PARALLEL_START, 0),
        IpcRecord(1.0),
        BasicBlockRecord(0x9000, 4),
        SyncRecord(SyncKind.PARALLEL_END, 0),
    ]
    return TraceSet("redirect", [ThreadTrace(0, master), ThreadTrace(1, worker)])


class TestDrainSemantics:
    def test_random_branches_cost_penalty_per_mispredict(self):
        rng = Random(11)
        noisy = _single_thread_set(_random_branch_blocks(80, rng))
        steady = _single_thread_set(_steady_blocks(80))
        config = baseline_config(worker_count=1, cores_per_cache=1)
        noisy_result = simulate(config, noisy)
        steady_result = simulate(config, steady)
        redirects = noisy_result.cores[0].redirects
        assert redirects > 10
        extra = noisy_result.cycles - steady_result.cycles
        # Each redirect costs at least the refill penalty once the
        # pipeline drains (master penalty is 12 cycles).
        assert extra >= redirects * 8

    def test_branch_stalls_attributed(self):
        rng = Random(12)
        noisy = _single_thread_set(_random_branch_blocks(80, rng))
        config = baseline_config(worker_count=1, cores_per_cache=1)
        result = simulate(config, noisy)
        assert result.cores[0].stall_cycles["branch"] > 0

    def test_mispredict_exposes_shared_latency(self):
        # The same unpredictable-branch stream must cost *more* behind a
        # shared bus than with a private I-cache: every redirect refetches
        # through the interconnect.
        rng = Random(13)
        blocks = _random_branch_blocks(120, rng)
        model_kwargs = dict(worker_count=8)
        traces9 = TraceSet(
            "redirect9",
            [_single_thread_set(blocks).threads[0]]
            + [
                ThreadTrace(i, list(_single_thread_set(blocks).threads[1].records))
                for i in range(1, 9)
            ],
        )
        private = simulate(baseline_config(**model_kwargs), traces9)
        # all-shared puts the master's serial fetches behind the bus too.
        from repro.acmp import all_shared_config

        shared = simulate(all_shared_config(icache_kb=32, bus_count=2), traces9)
        assert shared.cycles >= private.cycles


class TestTraceHygiene:
    def test_fall_through_targets_keep_flow_linear(self):
        rng = Random(14)
        blocks = _random_branch_blocks(10, rng)
        for block in blocks:
            assert block.next_address in (block.end_address, block.branch.target)
            if block.branch.taken:
                assert block.branch.target == block.end_address

    def test_synthesiser_rejects_bad_scale(self):
        from repro.trace.synthesis import synthesize_benchmark

        with pytest.raises(WorkloadError):
            synthesize_benchmark("CG", scale=-1)
