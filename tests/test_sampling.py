"""Tests for repro.sampling: plans, slicing, warm state, extrapolation."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.acmp import baseline_config, worker_shared_config
from repro.campaign import ResultStore, RunSpec
from repro.errors import ConfigurationError
from repro.machine.model import get_model
from repro.machine.simulator import simulate
from repro.machine.warm import WarmState
from repro.sampling import (
    IntervalKind,
    SamplingPlan,
    interval_traceset,
    resolve_plan,
    simulate_sampled,
    slice_traces,
)
from repro.scmp import banked_config
from repro.trace.records import SyncKind, SyncRecord
from repro.trace.synthesis import synthesize_benchmark

#: A plan sized for the small synthetic traces the tests use.
TINY_PLAN = SamplingPlan(
    detail_instructions=2_000,
    skip_instructions=6_000,
    warmup_instructions=6_000,
)


class TestSamplingPlan:
    def test_spec_round_trip(self):
        plan = SamplingPlan(2000, 14000, 3000, seed=7)
        assert SamplingPlan.from_spec(plan.spec()) == plan

    @given(
        detail=st.integers(min_value=1, max_value=10**7),
        skip=st.integers(min_value=0, max_value=10**7),
        warmup_fraction=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=50, deadline=None)
    def test_spec_round_trip_property(self, detail, skip, warmup_fraction, seed):
        plan = SamplingPlan(detail, skip, int(skip * warmup_fraction), seed)
        assert SamplingPlan.from_spec(plan.spec()) == plan

    def test_presets_resolve(self):
        assert resolve_plan("") is None
        assert resolve_plan("none") is None
        fast = resolve_plan("fast")
        precise = resolve_plan("precise")
        assert 0 < fast.coverage < precise.coverage < 1
        # A raw spec resolves too.
        assert resolve_plan(fast.spec()) == fast

    def test_exact_plan(self):
        plan = SamplingPlan(1000, 0, 0)
        assert plan.exact and plan.coverage == 1.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(detail_instructions=0, skip_instructions=0, warmup_instructions=0),
            dict(detail_instructions=10, skip_instructions=-1, warmup_instructions=0),
            dict(detail_instructions=10, skip_instructions=5, warmup_instructions=6),
            dict(detail_instructions=10, skip_instructions=5, warmup_instructions=0, seed=-1),
        ],
    )
    def test_invalid_plans_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            SamplingPlan(**kwargs)

    @pytest.mark.parametrize("text", ["bogus", "d10:s5", "d10:sx:w1", "d1:d2:s0:w0"])
    def test_malformed_specs_rejected(self, text):
        with pytest.raises(ConfigurationError):
            resolve_plan(text)

    def test_seed_rotates_phase(self):
        offsets = {
            SamplingPlan(1000, 7000, 7000, seed=s).phase_offset
            for s in range(5)
        }
        assert len(offsets) > 1


def _critical_depth_ok(records):
    """True when WAIT/SIGNAL are balanced and never dip negative."""
    depth = 0
    for record in records:
        if isinstance(record, SyncRecord):
            if record.kind is SyncKind.WAIT:
                depth += 1
            elif record.kind is SyncKind.SIGNAL:
                depth -= 1
                if depth < 0:
                    return False
    return depth == 0


class TestSlicing:
    #: CG: plain fork-join; botsspar: critical sections (WAIT/SIGNAL).
    BENCHMARKS = ("CG", "botsspar")

    @pytest.mark.parametrize("bench", BENCHMARKS)
    @pytest.mark.parametrize("seed", (0, 3))
    def test_slices_tile_the_trace(self, bench, seed):
        traces = synthesize_benchmark(
            bench, thread_count=5, scale=0.3, seed=seed
        )
        intervals = slice_traces(traces, TINY_PLAN)
        assert len(intervals) > 1
        for thread_id, trace in enumerate(traces.threads):
            position = 0
            for interval in intervals:
                start, end = interval.spans[thread_id]
                assert start == position
                position = end
            assert position == len(trace.records)
        assert (
            sum(interval.instructions for interval in intervals)
            == traces.instruction_count
        )

    @pytest.mark.parametrize("bench", BENCHMARKS)
    def test_never_splits_sync_regions(self, bench):
        traces = synthesize_benchmark(bench, thread_count=5, scale=0.3)
        intervals = slice_traces(traces, TINY_PLAN)
        # Critical sections: every interval's span holds balanced
        # WAIT/SIGNAL pairs on every thread.
        for interval in intervals:
            for thread_id, (start, end) in enumerate(interval.spans):
                records = traces.threads[thread_id].records[start:end]
                assert _critical_depth_ok(records), (
                    f"interval {interval.index} splits a critical "
                    f"section on thread {thread_id}"
                )
        # Joins: all arrivals of one PARALLEL_END land in one interval;
        # forks: the master's announcement never lands after a worker's
        # start of the same phase.
        def interval_of(kind, thread_id, object_id):
            for interval in intervals:
                start, end = interval.spans[thread_id]
                for record in traces.threads[thread_id].records[start:end]:
                    if (
                        isinstance(record, SyncRecord)
                        and record.kind is kind
                        and record.object_id == object_id
                    ):
                        return interval.index
            return None

        phases = {
            record.object_id
            for record in traces.threads[0].records
            if isinstance(record, SyncRecord)
            and record.kind is SyncKind.PARALLEL_END
        }
        for phase in phases:
            ends = {
                interval_of(SyncKind.PARALLEL_END, t, phase)
                for t in range(traces.thread_count)
            }
            assert len(ends) == 1, f"join {phase} straddles intervals {ends}"
            master_start = interval_of(SyncKind.PARALLEL_START, 0, phase)
            for t in range(1, traces.thread_count):
                worker_start = interval_of(SyncKind.PARALLEL_START, t, phase)
                assert master_start <= worker_start

    def test_slicing_is_deterministic(self):
        traces = synthesize_benchmark("UA", thread_count=5, scale=0.3)
        assert slice_traces(traces, TINY_PLAN) == slice_traces(
            traces, TINY_PLAN
        )

    def test_serial_windows_are_exhaustive_detail(self):
        traces = synthesize_benchmark("CoMD", thread_count=5, scale=0.3)
        intervals = slice_traces(traces, TINY_PLAN)
        exhaustive = [i for i in intervals if i.exhaustive]
        assert exhaustive, "CoMD's serial stretches must be measured"
        from repro.trace.records import BasicBlockRecord

        for interval in exhaustive:
            assert interval.kind is IntervalKind.DETAIL
            # Exhaustive intervals are the serial stratum: worker
            # threads contribute no instructions to them.
            for thread_id in range(1, traces.thread_count):
                start, end = interval.spans[thread_id]
                assert not any(
                    isinstance(record, BasicBlockRecord)
                    for record in traces.threads[thread_id].records[start:end]
                )

    def test_exact_plan_yields_single_interval(self):
        traces = synthesize_benchmark("CG", thread_count=3, scale=0.1)
        intervals = slice_traces(traces, SamplingPlan(1000, 0, 0))
        assert len(intervals) == 1
        assert intervals[0].kind is IntervalKind.DETAIL
        assert intervals[0].exhaustive

    def test_materialised_interval_reopens_phases(self):
        traces = synthesize_benchmark("UA", thread_count=3, scale=0.3)
        intervals = slice_traces(traces, TINY_PLAN)
        mid_phase = [
            interval
            for interval in intervals
            if any(interval.entry_phases[t] for t in range(3))
        ]
        assert mid_phase, "expected at least one mid-phase interval"
        subset = interval_traceset(traces, mid_phase[0])
        for thread_id, phases in enumerate(mid_phase[0].entry_phases):
            records = subset.threads[thread_id].records
            reopened = [
                record.object_id
                for record in records[: len(phases)]
            ]
            assert reopened == list(phases)


class TestSamplingPlanInStoreKey:
    def test_spec_normalises_to_canonical_plan(self):
        spec = RunSpec(
            benchmark="CG", config=baseline_config(), sampling="fast"
        )
        plan = resolve_plan("fast")
        assert spec.sampling == plan.spec()
        assert SamplingPlan.from_spec(spec.sampling) == plan

    def test_sampled_and_full_entries_are_distinct(self, tmp_path):
        store = ResultStore(tmp_path)
        full = RunSpec(
            benchmark="CG", config=baseline_config(worker_count=2), scale=0.02
        )
        sampled = RunSpec(
            benchmark="CG",
            config=baseline_config(worker_count=2),
            scale=0.02,
            sampling="fast",
        )
        assert store.path_for(full) != store.path_for(sampled)
        result = simulate(
            full.config,
            synthesize_benchmark("CG", thread_count=3, scale=0.02),
        )
        store.put(full, result)
        assert store.get(sampled) is None  # never served across flavors

    def test_flavor_mismatch_inside_entry_rejected(self, tmp_path):
        import shutil

        from repro.errors import SimulationError

        store = ResultStore(tmp_path)
        full = RunSpec(
            benchmark="CG", config=baseline_config(worker_count=2), scale=0.02
        )
        sampled = RunSpec(
            benchmark="CG",
            config=baseline_config(worker_count=2),
            scale=0.02,
            sampling="fast",
        )
        result = simulate(
            full.config,
            synthesize_benchmark("CG", thread_count=3, scale=0.02),
        )
        path = store.put(full, result)
        target = store.path_for(sampled)
        shutil.copy(path, target)  # a full entry smuggled onto the path
        with pytest.raises(SimulationError, match="sampling flavor"):
            store.get(sampled)


def _warmed_system(model_name, config, bench="CG", scale=0.1):
    model = get_model(model_name)
    traces = synthesize_benchmark(
        bench, thread_count=config.core_count, scale=scale
    )
    system = model.build_system(config, traces)
    system.warm_instruction_l2s()
    from repro.machine.simulator import SystemSimulator

    SystemSimulator(system).run()
    return model, traces, system


class TestWarmState:
    @pytest.mark.parametrize(
        "machine,config",
        [
            ("acmp", worker_shared_config(itlb_enabled=True, shared_itlb=True)),
            ("acmp", baseline_config()),
            ("scmp", banked_config()),
        ],
        ids=["acmp-shared-itlb", "acmp-baseline", "scmp-banked"],
    )
    def test_snapshot_round_trips_through_json(self, machine, config):
        model, traces, system = _warmed_system(machine, config)
        captured = system.capture_warm_state().to_dict()
        rebuilt = WarmState.from_dict(
            json.loads(json.dumps(captured))  # full JSON round trip
        )
        fresh = model.build_system(config, traces)
        fresh.restore_warm_state(rebuilt)
        assert fresh.capture_warm_state().to_dict() == captured

    def test_restore_rejects_other_machine(self):
        acmp_model, traces, system = _warmed_system("acmp", baseline_config())
        state = system.capture_warm_state()
        scmp_traces = synthesize_benchmark("CG", thread_count=8, scale=0.1)
        scmp_system = get_model("scmp").build_system(
            banked_config(), scmp_traces
        )
        with pytest.raises(ConfigurationError, match="machine"):
            scmp_system.restore_warm_state(state)

    def test_restore_rejects_other_design_point(self):
        model, traces, system = _warmed_system("acmp", baseline_config())
        state = system.capture_warm_state()
        other = model.build_system(worker_shared_config(), traces)
        with pytest.raises(ConfigurationError, match="design point"):
            other.restore_warm_state(state)

    def test_warm_state_transfers_cache_contents(self):
        model, traces, system = _warmed_system("acmp", baseline_config())
        state = system.capture_warm_state()
        fresh = model.build_system(baseline_config(), traces)
        fresh.restore_warm_state(state)
        for warmed, restored in zip(
            system.group_hardware, fresh.group_hardware
        ):
            assert (
                warmed.cache.resident_lines()
                == restored.cache.resident_lines()
            )
            assert (
                warmed.hierarchy.l2.resident_lines()
                == restored.hierarchy.l2.resident_lines()
            )


class TestSampledSimulation:
    def test_fast_mode_error_bound_on_grid_workloads(self):
        """Sampled estimates stay within a stated bound of full runs on
        the equivalence-grid workloads (the bench probe enforces the
        tighter 2 % bound on reported *speedups* at full scale)."""
        bound = 0.10
        for bench in ("CG", "UA"):
            traces = synthesize_benchmark(bench, thread_count=9, scale=0.3)
            config = baseline_config()
            full = simulate(config, traces)
            sampled = simulate_sampled(config, traces, TINY_PLAN)
            error = abs(sampled.cycles - full.cycles) / full.cycles
            assert error <= bound, f"{bench}: {error:.1%} > {bound:.0%}"
            assert not sampled.sampling["exact"]
            assert sampled.sampling["intervals"]["detail"] >= 2

    def test_payload_shape(self):
        traces = synthesize_benchmark("CG", thread_count=9, scale=0.3)
        sampled = simulate_sampled(baseline_config(), traces, TINY_PLAN)
        info = sampled.sampling
        assert SamplingPlan.from_spec(info["plan"]) == TINY_PLAN
        assert 0 < info["coverage"] < 1
        assert info["total_instructions"] == traces.instruction_count
        assert 0 < info["measured_instructions"] < traces.instruction_count
        assert set(info["errors"]) == {"cycles", "icache_mpki", "branch_mpki"}
        # Per-stratum extrapolation factors and the measured startup
        # transient ride along for non-exact runs.
        assert info["factors"]["parallel"] > 1
        assert info["transient_cycles"] >= 0

    def test_long_serial_stretches_are_sampled_per_stratum(self):
        """CoMD's master-only stretches span many sampling periods, so
        the serial stratum gets the systematic schedule too instead of
        being exhaustively measured (the Amdahl floor PR 5 left)."""
        from repro.trace.records import BasicBlockRecord

        traces = synthesize_benchmark("CoMD", thread_count=5, scale=0.3)
        plan = SamplingPlan(500, 1_500, 1_500)
        intervals = slice_traces(traces, plan)
        sampled_serial = [
            i for i in intervals
            if i.stratum == "serial" and not i.exhaustive
        ]
        assert sampled_serial, "long serial stretches must be sampled"
        kinds = {interval.kind for interval in sampled_serial}
        assert IntervalKind.DETAIL in kinds and IntervalKind.WARM in kinds
        for interval in sampled_serial:
            # Serial stratum means master-only: worker threads commit
            # nothing inside these intervals.
            for thread_id in range(1, traces.thread_count):
                start, end = interval.spans[thread_id]
                assert not any(
                    isinstance(record, BasicBlockRecord)
                    for record in traces.threads[thread_id].records[start:end]
                )

        sampled = simulate_sampled(baseline_config(worker_count=4), traces, plan)
        info = sampled.sampling
        assert set(info["factors"]) == {"parallel", "serial"}
        assert info["factors"]["serial"] > 1

    def test_tiny_trace_falls_back_to_exact(self):
        traces = synthesize_benchmark("CG", thread_count=3, scale=0.02)
        plan = SamplingPlan(10**6, 7 * 10**6, 7 * 10**6)
        full = simulate(baseline_config(worker_count=2), traces)
        sampled = simulate_sampled(
            baseline_config(worker_count=2), traces, plan
        )
        assert sampled.sampling["exact"]
        assert sampled.sampling["coverage"] == 1.0
        assert sampled.cycles == full.cycles

    def test_plan_none_is_plain_simulation(self):
        traces = synthesize_benchmark("CG", thread_count=3, scale=0.02)
        result = simulate_sampled(
            baseline_config(worker_count=2), traces, None
        )
        assert result.sampling is None

    def test_sampled_result_serialization_round_trip(self):
        from repro.machine.serialization import result_from_dict, result_to_dict

        traces = synthesize_benchmark("CG", thread_count=9, scale=0.3)
        sampled = simulate_sampled(baseline_config(), traces, TINY_PLAN)
        payload = result_to_dict(sampled)
        assert "sampling" in payload
        rebuilt = result_from_dict(json.loads(json.dumps(payload)))
        assert rebuilt.sampling == sampled.sampling
        assert rebuilt.cycles == sampled.cycles

    def test_sampled_runs_are_deterministic(self):
        traces = synthesize_benchmark("UA", thread_count=9, scale=0.3)
        config = worker_shared_config()
        first = simulate_sampled(config, traces, TINY_PLAN)
        second = simulate_sampled(config, traces, TINY_PLAN)
        assert first.cycles == second.cycles
        assert first.sampling == second.sampling


class TestWarmStateCarriesMissClassifier:
    def test_compulsory_classification_survives_restore(self):
        """Lines ever resident are warm state: a restored cache must not
        re-classify capacity misses of old lines as compulsory."""
        from repro.cache.set_assoc import SetAssociativeCache

        cache = SetAssociativeCache(256, 2, 64)
        for line in range(0, 64 * 64, 64):  # far beyond capacity
            cache.access(line)
        assert cache.stats.compulsory_misses == cache.stats.misses
        fresh = SetAssociativeCache(256, 2, 64)
        fresh.load_warm_state(cache.warm_state())
        fresh.access(0)  # line 0 was seen (and evicted) long ago
        assert fresh.stats.misses == 1
        assert fresh.stats.compulsory_misses == 0

    def test_sampled_compulsory_share_tracks_full_run(self):
        """End to end: the Fig. 11 compulsory/capacity split must not
        collapse to all-compulsory under sampling."""
        config = worker_shared_config(icache_kb=16)
        traces = synthesize_benchmark("botsalgn", thread_count=9, scale=0.5)
        full = simulate(config, traces)
        sampled = simulate_sampled(config, traces, TINY_PLAN)

        def compulsory_share(result):
            shared = [g for g in result.cache_groups if g.shared]
            misses = sum(g.misses for g in shared)
            return sum(g.compulsory_misses for g in shared) / misses

        assert compulsory_share(full) < 0.95  # capacity pressure exists
        assert (
            abs(compulsory_share(sampled) - compulsory_share(full)) < 0.15
        )


class TestScmpAllShared:
    def test_core_count_overrides_keep_full_sharing(self):
        model = get_model("scmp")
        for count in (4, 8, 16):
            config = model.all_shared_config(core_count=count)
            assert config.core_count_total == count
            assert config.cores_per_cache == count
        config = model.all_shared_config(core_count_total=4)
        assert config.cores_per_cache == config.core_count_total == 4
