"""Unit tests for line buffers and MSHRs."""

import pytest

from repro.cache.line_buffer import LineBufferSet, LookupState
from repro.cache.mshr import MshrFile
from repro.errors import SimulationError


class TestLineBufferSet:
    def test_miss_then_allocate_then_hit(self):
        buffers = LineBufferSet(count=2)
        assert buffers.lookup(0x100) is LookupState.MISS
        assert buffers.allocate(0x100)
        assert buffers.lookup(0x108) is LookupState.PENDING  # same line
        buffers.fill(0x100)
        assert buffers.lookup(0x110) is LookupState.HIT

    def test_access_ratio_definition(self):
        # Fig. 9: ratio = lines fetched from I-cache / total line requests.
        buffers = LineBufferSet(count=4)
        buffers.lookup(0x000)
        buffers.allocate(0x000)
        buffers.fill(0x000)
        for _ in range(9):
            assert buffers.lookup(0x020) is LookupState.HIT
        assert buffers.stats.access_ratio == pytest.approx(0.1)

    def test_lru_reuse_of_oldest(self):
        buffers = LineBufferSet(count=2)
        for line in (0x000, 0x040):
            buffers.lookup(line)
            buffers.allocate(line)
            buffers.fill(line)
        buffers.lookup(0x000)  # refresh line 0: line 0x040 becomes LRU
        buffers.lookup(0x080)
        buffers.allocate(0x080)
        buffers.fill(0x080)
        assert buffers.lookup(0x000) is LookupState.HIT
        assert buffers.lookup(0x040) is LookupState.MISS

    def test_all_pending_blocks_allocation(self):
        buffers = LineBufferSet(count=1)
        buffers.lookup(0x000)
        assert buffers.allocate(0x000)
        assert not buffers.allocate(0x040)  # sole buffer is pending

    def test_discard_pending_keeps_valid(self):
        buffers = LineBufferSet(count=2)
        buffers.lookup(0x000)
        buffers.allocate(0x000)
        buffers.fill(0x000)
        buffers.lookup(0x040)
        buffers.allocate(0x040)
        assert buffers.discard_pending() == 1
        assert buffers.lookup(0x000) is LookupState.HIT
        assert buffers.lookup(0x040) is LookupState.MISS

    def test_late_fill_after_discard_is_dropped(self):
        buffers = LineBufferSet(count=1)
        buffers.lookup(0x000)
        buffers.allocate(0x000)
        buffers.discard_pending()
        buffers.fill(0x000)  # must not raise nor revive the line
        assert buffers.lookup(0x000) is LookupState.MISS

    def test_pending_count(self):
        buffers = LineBufferSet(count=4)
        for line in (0x000, 0x040, 0x080):
            buffers.lookup(line)
            buffers.allocate(line)
        assert buffers.pending_count() == 3
        buffers.fill(0x040)
        assert buffers.pending_count() == 2
        assert buffers.valid_lines() == {0x040}


class TestMshrFile:
    def test_new_then_merge(self):
        mshrs = MshrFile(capacity=4)
        assert mshrs.request(0x100, "a") == "new"
        assert mshrs.request(0x100, "b") == "merged"
        assert mshrs.outstanding(0x100)
        waiters = mshrs.complete(0x100)
        assert waiters == ["a", "b"]
        assert not mshrs.outstanding(0x100)

    def test_capacity_full(self):
        mshrs = MshrFile(capacity=1)
        assert mshrs.request(0x100, "a") == "new"
        assert mshrs.request(0x200, "b") == "full"
        assert mshrs.stats.full_stalls == 1

    def test_complete_unknown_raises(self):
        with pytest.raises(SimulationError):
            MshrFile(capacity=1).complete(0x500)

    def test_merge_statistics(self):
        mshrs = MshrFile(capacity=8)
        mshrs.request(0x100, 1)
        mshrs.request(0x100, 2)
        mshrs.request(0x100, 3)
        assert mshrs.stats.allocations == 1
        assert mshrs.stats.merges == 2
        assert mshrs.occupancy == 1
