"""Tests for the reusable simulation kernel (repro.engine).

Covers the clock, event-queue semantics (same-cycle rescheduling),
kernel progress/watchdog behaviour, and the ready/wake scheduler's
exact-equivalence contract against the cycle-by-cycle reference engine.
"""

import pytest

from repro.acmp import (
    baseline_config,
    result_to_dict,
    simulate,
    worker_shared_config,
)
from repro.acmp.simulator import AcmpSimulator
from repro.acmp.system import AcmpSystem
from repro.engine import NEVER, Clock, EventQueue, SimulationKernel
from repro.errors import DeadlockError, SimulationError
from repro.trace.records import (
    BasicBlockRecord,
    IpcRecord,
    SyncKind,
    SyncRecord,
)
from repro.trace.stream import ThreadTrace, TraceSet
from repro.trace.synthesis import synthesize_benchmark


class TestClock:
    def test_starts_at_zero_and_advances(self):
        clock = Clock()
        assert clock.now == 0
        assert clock.advance() == 1
        assert clock.now == 1

    def test_jump_forward(self):
        clock = Clock()
        clock.jump(100)
        assert clock.now == 100
        clock.jump(100)  # jumping to the current cycle is a no-op
        assert clock.now == 100

    def test_jump_backwards_rejected(self):
        clock = Clock(start=10)
        with pytest.raises(SimulationError):
            clock.jump(9)


class TestEventQueue:
    def test_fifo_within_a_cycle(self):
        events = EventQueue()
        order = []
        events.schedule(5, lambda: order.append("a"))
        events.schedule(5, lambda: order.append("b"))
        events.schedule(4, lambda: order.append("c"))
        assert events.run_due(5) == 3
        assert order == ["c", "a", "b"]

    def test_same_cycle_rescheduling_runs_in_same_drain(self):
        # A callback that schedules another event at the *current* cycle
        # must see it delivered within the same run_due call — the MSHR
        # retry path and chained fills depend on this.
        events = EventQueue()
        order = []

        def first():
            order.append("first")
            events.schedule(7, lambda: order.append("chained"))

        events.schedule(7, first)
        assert events.run_due(7) == 2
        assert order == ["first", "chained"]
        assert len(events) == 0

    def test_next_cycle_peek(self):
        events = EventQueue()
        assert events.next_cycle is None
        events.schedule(12, lambda: None)
        events.schedule(3, lambda: None)
        assert events.next_cycle == 3


class _CountdownComponent:
    """Commits one unit per cycle for `work` cycles, then goes to sleep."""

    def __init__(self, work: int) -> None:
        self.work = work
        self.slept_from: int | None = None
        self.woken_at: list[int] = []

    def step(self, now: int) -> int:
        if self.work > 0:
            self.work -= 1
            return 1
        return 0

    def sleep_plan(self, now: int) -> int | None:
        return NEVER if self.work == 0 else None

    def on_sleep(self, now: int) -> None:
        self.slept_from = now + 1

    def on_wake(self, now: int) -> None:
        self.woken_at.append(now)


class TestKernel:
    def test_finish_condition_ends_run(self):
        kernel = SimulationKernel(cycle_skip=False)
        component = _CountdownComponent(work=5)
        kernel.register(component)
        kernel.set_finish_condition(lambda: component.work == 0)
        assert kernel.run(max_cycles=100) == 5

    def test_max_cycles_guard(self):
        kernel = SimulationKernel(cycle_skip=False)
        component = _CountdownComponent(work=1 << 30)
        kernel.register(component)
        with pytest.raises(SimulationError, match="max_cycles"):
            kernel.run(max_cycles=10)

    def test_empty_ready_set_jumps_to_next_event(self):
        kernel = SimulationKernel()
        component = _CountdownComponent(work=3)
        kernel.register(component)
        finished = []
        kernel.events.schedule(1000, lambda: finished.append(True))
        kernel.set_finish_condition(lambda: bool(finished))
        assert kernel.run(max_cycles=10_000) == 1001
        # Steps at 0..2 commit and the component sleeps right after its
        # last one (unlike the old global gate, no zero-progress cycle
        # is needed first); the clock jumps 3 -> 1000.
        assert kernel.stats.skips == 1
        assert kernel.stats.cycles_skipped == 1000 - 3
        assert kernel.stats.cycles_executed == 4
        assert component.slept_from == 3
        assert component.woken_at == []  # the event never wakes it

    def test_timer_wake_resumes_component(self):
        kernel = SimulationKernel()

        class Napper:
            """Commits at cycle 0, naps 99 cycles, commits again at 100."""

            def __init__(self) -> None:
                self.commit_cycles: list[int] = []
                self.woken_at: list[int] = []

            def step(self, now: int) -> int:
                if now in (0, 100):
                    self.commit_cycles.append(now)
                    return 1
                return 0

            def sleep_plan(self, now: int) -> int | None:
                return 100 if now < 100 else NEVER

            def on_sleep(self, now: int) -> None:
                pass

            def on_wake(self, now: int) -> None:
                self.woken_at.append(now)

        napper = Napper()
        kernel.register(napper)
        kernel.set_finish_condition(lambda: len(napper.commit_cycles) == 2)
        assert kernel.run(max_cycles=10_000) == 101
        assert napper.woken_at == [100]
        assert napper.commit_cycles == [0, 100]
        assert kernel.stats.cycles_skipped > 0

    def test_explicit_wake_from_event_steps_same_cycle(self):
        kernel = SimulationKernel()
        component = _CountdownComponent(work=1)
        kernel.register(component)

        def refill():
            component.work = 2
            kernel.wake(component)

        kernel.events.schedule(50, refill)
        kernel.set_finish_condition(
            lambda: component.woken_at != [] and component.work == 0
        )
        assert kernel.run(max_cycles=10_000) == 52
        # The event at 50 wakes the component before stepping, so it
        # commits at cycles 50 and 51 (no lost cycle).
        assert component.woken_at == [50]
        assert kernel.stats.wakes == 1

    def test_deadlock_fires_across_skips(self):
        # With nothing scheduled and every component asleep forever, the
        # jump must not overshoot the watchdog: the deadlock fires at
        # exactly the cycle the stepped engine would raise at.
        kernel = SimulationKernel(stall_limit=500)
        component = _CountdownComponent(work=2)
        kernel.register(component)
        with pytest.raises(DeadlockError, match="cycle 502"):
            kernel.run(max_cycles=1_000_000)
        # Last progress at cycle 1; watchdog fires at 1 + 500 + 1.
        assert kernel.stats.cycles_skipped > 0

    def test_component_without_sleep_support_stays_ready(self):
        class Bare:
            def step(self, now):
                return 0

        kernel = SimulationKernel(stall_limit=100)
        kernel.register(Bare())
        with pytest.raises(DeadlockError):
            kernel.run(max_cycles=1_000)
        assert kernel.stats.cycles_skipped == 0
        assert kernel.stats.component_steps == kernel.stats.cycles_executed


def _master_records(phases=1):
    records = [IpcRecord(1.0), BasicBlockRecord(0x100, 8)]
    for phase in range(phases):
        records += [
            SyncRecord(SyncKind.PARALLEL_START, phase),
            IpcRecord(2.0),
            BasicBlockRecord(0x1000, 8),
            SyncRecord(SyncKind.PARALLEL_END, phase),
        ]
    return records


def _worker_records(phases=1):
    records = []
    for phase in range(phases):
        records += [
            SyncRecord(SyncKind.PARALLEL_START, phase),
            IpcRecord(1.0),
            BasicBlockRecord(0x1000, 8),
            SyncRecord(SyncKind.PARALLEL_END, phase),
        ]
    return records


class TestCycleSkipEquivalence:
    """Skip vs no-skip must produce bit-identical SimulationResults."""

    BENCHMARKS = ("CG", "UA", "CoMD")

    @pytest.mark.parametrize("bench", BENCHMARKS)
    def test_baseline_equivalence(self, bench):
        traces = synthesize_benchmark(bench, thread_count=9, scale=0.05, seed=0)
        config = baseline_config()
        fast = simulate(config, traces, cycle_skip=True)
        reference = simulate(config, traces, cycle_skip=False)
        assert result_to_dict(fast) == result_to_dict(reference)

    @pytest.mark.parametrize("bench", BENCHMARKS)
    def test_shared_equivalence(self, bench):
        traces = synthesize_benchmark(bench, thread_count=9, scale=0.05, seed=1)
        config = worker_shared_config()
        fast = simulate(config, traces, cycle_skip=True)
        reference = simulate(config, traces, cycle_skip=False)
        assert result_to_dict(fast) == result_to_dict(reference)

    def test_skip_path_actually_engages(self):
        traces = synthesize_benchmark("CoMD", thread_count=9, scale=0.05, seed=0)
        system = AcmpSystem(baseline_config(), traces)
        system.warm_instruction_l2s()
        simulator = AcmpSimulator(system, cycle_skip=True)
        simulator.run()
        stats = simulator.kernel.stats
        assert stats.skips > 0
        assert stats.cycles_skipped > 0
        assert stats.total_cycles == simulator.cycle

    def test_disabled_skip_never_jumps(self):
        traces = synthesize_benchmark("CG", thread_count=9, scale=0.02, seed=0)
        system = AcmpSystem(baseline_config(), traces)
        system.warm_instruction_l2s()
        simulator = AcmpSimulator(system, cycle_skip=False)
        simulator.run()
        assert simulator.kernel.stats.cycles_skipped == 0


class TestDeadlockAcrossSkips:
    def test_sync_deadlock_detected_with_skip_enabled(self):
        # Worker 2 waits for a phase the master never starts: every core
        # ends up blocked with an empty event queue. The fast path takes
        # one large jump to the watchdog cycle and must still raise.
        bad_worker = [
            SyncRecord(SyncKind.PARALLEL_START, 5),
            IpcRecord(1.0),
            BasicBlockRecord(0x1000, 8),
            SyncRecord(SyncKind.PARALLEL_END, 5),
        ]
        traces = TraceSet(
            "phantom",
            [
                ThreadTrace(0, _master_records()),
                ThreadTrace(1, _worker_records()),
                ThreadTrace(2, bad_worker),
            ],
        )
        config = baseline_config(worker_count=2)
        with pytest.raises(DeadlockError) as fast_error:
            simulate(config, traces, cycle_skip=True)
        with pytest.raises(DeadlockError) as reference_error:
            simulate(config, traces, cycle_skip=False)
        # Identical diagnosis, including the firing cycle.
        assert str(fast_error.value) == str(reference_error.value)
        assert "phase 5" in str(fast_error.value)
