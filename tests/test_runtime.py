"""Unit tests for the runtime coordinator (OpenMP replay)."""

import pytest

from repro.errors import SimulationError
from repro.runtime import RuntimeCoordinator, ThreadContext, ThreadState
from repro.trace.records import SyncKind, SyncRecord


def _runtime(n=3):
    contexts = [ThreadContext(thread_id=i) for i in range(n)]
    return RuntimeCoordinator(contexts), contexts


def _start(phase=0):
    return SyncRecord(SyncKind.PARALLEL_START, phase)


def _end(phase=0):
    return SyncRecord(SyncKind.PARALLEL_END, phase)


class TestParallelStart:
    def test_worker_blocks_until_master_starts(self):
        runtime, contexts = _runtime()
        assert not runtime.deliver(1, _start(), now=10)
        assert contexts[1].state is ThreadState.BLOCKED
        assert runtime.deliver(0, _start(), now=20)
        assert contexts[1].state is ThreadState.RUNNING
        assert contexts[1].block_cycles == 10

    def test_worker_proceeds_if_master_already_started(self):
        runtime, contexts = _runtime()
        assert runtime.deliver(0, _start(), now=0)
        assert runtime.deliver(1, _start(), now=5)
        assert contexts[1].state is ThreadState.RUNNING

    def test_master_never_blocks_at_start(self):
        runtime, contexts = _runtime()
        assert runtime.deliver(0, _start(), now=0)
        assert contexts[0].state is ThreadState.RUNNING

    def test_master_restart_rejected(self):
        runtime, _ = _runtime()
        runtime.deliver(0, _start(), now=0)
        with pytest.raises(SimulationError):
            runtime.deliver(0, _start(), now=1)

    def test_phases_independent(self):
        runtime, contexts = _runtime()
        runtime.deliver(0, _start(0), now=0)
        assert not runtime.deliver(1, _start(1), now=1)  # phase 1 not started
        runtime.deliver(0, _start(1), now=2)
        assert contexts[1].state is ThreadState.RUNNING


class TestJoin:
    def test_all_wait_for_last(self):
        runtime, contexts = _runtime(3)
        assert not runtime.deliver(0, _end(), now=0)
        assert not runtime.deliver(1, _end(), now=5)
        assert contexts[0].state is ThreadState.BLOCKED
        assert runtime.deliver(2, _end(), now=9)
        assert contexts[0].state is ThreadState.RUNNING
        assert contexts[1].state is ThreadState.RUNNING
        assert contexts[0].block_cycles == 9
        assert contexts[1].block_cycles == 4

    def test_barrier_kind_supported(self):
        runtime, contexts = _runtime(2)
        barrier = SyncRecord(SyncKind.BARRIER, 7)
        assert not runtime.deliver(0, barrier, now=0)
        assert runtime.deliver(1, barrier, now=3)
        assert contexts[0].state is ThreadState.RUNNING


class TestBarrierParticipantRace:
    """Regression tests: barrier membership is fixed when the barrier is
    created, not re-counted at every arrival.

    With per-arrival counting, a thread finishing between two arrivals
    changed the threshold later arrivals were compared against, so the
    release decision depended on the finish/arrival interleaving.
    """

    def test_finish_between_arrivals_still_releases_at_last_arrival(self):
        # 4 threads; barrier created at thread 0's arrival (4 expected).
        # Thread 3 finishes mid-flight without arriving: the remaining
        # three participants must still release the barrier.
        runtime, contexts = _runtime(4)
        barrier = SyncRecord(SyncKind.BARRIER, 1)
        assert not runtime.deliver(0, barrier, now=0)
        assert not runtime.deliver(1, barrier, now=1)
        contexts[3].finish(2)
        runtime.thread_finished(3, now=2)
        assert runtime.deliver(2, barrier, now=3)
        assert contexts[0].state is ThreadState.RUNNING
        assert contexts[1].state is ThreadState.RUNNING

    def test_finish_before_creation_not_counted(self):
        runtime, contexts = _runtime(3)
        contexts[2].finish(0)
        runtime.thread_finished(2, now=0)
        barrier = SyncRecord(SyncKind.BARRIER, 1)
        assert not runtime.deliver(0, barrier, now=1)
        assert runtime.deliver(1, barrier, now=2)

    def test_arrived_thread_not_discounted_on_other_finish(self):
        # An arrived (blocked) participant stays counted: only the
        # finishing thread itself leaves the expectation.
        runtime, contexts = _runtime(4)
        barrier = SyncRecord(SyncKind.BARRIER, 1)
        assert not runtime.deliver(0, barrier, now=0)
        contexts[3].finish(1)
        runtime.thread_finished(3, now=1)
        # Two of the three remaining participants have not arrived yet:
        # the barrier must not release before both do.
        assert not runtime.deliver(1, barrier, now=2)
        assert contexts[1].state is ThreadState.BLOCKED
        assert runtime.deliver(2, barrier, now=3)
        assert contexts[0].state is ThreadState.RUNNING

    def test_release_stays_arrival_driven(self):
        # When the *last* awaited participant finishes instead of
        # arriving, the barrier stays closed (the deadlock watchdog
        # surfaces the protocol violation); nothing wakes spuriously.
        runtime, contexts = _runtime(3)
        barrier = SyncRecord(SyncKind.BARRIER, 1)
        assert not runtime.deliver(0, barrier, now=0)
        assert not runtime.deliver(1, barrier, now=1)
        contexts[2].finish(2)
        runtime.thread_finished(2, now=2)
        assert contexts[0].state is ThreadState.BLOCKED
        assert contexts[1].state is ThreadState.BLOCKED


class TestLocks:
    def test_uncontended_acquire(self):
        runtime, contexts = _runtime()
        assert runtime.deliver(0, SyncRecord(SyncKind.WAIT, 1), now=0)
        assert contexts[0].state is ThreadState.RUNNING

    def test_contended_fifo_hand_off(self):
        runtime, contexts = _runtime(3)
        assert runtime.deliver(0, SyncRecord(SyncKind.WAIT, 1), now=0)
        assert not runtime.deliver(1, SyncRecord(SyncKind.WAIT, 1), now=1)
        assert not runtime.deliver(2, SyncRecord(SyncKind.WAIT, 1), now=2)
        assert runtime.deliver(0, SyncRecord(SyncKind.SIGNAL, 1), now=10)
        # FIFO: thread 1 gets the lock, thread 2 still waits.
        assert contexts[1].state is ThreadState.RUNNING
        assert contexts[2].state is ThreadState.BLOCKED
        assert runtime.lock_hand_offs == 1
        runtime.deliver(1, SyncRecord(SyncKind.SIGNAL, 1), now=20)
        assert contexts[2].state is ThreadState.RUNNING

    def test_signal_without_hold_rejected(self):
        runtime, _ = _runtime()
        with pytest.raises(SimulationError):
            runtime.deliver(0, SyncRecord(SyncKind.SIGNAL, 5), now=0)

    def test_reacquire_rejected(self):
        runtime, _ = _runtime()
        runtime.deliver(0, SyncRecord(SyncKind.WAIT, 1), now=0)
        with pytest.raises(SimulationError):
            runtime.deliver(0, SyncRecord(SyncKind.WAIT, 1), now=1)


class TestDiagnostics:
    def test_all_blocked_detection(self):
        runtime, contexts = _runtime(2)
        assert not runtime.all_blocked()
        runtime.deliver(1, _start(), now=0)
        assert not runtime.all_blocked()
        contexts[0].block(0)
        assert runtime.all_blocked()

    def test_finished_threads_ignored(self):
        runtime, contexts = _runtime(2)
        contexts[0].finish(0)
        contexts[1].block(0)
        assert runtime.all_blocked()

    def test_describe_blockage_mentions_waiters(self):
        runtime, _ = _runtime(2)
        runtime.deliver(1, _start(4), now=0)
        assert "phase 4" in runtime.describe_blockage()
