"""Tests for the Hill-Marty ACMP speedup model (Fig. 1)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.models import (
    acmp_crossover_fraction,
    asymmetric_speedup,
    core_performance,
    figure1_series,
    symmetric_speedup,
)


class TestCorePerformance:
    def test_sqrt_law(self):
        # A big core spends 4x the resources for 2x the performance.
        assert core_performance(4) == pytest.approx(2 * core_performance(1))

    def test_rejects_non_positive(self):
        with pytest.raises(ConfigurationError):
            core_performance(0)


class TestSymmetric:
    def test_fully_parallel_uses_all_cores(self):
        # 16 small cores at perf 1: speedup 16 with no serial code.
        assert symmetric_speedup(0.0, 16, 1) == pytest.approx(16.0)

    def test_fully_serial_is_single_core(self):
        assert symmetric_speedup(1.0, 16, 4) == pytest.approx(2.0)

    def test_big_cores_win_at_high_serial(self):
        big = symmetric_speedup(0.3, 16, 4)
        small = symmetric_speedup(0.3, 16, 1)
        assert big > small

    def test_small_cores_win_at_low_serial(self):
        big = symmetric_speedup(0.0, 16, 4)
        small = symmetric_speedup(0.0, 16, 1)
        assert small > big

    def test_invalid_core_size_rejected(self):
        with pytest.raises(ConfigurationError):
            symmetric_speedup(0.1, 16, 32)


class TestAsymmetric:
    def test_matches_paper_figure_at_zero_serial(self):
        # Fig. 1: the ACMP tops out at 14 with no serial code
        # (big perf 2 + 12 small cores = 14 effective units).
        assert asymmetric_speedup(0.0, 16, 4) == pytest.approx(14.0)

    def test_serial_runs_at_big_core_speed(self):
        assert asymmetric_speedup(1.0, 16, 4) == pytest.approx(2.0)

    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_acmp_never_below_big_symmetric_serial_side(self, fraction):
        # The ACMP's serial performance equals the big core's, and its
        # parallel throughput exceeds the 4-big symmetric machine's
        # (2 + 12 = 14 > 4 cores x 2 = 8), so it dominates everywhere.
        acmp = asymmetric_speedup(fraction, 16, 4)
        symmetric = symmetric_speedup(fraction, 16, 4)
        assert acmp >= symmetric - 1e-9


class TestFigure1:
    def test_crossover_near_two_percent(self):
        crossover = acmp_crossover_fraction()
        assert 0.01 < crossover < 0.03  # paper reads ~2% off the figure

    def test_series_monotonic_decreasing(self):
        points = figure1_series()
        for earlier, later in zip(points, points[1:]):
            assert later.asymmetric <= earlier.asymmetric
            assert later.symmetric_small <= earlier.symmetric_small

    def test_small_symmetric_peaks_at_zero_serial(self):
        points = figure1_series()
        assert points[0].symmetric_small == pytest.approx(16.0)
        assert points[0].symmetric_big == pytest.approx(8.0)
