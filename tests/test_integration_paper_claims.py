"""End-to-end integration tests of the paper's headline claims.

These run the exact headline comparison a user would (baseline vs the
chosen 16 KB shared / double-bus design) on representative benchmarks and
assert the three numbers of the abstract: ~11 % area savings, energy
savings, no performance cost.
"""

import pytest

from repro.acmp import baseline_config, simulate, worker_shared_config
from repro.power import evaluate_power
from repro.trace.synthesis import synthesize_benchmark

#: One benchmark per behavioural class.
REPRESENTATIVES = ("CG", "UA", "LULESH")


@pytest.fixture(scope="module")
def headline_runs():
    runs = {}
    base_config = baseline_config()
    proposal_config = worker_shared_config()
    for name in REPRESENTATIVES:
        traces = synthesize_benchmark(name, thread_count=9, scale=0.25)
        base = simulate(base_config, traces)
        proposal = simulate(proposal_config, traces)
        runs[name] = (
            base,
            proposal,
            evaluate_power(base, base_config),
            evaluate_power(proposal, proposal_config),
        )
    return runs


class TestAbstractClaims:
    def test_no_performance_cost(self, headline_runs):
        # "11% area savings with a 5% energy reduction at no performance
        # cost" — never slower than baseline; small speedups (mutual
        # prefetching) are allowed, as in the paper's CoEVP case.
        for name, (base, proposal, _, _) in headline_runs.items():
            ratio = proposal.cycles / base.cycles
            assert 0.90 <= ratio <= 1.02, name

    def test_area_savings_around_11_percent(self, headline_runs):
        for name, (_, _, base_power, proposal_power) in headline_runs.items():
            saving = 1 - proposal_power.area_mm2 / base_power.area_mm2
            assert 0.08 < saving < 0.14, name

    def test_energy_savings_positive(self, headline_runs):
        for name, (_, _, base_power, proposal_power) in headline_runs.items():
            saving = 1 - proposal_power.energy_nj / base_power.energy_nj
            assert 0.0 < saving < 0.15, name

    def test_misses_reduced_by_sharing(self, headline_runs):
        for name, (base, proposal, _, _) in headline_runs.items():
            assert (
                proposal.worker_icache_misses() < base.worker_icache_misses()
            ), name

    def test_worker_cluster_smaller_but_work_identical(self, headline_runs):
        for name, (base, proposal, _, _) in headline_runs.items():
            assert proposal.total_committed == base.total_committed, name
