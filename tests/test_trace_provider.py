"""Trace providers, the capture hook, corpus resolution and the trace CLI."""

import pytest

from repro.errors import TraceError
from repro.trace import open_trace_set
from repro.trace.__main__ import main as trace_main
from repro.trace.fingerprint import trace_fingerprint
from repro.trace.provider import (
    SynthesisProvider,
    TraceDirectoryProvider,
    TraceProvider,
    capture_trace_set,
    provider_for,
    trace_set_slug,
)
from repro.trace.synthesis import synthesize_benchmark
from repro.trace.validation import validate_trace_set


class TestSynthesisProvider:
    def test_matches_direct_synthesis(self):
        provider = SynthesisProvider()
        mine = provider.trace_set("CG", thread_count=3, scale=0.02, seed=4)
        direct = synthesize_benchmark("CG", thread_count=3, scale=0.02, seed=4)
        assert [t.records for t in mine.threads] == [
            t.records for t in direct.threads
        ]

    def test_capture_hook_persists_and_is_idempotent(self, tmp_path):
        provider = SynthesisProvider(tmp_path / "corpus", chunk_records=64)
        traces = provider.trace_set("CG", thread_count=3, scale=0.02, seed=4)
        expected = (
            tmp_path / "corpus" / "CG" / trace_set_slug(3, 0.02, 4)
        )
        assert (expected / "manifest.txt").exists()
        streamed = open_trace_set(expected)
        assert [list(t) for t in streamed.threads] == [
            t.records for t in traces.threads
        ]
        assert trace_fingerprint(streamed) == trace_fingerprint(traces)
        # Second synthesis leaves the captured set untouched.
        marker = (expected / "manifest.txt").read_bytes()
        provider.trace_set("CG", thread_count=3, scale=0.02, seed=4)
        assert (expected / "manifest.txt").read_bytes() == marker

    def test_satisfies_protocol(self):
        assert isinstance(SynthesisProvider(), TraceProvider)


class TestDirectoryProvider:
    def _corpus(self, tmp_path):
        traces = synthesize_benchmark("UA", thread_count=3, scale=0.02, seed=1)
        capture_trace_set(traces, tmp_path, scale=0.02, seed=1)
        return traces

    def test_resolves_capture_layout(self, tmp_path):
        traces = self._corpus(tmp_path)
        provider = TraceDirectoryProvider(tmp_path)
        assert isinstance(provider, TraceProvider)
        loaded = provider.trace_set("UA", thread_count=3, scale=0.02, seed=1)
        assert [list(t) for t in loaded.threads] == [
            t.records for t in traces.threads
        ]

    def test_resolves_bare_set_directory(self, tmp_path):
        from repro.trace.encoding import write_trace_set

        traces = synthesize_benchmark("CG", thread_count=2, scale=0.02, seed=0)
        write_trace_set(traces, tmp_path / "CG", chunked=True)
        loaded = TraceDirectoryProvider(tmp_path).trace_set(
            "CG", thread_count=2
        )
        assert loaded.thread_count == 2

    def test_missing_benchmark_raises(self, tmp_path):
        self._corpus(tmp_path)
        with pytest.raises(TraceError, match="no captured trace set.*'BT'"):
            TraceDirectoryProvider(tmp_path).trace_set("BT", thread_count=3)

    def test_thread_count_mismatch_raises(self, tmp_path):
        from repro.trace.encoding import write_trace_set

        traces = synthesize_benchmark("CG", thread_count=2, scale=0.02, seed=0)
        write_trace_set(traces, tmp_path / "CG", chunked=True)
        with pytest.raises(TraceError, match="holds 2 threads"):
            TraceDirectoryProvider(tmp_path).trace_set("CG", thread_count=5)

    def test_missing_root_raises(self, tmp_path):
        with pytest.raises(TraceError, match="does not exist"):
            TraceDirectoryProvider(tmp_path / "nope")

    def test_provider_for_dispatch(self, tmp_path):
        assert isinstance(provider_for(None, None), SynthesisProvider)
        assert isinstance(provider_for(None, tmp_path).capture_dir.name, str)
        (tmp_path / "corpus").mkdir()
        assert isinstance(
            provider_for(tmp_path / "corpus"), TraceDirectoryProvider
        )


class TestStreamValidation:
    def test_streamed_set_validates_single_pass(self, tmp_path):
        from repro.trace.encoding import write_trace_set

        traces = synthesize_benchmark("CG", thread_count=3, scale=0.02, seed=2)
        write_trace_set(traces, tmp_path / "set", chunked=True, chunk_records=64)
        streamed = open_trace_set(tmp_path / "set")
        report = validate_trace_set(streamed)
        reference = validate_trace_set(traces)
        assert report.instruction_counts == reference.instruction_counts
        assert report.parallel_phase_count == reference.parallel_phase_count
        assert report.total_instructions == traces.instruction_count


class TestTraceCli:
    def test_capture_index_convert_dump(self, tmp_path, capsys):
        corpus = tmp_path / "corpus"
        assert (
            trace_main(
                [
                    "capture",
                    "CG",
                    "--out",
                    str(corpus),
                    "--threads",
                    "2",
                    "--scale",
                    "0.02",
                    "--seed",
                    "3",
                ]
            )
            == 0
        )
        set_dir = corpus / "CG" / trace_set_slug(2, 0.02, 3)
        assert (set_dir / "manifest.txt").exists()
        capsys.readouterr()

        assert trace_main(["index", str(set_dir)]) == 0
        index_out = capsys.readouterr().out
        assert "thread 0" in index_out and "chunks" in index_out

        eager = tmp_path / "eager"
        assert (
            trace_main(["convert", str(set_dir), str(eager), "--format", "trc"])
            == 0
        )
        rezip = tmp_path / "rezip"
        assert (
            trace_main(["convert", str(eager), str(rezip), "--format", "trcz"])
            == 0
        )
        capsys.readouterr()
        # Conversion through an eager intermediate is lossless AND
        # byte-stable: re-chunking reproduces the original files.
        for name in ("thread_000.trcz", "thread_001.trcz"):
            assert (rezip / name).read_bytes() == (set_dir / name).read_bytes()

        assert trace_main(["dump", str(rezip)]) == 0
        dump_out = capsys.readouterr().out
        assert dump_out.startswith("# set CG threads=2")
        assert "# thread 1" in dump_out

    def test_dump_single_file(self, tmp_path, capsys):
        corpus = tmp_path / "c"
        trace_main(
            ["capture", "UA", "--out", str(corpus), "--threads", "2",
             "--scale", "0.02", "--seed", "0"]
        )
        capsys.readouterr()
        set_dir = corpus / "UA" / trace_set_slug(2, 0.02, 0)
        assert trace_main(["dump", str(set_dir / "thread_001.trcz")]) == 0
        assert capsys.readouterr().out.startswith("# thread 1")

    def test_error_paths_exit_nonzero(self, tmp_path, capsys):
        assert trace_main(["index", str(tmp_path)]) == 1
        assert "error:" in capsys.readouterr().err
        assert trace_main(["dump", str(tmp_path / "missing.trc")]) == 1


class TestCampaignWiring:
    def test_execute_run_event_dir_matches_synthesis(self, tmp_path):
        from repro.acmp import AcmpConfig, result_to_dict
        from repro.campaign.runner import _traces_cached, execute_run
        from repro.campaign.spec import RunSpec

        _traces_cached.cache_clear()
        config = AcmpConfig(worker_count=2, cores_per_cache=2)
        spec = RunSpec(
            benchmark="CG", config=config, seed=5, scale=0.02
        )
        baseline = execute_run(spec)
        captured = execute_run(
            spec, None, "on", None, str(tmp_path / "corpus")
        )
        assert result_to_dict(captured) == result_to_dict(baseline)
        from_disk = execute_run(
            spec, None, "on", str(tmp_path / "corpus"), None
        )
        assert result_to_dict(from_disk) == result_to_dict(baseline)
        _traces_cached.cache_clear()
