"""Unit tests for branch predictors."""

import pytest

from repro.branch import (
    BimodalPredictor,
    BranchTargetBuffer,
    FetchPredictor,
    GsharePredictor,
    LoopPredictor,
    TournamentPredictor,
)
from repro.trace.records import BranchKind, BranchOutcome


class TestBimodal:
    def test_learns_biased_branch(self):
        predictor = BimodalPredictor(1024)
        for _ in range(10):
            predictor.predict_and_update(0x100, True)
        assert predictor.predict(0x100)
        for _ in range(10):
            predictor.predict_and_update(0x100, False)
        assert not predictor.predict(0x100)

    def test_accuracy_tracked(self):
        predictor = BimodalPredictor(1024)
        for _ in range(100):
            predictor.predict_and_update(0x200, True)
        assert predictor.stats.accuracy > 0.95


class TestGshare:
    def test_paper_configuration(self):
        # Table I: 16 KB gshare = 64 Ki two-bit counters, 16 history bits.
        predictor = GsharePredictor(16 * 1024)
        assert predictor.history_bits == 16

    def test_learns_alternating_pattern(self):
        # A strict alternation is history-predictable; gshare must converge.
        predictor = GsharePredictor(1024)
        outcomes = [bool(i % 2) for i in range(400)]
        for taken in outcomes[:200]:
            predictor.predict_and_update(0x300, taken)
        correct = sum(
            predictor.predict_and_update(0x300, taken) for taken in outcomes[200:]
        )
        assert correct > 180

    def test_random_branches_mispredict(self):
        from random import Random

        rng = Random(42)
        predictor = GsharePredictor(1024)
        outcomes = [rng.random() < 0.5 for _ in range(500)]
        correct = sum(
            predictor.predict_and_update(0x400, taken) for taken in outcomes
        )
        assert 0.3 < correct / 500 < 0.75  # near chance


class TestLoopPredictor:
    def _run_loop(self, predictor, address, trips, instances):
        correct = 0
        total = 0
        for _ in range(instances):
            for i in range(trips):
                taken = i != trips - 1
                use_loop = predictor.confident(address)
                predicted = predictor.predict(address) if use_loop else None
                if use_loop:
                    total += 1
                    correct += predicted == taken
                predictor.update(address, taken)
        return correct, total

    def test_learns_fixed_trip_count(self):
        predictor = LoopPredictor(256)
        correct, total = self._run_loop(predictor, 0x500, trips=10, instances=20)
        assert total > 0
        assert correct / total > 0.95

    def test_gains_confidence_only_after_stable_trips(self):
        predictor = LoopPredictor(256)
        # One instance is not enough to be confident.
        for i in range(10):
            predictor.update(0x600, i != 9)
        assert not predictor.confident(0x600)

    def test_trip_change_resets_confidence(self):
        predictor = LoopPredictor(256)
        self._run_loop(predictor, 0x700, trips=8, instances=5)
        assert predictor.confident(0x700)
        # Change the trip count: confidence must drop.
        for i in range(12):
            predictor.update(0x700, i != 11)
        assert not predictor.confident(0x700)


class TestTournament:
    def test_chooser_picks_better_component(self):
        strong = BimodalPredictor(1024)
        weak = BimodalPredictor(4)  # heavy aliasing
        predictor = TournamentPredictor(strong, weak)
        for address in (0x100, 0x104, 0x108, 0x10C):
            for _ in range(50):
                predictor.predict_and_update(address, True)
        assert predictor.stats.accuracy > 0.8


class TestBtb:
    def test_learns_target(self):
        btb = BranchTargetBuffer(256)
        assert btb.predict(0x800) is None
        btb.update(0x800, 0x9000)
        assert btb.predict(0x800) == 0x9000

    def test_target_mispredict_counted(self):
        btb = BranchTargetBuffer(256)
        assert not btb.predict_and_update(0x800, 0x9000)  # cold miss
        assert btb.predict_and_update(0x800, 0x9000)
        assert not btb.predict_and_update(0x800, 0xA000)  # target changed
        assert btb.stats.target_mispredictions == 2


class TestFetchPredictor:
    def test_unconditional_always_correct(self):
        fp = FetchPredictor()
        branch = BranchOutcome(BranchKind.UNCONDITIONAL, True, 0x2000)
        assert fp.resolve(0x100, branch)
        assert fp.stats.overall_mispredictions == 0

    def test_discontinuity_counts_as_predicted(self):
        fp = FetchPredictor()
        assert fp.resolve(0x100, None)
        assert fp.stats.overall_mispredictions == 0

    def test_loop_override_beats_gshare_on_loop_exit(self):
        # A fixed-trip loop branch: after training, the loop predictor must
        # remove the once-per-instance exit misprediction.
        fp = FetchPredictor()
        address = 0x900
        mispredicts_late = 0
        for instance in range(30):
            for i in range(7):
                branch = BranchOutcome(BranchKind.CONDITIONAL, i != 6, 0x900)
                correct = fp.resolve(address, branch)
                if instance >= 10 and not correct:
                    mispredicts_late += 1
        assert mispredicts_late == 0

    def test_indirect_uses_btb(self):
        fp = FetchPredictor()
        branch_a = BranchOutcome(BranchKind.INDIRECT, True, 0x4000)
        branch_b = BranchOutcome(BranchKind.INDIRECT, True, 0x5000)
        fp.resolve(0x300, branch_a)  # cold: mispredict
        assert fp.resolve(0x300, branch_a)
        assert not fp.resolve(0x300, branch_b)  # target change

    def test_mpki_accounting(self):
        fp = FetchPredictor()
        branch = BranchOutcome(BranchKind.INDIRECT, True, 0x4000)
        fp.resolve(0x300, branch)
        assert fp.stats.mpki(1000) == pytest.approx(1.0)
