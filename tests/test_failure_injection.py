"""Failure injection: the simulator must fail loudly on broken inputs."""

import pytest

from repro.acmp import AcmpConfig, simulate
from repro.errors import DeadlockError, SimulationError, TraceError
from repro.trace.records import (
    BasicBlockRecord,
    IpcRecord,
    SyncKind,
    SyncRecord,
)
from repro.trace.stream import ThreadTrace, TraceSet
from repro.trace.validation import validate_trace_set


def _config(workers=2):
    return AcmpConfig(worker_count=workers)


def _master_records(phases=1):
    records = [IpcRecord(1.0), BasicBlockRecord(0x100, 8)]
    for phase in range(phases):
        records += [
            SyncRecord(SyncKind.PARALLEL_START, phase),
            IpcRecord(2.0),
            BasicBlockRecord(0x1000, 8),
            SyncRecord(SyncKind.PARALLEL_END, phase),
        ]
    return records


def _worker_records(phases=1):
    records = []
    for phase in range(phases):
        records += [
            SyncRecord(SyncKind.PARALLEL_START, phase),
            IpcRecord(1.0),
            BasicBlockRecord(0x1000, 8),
            SyncRecord(SyncKind.PARALLEL_END, phase),
        ]
    return records


class TestHealthyBaseline:
    def test_handcrafted_traces_simulate(self):
        traces = TraceSet(
            "hand",
            [
                ThreadTrace(0, _master_records()),
                ThreadTrace(1, _worker_records()),
                ThreadTrace(2, _worker_records()),
            ],
        )
        validate_trace_set(traces)
        result = simulate(_config(), traces)
        assert result.total_committed == traces.instruction_count


class TestProtocolViolations:
    def test_missing_worker_join_deadlocks(self):
        # Worker 2 never reaches the PARALLEL_END join: the master and
        # worker 1 wait forever. Validation catches it; running the
        # simulator anyway must raise DeadlockError, not hang.
        bad_worker = [
            SyncRecord(SyncKind.PARALLEL_START, 0),
            IpcRecord(1.0),
            BasicBlockRecord(0x1000, 8),
            # missing PARALLEL_END
        ]
        traces = TraceSet(
            "deadlock",
            [
                ThreadTrace(0, _master_records()),
                ThreadTrace(1, _worker_records()),
                ThreadTrace(2, bad_worker),
            ],
        )
        with pytest.raises(TraceError):
            validate_trace_set(traces)
        with pytest.raises(DeadlockError) as excinfo:
            simulate(_config(), traces)
        assert "join" in str(excinfo.value)

    def test_worker_waiting_for_phantom_phase_deadlocks(self):
        # Worker waits for phase 5 which the master never starts.
        bad_worker = [
            SyncRecord(SyncKind.PARALLEL_START, 5),
            IpcRecord(1.0),
            BasicBlockRecord(0x1000, 8),
            SyncRecord(SyncKind.PARALLEL_END, 5),
        ]
        traces = TraceSet(
            "phantom",
            [
                ThreadTrace(0, _master_records()),
                ThreadTrace(1, _worker_records()),
                ThreadTrace(2, bad_worker),
            ],
        )
        with pytest.raises(DeadlockError) as excinfo:
            simulate(_config(), traces)
        assert "phase 5" in str(excinfo.value)

    def test_signal_of_unheld_lock_raises(self):
        bad_worker = [
            SyncRecord(SyncKind.PARALLEL_START, 0),
            IpcRecord(1.0),
            SyncRecord(SyncKind.SIGNAL, 3),
            SyncRecord(SyncKind.PARALLEL_END, 0),
        ]
        traces = TraceSet(
            "unheld",
            [
                ThreadTrace(0, _master_records()),
                ThreadTrace(1, _worker_records()),
                ThreadTrace(2, bad_worker),
            ],
        )
        with pytest.raises(SimulationError, match="does not hold"):
            simulate(_config(), traces)

    def test_max_cycles_guard(self):
        traces = TraceSet(
            "long",
            [
                ThreadTrace(0, _master_records()),
                ThreadTrace(1, _worker_records()),
                ThreadTrace(2, _worker_records()),
            ],
        )
        with pytest.raises(SimulationError, match="max_cycles"):
            simulate(_config(), traces, max_cycles=3)


class TestDeadlockDiagnostics:
    def test_deadlock_error_names_core_states(self):
        bad_worker = [
            SyncRecord(SyncKind.PARALLEL_START, 7),
            IpcRecord(1.0),
            BasicBlockRecord(0x1000, 4),
            SyncRecord(SyncKind.PARALLEL_END, 7),
        ]
        traces = TraceSet(
            "diag",
            [
                ThreadTrace(0, _master_records()),
                ThreadTrace(1, _worker_records()),
                ThreadTrace(2, bad_worker),
            ],
        )
        with pytest.raises(DeadlockError) as excinfo:
            simulate(_config(), traces)
        message = str(excinfo.value)
        assert "core states" in message
        assert "blocked" in message
