"""Tests for the observability layer: metrics registry, event timeline,
recorder switch, phase profiling, logging setup and the obs CLI."""

import importlib
import json
import logging
from pathlib import Path

import pytest

from repro import obs
from repro.errors import ObsError
from repro.obs.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    canonical_labels,
)
from repro.obs.profile import PhaseTimer, phase_breakdown
from repro.obs.recorder import metrics_registry, recorder
from repro.obs.timeline import (
    SIM_PID,
    WALL_PID,
    TimelineTracer,
    dump_chrome_trace,
    validate_chrome_trace,
)

GOLDEN = Path(__file__).parent / "data" / "timeline_golden.json"


class TestLabels:
    def test_order_never_matters(self):
        assert canonical_labels({"a": 1, "b": 2}) == canonical_labels(
            {"b": 2, "a": 1}
        )

    def test_values_are_stringified(self):
        assert canonical_labels({"scale": 0.5}) == (("scale", "0.5"),)

    def test_bad_label_names_rejected(self):
        with pytest.raises(ObsError, match="label names"):
            canonical_labels({"": "x"})
        with pytest.raises(ObsError, match="label names"):
            canonical_labels({3: "x"})

    def test_same_series_same_metric(self):
        registry = MetricsRegistry()
        registry.counter("hits", machine="acmp", engine="skip").inc()
        registry.counter("hits", engine="skip", machine="acmp").inc()
        assert len(registry) == 1
        assert registry.find("hits", machine="acmp", engine="skip").value == 2


class TestMergeSemantics:
    def _registry(self, counter=0, gauge=0, observations=()):
        registry = MetricsRegistry()
        registry.counter("c").inc(counter)
        registry.gauge("g").set(gauge)
        for value in observations:
            registry.histogram("h").observe(value)
        return registry

    def test_counters_sum_gauges_max_histograms_componentwise(self):
        merged = self._registry(2, 5, (1.0, 3.0)).merge(
            self._registry(3, 4, (2.0,))
        )
        assert merged.find("c").value == 5
        assert merged.find("g").value == 5
        histogram = merged.find("h")
        assert (histogram.count, histogram.total) == (3, 6.0)
        assert (histogram.minimum, histogram.maximum) == (1.0, 3.0)

    def test_merge_is_associative_and_commutative(self):
        parts = [
            self._registry(1, 7, (2.0,)),
            self._registry(4, 2, ()),
            self._registry(2, 9, (5.0, 1.0)),
        ]

        def rollup(order):
            registry = MetricsRegistry()
            for part in order:
                registry.merge(part.to_payload())
            return registry.to_payload()

        a, b, c = parts
        assert rollup([a, b, c]) == rollup([c, a, b]) == rollup([b, c, a])
        # Grouped differently: (a+b)+c == a+(b+c).
        left = MetricsRegistry.rollup([a.to_payload(), b.to_payload()])
        left.merge(c.to_payload())
        right = MetricsRegistry.rollup([b.to_payload(), c.to_payload()])
        right.merge(a.to_payload())
        assert left.to_payload() == right.to_payload()

    def test_counter_cannot_decrease(self):
        with pytest.raises(ObsError, match="cannot decrease"):
            MetricsRegistry().counter("c").inc(-1)

    def test_type_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        with pytest.raises(ObsError, match="is a counter"):
            registry.histogram("x")
        other = MetricsRegistry()
        other.gauge("x").set(3)
        with pytest.raises(ObsError, match="cannot merge"):
            registry.merge(other)

    def test_relabel_overrides_and_stamps(self):
        registry = MetricsRegistry()
        registry.counter("n", sampling="", keep="yes").inc(2)
        stamped = registry.relabel(sampling="fast")
        metric = stamped.find("n", sampling="fast", keep="yes")
        assert metric is not None and metric.value == 2
        # The original registry is untouched.
        assert registry.find("n", sampling="", keep="yes").value == 2


class TestSerialization:
    def test_round_trip_preserves_everything(self):
        registry = MetricsRegistry()
        registry.counter("runs", machine="acmp").inc(3)
        registry.gauge("depth").set(7)
        registry.histogram("lat", op="get").observe(0.25)
        registry.histogram("lat", op="get").observe(0.5)
        payload = registry.to_payload()
        rebuilt = MetricsRegistry.from_payload(
            json.loads(json.dumps(payload))
        )
        assert rebuilt.to_payload() == payload

    def test_payload_is_deterministic(self):
        one, two = MetricsRegistry(), MetricsRegistry()
        one.counter("a").inc()
        one.counter("b", x="1").inc(2)
        two.counter("b", x="1").inc(2)
        two.counter("a").inc()
        assert one.to_payload() == two.to_payload()

    def test_malformed_rows_rejected(self):
        with pytest.raises(ObsError, match="malformed"):
            MetricsRegistry.from_payload([{"type": "counter"}])
        with pytest.raises(ObsError, match="malformed"):
            MetricsRegistry.from_payload([{"name": "x", "type": "nope"}])

    def test_rollup_skips_none(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        merged = MetricsRegistry.rollup([None, registry.to_payload(), None])
        assert merged.find("c").value == 1

    def test_empty_labels_kwargless(self):
        registry = MetricsRegistry()
        registry.counter("bare").inc()
        row = registry.to_payload()[0]
        assert row["labels"] == {}
        assert isinstance(
            MetricsRegistry.from_payload([row]).find("bare"), Counter
        )


class TestTimeline:
    def test_ring_buffer_drops_oldest_and_counts(self):
        tracer = TimelineTracer(capacity=3)
        for i in range(5):
            tracer.complete(f"e{i}", cat="t", ts=i, dur=1)
        assert len(tracer) == 3
        assert tracer.dropped == 2
        names = [e["name"] for e in tracer.chrome_trace()["traceEvents"]
                 if e["ph"] == "X"]
        assert names == ["e2", "e3", "e4"]
        payload = tracer.chrome_trace()
        assert payload["otherData"]["dropped_events"] == "2"

    def test_capacity_must_be_positive(self):
        with pytest.raises(ObsError, match="capacity"):
            TimelineTracer(capacity=0)

    def test_metadata_events_lead_the_export(self):
        tracer = TimelineTracer()
        tracer.set_thread_name(SIM_PID, 3, "2:Core")
        tracer.complete("nap", cat="kernel", ts=0, dur=5, tid=3)
        events = tracer.chrome_trace()["traceEvents"]
        phases = [e["ph"] for e in events]
        assert phases == ["M", "M", "M", "X"]
        named = [e for e in events if e["name"] == "thread_name"]
        assert named[0]["args"]["name"] == "2:Core"

    def test_wall_span_is_wall_domain(self):
        tracer = TimelineTracer()
        started = tracer.wall_ts()
        tracer.wall_span("warming", cat="sampling", started_ts=started)
        event = tracer.chrome_trace()["traceEvents"][-1]
        assert event["pid"] == WALL_PID
        assert event["dur"] >= 0

    def test_validator_accepts_own_output(self):
        tracer = TimelineTracer()
        tracer.complete("a", cat="t", ts=0, dur=1)
        tracer.instant("b", cat="t", ts=2)
        validate_chrome_trace(tracer.chrome_trace(metadata={"k": "v"}))

    @pytest.mark.parametrize(
        "payload, match",
        [
            ([], "object"),
            ({}, "traceEvents"),
            ({"traceEvents": [{"ph": "B", "name": "x"}]}, "phase"),
            (
                {"traceEvents": [{"ph": "X", "name": "", "pid": 1, "tid": 0}]},
                "name",
            ),
            (
                {
                    "traceEvents": [
                        {"ph": "X", "name": "x", "pid": "1", "tid": 0}
                    ]
                },
                "pid",
            ),
            (
                {
                    "traceEvents": [
                        {
                            "ph": "X",
                            "name": "x",
                            "pid": 1,
                            "tid": 0,
                            "ts": -1,
                        }
                    ]
                },
                "ts",
            ),
            (
                {
                    "traceEvents": [
                        {
                            "ph": "X",
                            "name": "x",
                            "pid": 1,
                            "tid": 0,
                            "ts": 0,
                        }
                    ]
                },
                "dur",
            ),
            (
                {
                    "traceEvents": [
                        {"ph": "M", "name": "oops", "pid": 1, "tid": 0}
                    ]
                },
                "metadata",
            ),
        ],
    )
    def test_validator_rejects(self, payload, match):
        with pytest.raises(ObsError, match=match):
            validate_chrome_trace(payload)

    def test_dump_validates_and_writes_deterministically(self, tmp_path):
        tracer = TimelineTracer()
        tracer.complete("a", cat="t", ts=0, dur=1)
        payload = tracer.chrome_trace()
        first = dump_chrome_trace(payload, tmp_path / "a.json")
        second = dump_chrome_trace(payload, tmp_path / "b.json")
        assert first.read_bytes() == second.read_bytes()
        with pytest.raises(ObsError):
            dump_chrome_trace({"traceEvents": 3}, tmp_path / "c.json")


class TestRecorder:
    def test_recording_scopes_and_restores(self):
        before = recorder()
        with obs.recording(metrics=True, timeline=True) as rec:
            assert recorder() is rec
            assert rec.registry is not None and rec.tracer is not None
            assert metrics_registry() is rec.registry
        assert recorder() is before

    def test_configure_and_disable(self):
        recorder_module = importlib.import_module("repro.obs.recorder")

        before = recorder()
        try:
            rec = obs.configure(metrics=True)
            assert obs.enabled() and rec.tracer is None
            obs.disable()
            assert not obs.enabled()
            assert metrics_registry() is None
        finally:
            recorder_module._active = before

    def test_env_activation(self, monkeypatch):
        recorder_module = importlib.import_module("repro.obs.recorder")
        from repro.obs.recorder import _configure_from_env

        before = recorder()
        try:
            monkeypatch.setenv("REPRO_OBS", "timeline")
            _configure_from_env()
            rec = recorder()
            assert rec is not None and rec.tracer is not None
            monkeypatch.setenv("REPRO_OBS", "metrics")
            _configure_from_env()
            assert recorder().tracer is None
        finally:
            recorder_module._active = before

    def test_unknown_env_value_warns_but_never_raises(
        self, monkeypatch, caplog
    ):
        from repro.obs.recorder import _configure_from_env

        recorder_module = importlib.import_module("repro.obs.recorder")

        before = recorder()
        try:
            obs.disable()
            monkeypatch.setenv("REPRO_OBS", "bogus")
            with caplog.at_level(logging.WARNING, logger="repro.obs.recorder"):
                _configure_from_env()
            assert "not recognised" in caplog.text
            assert recorder() is None
        finally:
            recorder_module._active = before

    def test_disabled_run_attaches_no_metrics(self):
        from repro.acmp import AcmpConfig
        from repro.machine import simulate
        from repro.trace.synthesis import synthesize_benchmark

        config = AcmpConfig(worker_count=2, cores_per_cache=2)
        traces = synthesize_benchmark(
            "CG", thread_count=3, scale=0.01, seed=0
        )
        # Force-disable regardless of the ambient REPRO_OBS state (CI
        # runs this file with recording on to hold bit-identity).
        recorder_module = importlib.import_module("repro.obs.recorder")
        before = recorder()
        try:
            obs.disable()
            result = simulate(config, traces)
        finally:
            recorder_module._active = before
        assert result.metrics is None


class TestPhaseTimer:
    def test_phases_accumulate(self):
        timer = PhaseTimer()
        with timer.phase("warming"):
            pass
        timer.add("warming", 0.5)
        timer.add("measurement", 1.5)
        assert timer.sections["warming"] == 2
        assert timer.seconds["warming"] >= 0.5
        fractions = timer.fractions()
        assert abs(sum(fractions.values()) - 1.0) < 1e-9

    def test_record_and_breakdown(self):
        timer = PhaseTimer()
        timer.add("warming", 2.0)
        timer.add("measurement", 6.0)
        registry = MetricsRegistry()
        timer.record(registry, machine="acmp")
        breakdown = phase_breakdown(registry)
        assert breakdown == {"warming": 2.0, "measurement": 6.0}
        histogram = registry.find("phase.warming", machine="acmp")
        assert isinstance(histogram, Histogram)
        assert histogram.count == 1 and histogram.total == 2.0


class TestGoldenTimeline:
    def test_small_run_export_is_byte_pinned(self, tmp_path):
        """The cycle-domain event stream of a tiny deterministic run is
        bit-identical across engines and kernel backends, so its export
        is pinned byte-for-byte (wall-domain spans only appear when the
        sampling/campaign tiers run)."""
        from repro.acmp import AcmpConfig
        from repro.machine import simulate
        from repro.trace.synthesis import synthesize_benchmark

        config = AcmpConfig(worker_count=2, cores_per_cache=2)
        traces = synthesize_benchmark(
            "CG", thread_count=3, scale=0.01, seed=0
        )
        with obs.recording(metrics=False, timeline=True) as rec:
            simulate(config, traces)
            payload = rec.tracer.chrome_trace(metadata={"benchmark": "CG"})
        exported = dump_chrome_trace(payload, tmp_path / "timeline.json")
        assert exported.read_text() == GOLDEN.read_text()


class TestLogSetup:
    def test_idempotent_single_handler(self):
        from repro.obs.log import ROOT, setup

        logger = setup("info")
        setup("debug")
        setup("warning")
        handlers = logging.getLogger(ROOT).handlers
        assert len(handlers) == 1
        assert logger.level == logging.WARNING

    def test_quiet_clamps(self):
        import argparse

        from repro.obs.log import setup_from_args

        logger = setup_from_args(
            argparse.Namespace(log_level="debug", quiet=True)
        )
        assert logger.level == logging.WARNING


class TestObsCli:
    def _record_store(self, tmp_path):
        from repro.campaign.runner import run_specs
        from repro.campaign.spec import RunSpec
        from repro.campaign.store import ResultStore
        from repro.machine.model import get_model

        store = ResultStore(tmp_path / "store")
        config = get_model("acmp").standard_design_points()[0]
        with obs.recording(metrics=True):
            run_specs(
                [RunSpec(benchmark="CG", config=config, scale=0.02)],
                store=store,
                name="obs-cli",
            )
        return store

    def test_summary_rolls_up_store(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        store = self._record_store(tmp_path)
        assert main(["summary", str(store.root)]) == 0
        out = capsys.readouterr().out
        assert "kernel.cycles_executed{" in out
        assert "phase.simulate{" in out

    def test_summary_prefix_filter_and_empty(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        store = self._record_store(tmp_path)
        assert main(["summary", str(store.root), "--prefix", "phase."]) == 0
        out = capsys.readouterr().out
        assert "kernel." not in out and "phase." in out
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["summary", str(empty)]) == 1

    def test_diff_reports_deltas(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        store = self._record_store(tmp_path)
        # A store diffed against itself is all-zero deltas.
        assert main(["diff", str(store.root), str(store.root)]) == 0
        assert "no metric deltas" in capsys.readouterr().out
        # Against an empty tree, every metric disappears.
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["diff", str(store.root), str(empty)]) == 0
        out = capsys.readouterr().out
        assert "kernel.cycles_executed{" in out and "value-" in out

    def test_timeline_exports_valid_trace(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        out_path = tmp_path / "timeline.json"
        assert (
            main(
                [
                    "timeline",
                    "--benchmark",
                    "CG",
                    "--scale",
                    "0.02",
                    "--out",
                    str(out_path),
                ]
            )
            == 0
        )
        assert "wrote" in capsys.readouterr().out
        payload = json.loads(out_path.read_text())
        validate_chrome_trace(payload)
        cats = {e.get("cat") for e in payload["traceEvents"]}
        assert "kernel" in cats


class TestResultMetricsPersistence:
    def test_store_round_trips_metrics_beside_result(self, tmp_path):
        from repro.campaign.runner import execute_run
        from repro.campaign.spec import RunSpec
        from repro.campaign.store import ResultStore
        from repro.machine.model import get_model

        config = get_model("acmp").standard_design_points()[0]
        spec = RunSpec(benchmark="CG", config=config, scale=0.02)
        with obs.recording(metrics=True):
            result = execute_run(spec)
        assert result.metrics is not None
        store = ResultStore(tmp_path)
        store.put(spec, result)
        entry = json.loads(store.path_for(spec).read_text())
        # Beside, not inside: the result payload stays the bit-identity
        # contract.
        assert "metrics" in entry
        assert "metrics" not in entry["result"]
        loaded = store.get(spec)
        assert loaded.metrics == result.metrics

    def test_store_latency_metrics_recorded(self, tmp_path):
        from repro.campaign.spec import RunSpec
        from repro.campaign.store import ResultStore
        from repro.machine.model import get_model

        config = get_model("acmp").standard_design_points()[0]
        spec = RunSpec(benchmark="CG", config=config, scale=0.02)
        result = None
        with obs.recording(metrics=True):
            from repro.campaign.runner import execute_run

            result = execute_run(spec)
        store = ResultStore(tmp_path)
        with obs.recording(metrics=True) as rec:
            store.put(spec, result)
            assert store.get(spec) is not None
            assert store.get(RunSpec(
                benchmark="CG", config=config, scale=0.03
            )) is None
        assert rec.registry.find("store.result.put_s").count == 1
        assert (
            rec.registry.find("store.result.requests", outcome="hit").value
            == 1
        )
        assert (
            rec.registry.find("store.result.requests", outcome="miss").value
            == 1
        )
