"""Differential battery: streamed ``.trcz`` runs == in-memory runs, bitwise.

The headline guarantee of the trace-ingestion subsystem: a round trip
through the chunked on-disk format is invisible to the simulator. For a
representative grid — both machine models × scheduled/reference engine
× full/sampled simulation — the ``SimulationResult`` from the streamed
source must equal the in-memory one field for field, and the two
sources must agree on checkpoint identity (fingerprint), so warm-state
sharing works across them.
"""

import pytest

from repro.acmp import AcmpConfig, result_to_dict
from repro.machine import simulate
from repro.sampling import resolve_plan, simulate_sampled
from repro.scmp import ScmpConfig
from repro.trace import StreamedTraceSet, open_trace_set, write_trace_set
from repro.trace.fingerprint import trace_fingerprint
from repro.trace.synthesis import synthesize_benchmark

#: One benchmark per machine keeps the grid affordable while still
#: covering serial strata (master-only code) and heavy sync.
_BENCH = {"acmp": "UA", "scmp": "CG"}

_CONFIGS = {
    "acmp": AcmpConfig(worker_count=4, cores_per_cache=2),
    "scmp": ScmpConfig(core_count_total=4, cores_per_cache=2),
}


@pytest.fixture(scope="module")
def sources(tmp_path_factory):
    """(in-memory, streamed) trace-set pairs per machine, built once."""
    root = tmp_path_factory.mktemp("streams")
    pairs = {}
    for machine, config in _CONFIGS.items():
        traces = synthesize_benchmark(
            _BENCH[machine],
            thread_count=config.core_count,
            scale=0.04,
            seed=7,
        )
        write_trace_set(traces, root / machine, chunked=True, chunk_records=512)
        streamed = open_trace_set(root / machine)
        assert isinstance(streamed, StreamedTraceSet)
        pairs[machine] = (traces, streamed)
    return pairs


@pytest.mark.parametrize("machine", sorted(_CONFIGS))
@pytest.mark.parametrize("cycle_skip", [True, False], ids=["skip", "reference"])
def test_full_runs_bit_identical(sources, machine, cycle_skip):
    traces, streamed = sources[machine]
    config = _CONFIGS[machine]
    memory = simulate(config, traces, cycle_skip=cycle_skip)
    disk = simulate(config, streamed, cycle_skip=cycle_skip)
    assert result_to_dict(memory) == result_to_dict(disk)
    assert memory.total_committed == traces.instruction_count


@pytest.mark.parametrize("machine", sorted(_CONFIGS))
@pytest.mark.parametrize("cycle_skip", [True, False], ids=["skip", "reference"])
def test_sampled_runs_bit_identical(sources, machine, cycle_skip):
    traces, streamed = sources[machine]
    config = _CONFIGS[machine]
    plan = resolve_plan("fast")
    memory = simulate_sampled(config, traces, plan, cycle_skip=cycle_skip)
    disk = simulate_sampled(config, streamed, plan, cycle_skip=cycle_skip)
    assert result_to_dict(memory) == result_to_dict(disk)


@pytest.mark.parametrize("machine", sorted(_CONFIGS))
def test_sources_share_checkpoint_identity(sources, machine):
    """Streamed and in-memory sets agree on the checkpoint fingerprint.

    The streamed side gets its digest from the manifest, the in-memory
    side recomputes it from records; if they ever diverged, a campaign
    mixing sources would silently warm from cold.
    """
    traces, streamed = sources[machine]
    assert trace_fingerprint(streamed) == trace_fingerprint(traces)


@pytest.mark.parametrize("machine", sorted(_CONFIGS))
def test_interval_slicing_skips_prefix(sources, machine):
    """A sampled run's interval reads never decode chunk 0 eagerly.

    ``simulate_sampled`` touches the whole trace during warming (that
    is inherent to functional warming), but the reader cache keeps the
    resident decoded records bounded by the LRU, not the trace length.
    """
    _, streamed = sources[machine]
    plan = resolve_plan("fast")
    simulate_sampled(_CONFIGS[machine], streamed, plan)
    for thread in streamed.threads:
        stats = thread.reader.stats
        bound = 2 * thread.reader.chunk_records
        assert stats.max_resident_records <= bound, (
            f"thread {thread.thread_id} held {stats.max_resident_records} "
            f"decoded records (> {bound}): residency is not O(chunk)"
        )
