"""Scheduler-vs-stepped equivalence over a randomized config grid.

The ready/wake scheduler's contract is exact equivalence with the
cycle-by-cycle reference engine (``cycle_skip=False``): bit-identical
:class:`SimulationResult` payloads, and :class:`DeadlockError` raised at
the identical cycle with the identical diagnosis. This suite sweeps the
machine dimensions that exercise different sleep/wake paths — private
vs shared groups, single vs double bus, crossbar vs multi-bus, icount
vs round-robin arbitration, iTLB on/off/shared — plus a seeded random
sample of further combinations, on **both registered machine models**
(the ACMP and the symmetric CMP): every machine model must hold the
bit-identical contract, which is also what the ``engine-crosscheck``
CI matrix enforces end to end.
"""

import random

import pytest

from repro.acmp import (
    AcmpConfig,
    all_shared_config,
    baseline_config,
    result_to_dict,
    worker_shared_config,
)
from repro.errors import DeadlockError
from repro.machine import simulate
from repro.scmp import ScmpConfig, banked_config, private_config
from repro.trace.records import (
    BasicBlockRecord,
    IpcRecord,
    SyncKind,
    SyncRecord,
)
from repro.trace.stream import ThreadTrace, TraceSet
from repro.trace.synthesis import synthesize_benchmark

#: The directed grid: every row is one scheduler path worth pinning.
GRID: list[tuple[str, AcmpConfig]] = [
    ("private-baseline", baseline_config(worker_count=4)),
    ("private-itlb", baseline_config(worker_count=4, itlb_enabled=True)),
    (
        "shared-cpc2-single-bus",
        worker_shared_config(
            cores_per_cache=2, icache_kb=32, bus_count=1, line_buffers=4
        ),
    ),
    (
        "shared-cpc4-double-bus",
        AcmpConfig(
            worker_count=4,
            cores_per_cache=4,
            worker_icache_bytes=16 * 1024,
            bus_count=2,
        ),
    ),
    (
        "shared-crossbar",
        AcmpConfig(
            worker_count=4,
            cores_per_cache=4,
            interconnect="crossbar",
            bus_count=2,
        ),
    ),
    (
        "shared-icount",
        AcmpConfig(worker_count=4, cores_per_cache=4, arbitration="icount"),
    ),
    (
        "shared-itlb",
        AcmpConfig(
            worker_count=4,
            cores_per_cache=4,
            itlb_enabled=True,
            shared_itlb=True,
        ),
    ),
    ("all-shared", all_shared_config(icache_kb=32, bus_count=1)),
    # -- symmetric CMP: the same sleep/wake paths with no master core --
    ("scmp-private", private_config(core_count=4)),
    (
        "scmp-banked-cpc4",
        banked_config(cores_per_cache=4, icache_kb=16, core_count=4),
    ),
    (
        "scmp-banked-single-bus",
        banked_config(
            cores_per_cache=2, icache_kb=32, bus_count=1, core_count=4
        ),
    ),
    (
        "scmp-crossbar-icount",
        ScmpConfig(
            core_count_total=4,
            cores_per_cache=4,
            interconnect="crossbar",
            arbitration="icount",
            bus_count=2,
        ),
    ),
    (
        "scmp-itlb-shared",
        ScmpConfig(
            core_count_total=4,
            cores_per_cache=2,
            itlb_enabled=True,
            shared_itlb=True,
        ),
    ),
    # A narrow bus stretches transfer occupancy (8 cycles per line),
    # exercising the batched busy-horizon sleep of the interconnect.
    (
        "scmp-narrow-bus",
        ScmpConfig(
            core_count_total=4,
            cores_per_cache=4,
            bus_count=1,
            bus_width_bytes=8,
        ),
    ),
    (
        "acmp-narrow-bus",
        AcmpConfig(
            worker_count=4,
            cores_per_cache=4,
            bus_count=1,
            bus_width_bytes=8,
        ),
    ),
    # A large instruction queue leaves long drain phases behind a
    # quiescent front-end — the commit-replay window's home turf.
    ("acmp-big-iq", baseline_config(worker_count=4, iq_capacity=256)),
    # The smallest legal queue (one fetch line) space-gates the
    # front-end constantly, exercising the replay window's exact
    # space-wake cycle (one past the commit that frees the room).
    ("acmp-tiny-iq", baseline_config(worker_count=4, iq_capacity=16)),
    # Sub-unit serial IPC on the symmetric CMP mixes pacing and commit
    # cycles inside one replay window.
    (
        "scmp-lean-serial-big-iq",
        ScmpConfig(
            core_count_total=4, serial_ipc_scale=0.4, iq_capacity=128
        ),
    ),
]


def _random_configs(count: int = 4) -> list[tuple[str, AcmpConfig]]:
    """A deterministic random sample of further design points."""
    rng = random.Random(0xACC5)
    configs = []
    for index in range(count):
        workers = rng.choice((2, 4, 8))
        divisors = [d for d in (1, 2, 4, 8) if workers % d == 0 and d <= workers]
        cpc = rng.choice(divisors)
        itlb = rng.random() < 0.5
        config = AcmpConfig(
            worker_count=workers,
            cores_per_cache=cpc,
            worker_icache_bytes=rng.choice((16, 32)) * 1024,
            bus_count=rng.choice((1, 2)),
            line_buffers=rng.choice((2, 4, 8)),
            arbitration=rng.choice(("round-robin", "icount"))
            if cpc > 1
            else "round-robin",
            interconnect=rng.choice(("bus", "crossbar")),
            itlb_enabled=itlb,
            shared_itlb=itlb and cpc > 1 and rng.random() < 0.5,
        )
        configs.append((f"random-{index}", config))
    return configs


@pytest.mark.parametrize(
    ("label", "config"), GRID + _random_configs(), ids=lambda v: v if isinstance(v, str) else ""
)
@pytest.mark.parametrize("bench", ("CG", "UA"))
def test_bit_identical_results(label, config, bench):
    traces = synthesize_benchmark(
        bench, thread_count=config.core_count, scale=0.03, seed=3
    )
    scheduled = simulate(config, traces, cycle_skip=True)
    stepped = simulate(config, traces, cycle_skip=False)
    assert result_to_dict(scheduled) == result_to_dict(stepped)


def _deadlock_traces() -> TraceSet:
    """Worker 2 waits on a phase the master never starts."""
    master = [
        IpcRecord(1.0),
        BasicBlockRecord(0x100, 8),
        SyncRecord(SyncKind.PARALLEL_START, 0),
        IpcRecord(2.0),
        BasicBlockRecord(0x1000, 8),
        SyncRecord(SyncKind.PARALLEL_END, 0),
    ]
    worker = [
        SyncRecord(SyncKind.PARALLEL_START, 0),
        IpcRecord(1.0),
        BasicBlockRecord(0x1000, 8),
        SyncRecord(SyncKind.PARALLEL_END, 0),
    ]
    bad_worker = [
        SyncRecord(SyncKind.PARALLEL_START, 7),
        IpcRecord(1.0),
        BasicBlockRecord(0x1000, 8),
        SyncRecord(SyncKind.PARALLEL_END, 7),
    ]
    return TraceSet(
        "phantom-phase",
        [
            ThreadTrace(0, master),
            ThreadTrace(1, worker),
            ThreadTrace(2, bad_worker),
        ],
    )


@pytest.mark.parametrize(
    ("label", "config"),
    [
        ("private", baseline_config(worker_count=2)),
        (
            "shared",
            AcmpConfig(worker_count=2, cores_per_cache=2, bus_count=1),
        ),
        (
            "shared-icount-itlb",
            AcmpConfig(
                worker_count=2,
                cores_per_cache=2,
                arbitration="icount",
                itlb_enabled=True,
            ),
        ),
        ("scmp-private", ScmpConfig(core_count_total=3)),
        (
            "scmp-banked",
            ScmpConfig(core_count_total=3, cores_per_cache=3, bus_count=1),
        ),
        # Commit-replay windows drain the healthy cores' queues right up
        # to the hang; the watchdog must still fire at the stepped
        # engine's exact cycle (note_progress + the firing-horizon cap).
        ("private-big-iq", baseline_config(worker_count=2, iq_capacity=256)),
    ],
    ids=lambda v: v if isinstance(v, str) else "",
)
def test_deadlock_at_identical_cycle(label, config):
    traces = _deadlock_traces()
    with pytest.raises(DeadlockError) as scheduled:
        simulate(config, traces, cycle_skip=True)
    with pytest.raises(DeadlockError) as stepped:
        simulate(config, traces, cycle_skip=False)
    # Identical diagnosis, including the firing cycle embedded in it.
    assert str(scheduled.value) == str(stepped.value)
    assert "phase 7" in str(scheduled.value)
