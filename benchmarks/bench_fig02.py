"""Benchmark: regenerate Fig. 2 (basic-block lengths, serial vs parallel)."""

from conftest import make_context

from repro.experiments.registry import run_experiment


def test_bench_fig02(benchmark):
    def regenerate():
        return run_experiment("fig02", make_context())

    result = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    assert result.summary["amean_ratio"] > 2.0
