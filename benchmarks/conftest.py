"""Shared configuration for the figure-regeneration benchmarks.

Each ``bench_fig*.py`` module regenerates one of the paper's tables or
figures through the same drivers the ``python -m repro.experiments`` CLI
uses, at a reduced scale/benchmark subset so the full harness completes
in minutes. ``--benchmark-only`` runs measure the end-to-end cost of one
regeneration (trace synthesis + simulation + reporting).
"""

from __future__ import annotations

import pytest

from repro.experiments.common import ExperimentContext

#: Benchmark subset used by the timing figures: one bus-sensitive code
#: (UA), one tight-loop code (CG), one long-block code (BT), the
#: high-MPKI outlier (CoEVP) and a high-serial-fraction code (CoMD).
BENCH_SUBSET = ["BT", "CG", "UA", "CoEVP", "CoMD"]

#: Instruction-budget multiplier for benchmark runs.
BENCH_SCALE = 0.15


def make_context() -> ExperimentContext:
    """A fresh reduced-scale context (no memoised state)."""
    return ExperimentContext(scale=BENCH_SCALE, benchmarks=list(BENCH_SUBSET))


@pytest.fixture
def bench_ctx() -> ExperimentContext:
    return make_context()
