"""Benchmark: regenerate Fig. 13 (all-shared vs worker-shared ratio)."""

from conftest import make_context

from repro.experiments.registry import run_experiment


def test_bench_fig13(benchmark):
    def regenerate():
        return run_experiment("fig13", make_context())

    result = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    assert (
        result.summary["high_serial_mean_ratio"]
        >= result.summary["low_serial_mean_ratio"] - 0.02
    )
