"""Benchmark: regenerate Fig. 4 (instruction sharing across threads)."""

from conftest import make_context

from repro.experiments.registry import run_experiment


def test_bench_fig04(benchmark):
    def regenerate():
        return run_experiment("fig04", make_context())

    result = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    assert result.summary["mean_dynamic_sharing_percent"] > 95.0
