"""Benchmark: regenerate Fig. 8 (normalized CPI stack at cpc=8)."""

from conftest import BENCH_SUBSET, make_context

from repro.experiments.registry import run_experiment


def test_bench_fig08(benchmark):
    def regenerate():
        return run_experiment("fig08", make_context())

    result = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    assert result.summary["bus_dominated_count"] >= len(BENCH_SUBSET) - 1
