"""Benchmark: regenerate Fig. 11 (shared vs private worker MPKI)."""

from conftest import make_context

from repro.experiments.registry import run_experiment


def test_bench_fig11(benchmark):
    def regenerate():
        return run_experiment("fig11", make_context())

    result = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    assert result.summary["mean_ratio_32kb_percent"] < 100.0
