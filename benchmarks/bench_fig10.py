"""Benchmark: regenerate Fig. 10 (line buffers vs bus bandwidth, cpc=8)."""

from conftest import make_context

from repro.experiments.registry import run_experiment


def test_bench_fig10(benchmark):
    def regenerate():
        return run_experiment("fig10", make_context())

    result = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    assert result.summary["mean_double_bus"] <= result.summary["mean_naive"] + 1e-9
