"""Ablation: shared I-cache capacity sensitivity.

The paper samples the shared-cache size at 32 KB (naive sharing) and
16 KB (the chosen design), observing that capacity pressure appears for
botsalgn/smithwa at 16 KB (Fig. 11). This bench sweeps the capacity axis
on the capacity-sensitive benchmark to locate where misses take off, and
on a small-footprint benchmark to show the insensitivity everywhere else.
"""

import pytest
from conftest import BENCH_SCALE

from repro.acmp import simulate, worker_shared_config
from repro.trace.synthesis import synthesize_benchmark

SIZES_KB = (8, 16, 32, 64)


@pytest.fixture(scope="module")
def traces():
    return {
        "botsalgn": synthesize_benchmark("botsalgn", thread_count=9, scale=BENCH_SCALE),
        "CG": synthesize_benchmark("CG", thread_count=9, scale=BENCH_SCALE),
    }


@pytest.mark.parametrize("size_kb", SIZES_KB)
def test_bench_capacity_sensitive(benchmark, traces, size_kb):
    config = worker_shared_config(icache_kb=size_kb)

    def run():
        return simulate(config, traces["botsalgn"])

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["worker_mpki"] = round(result.worker_icache_mpki(), 3)
    assert result.total_committed == traces["botsalgn"].instruction_count


def test_capacity_pressure_shape(traces):
    """botsalgn (22 KB footprint) must miss more as capacity shrinks
    below its footprint, while CG (3 KB footprint) must not care."""
    def mpki(name, size_kb):
        result = simulate(
            worker_shared_config(icache_kb=size_kb), traces[name]
        )
        return result.worker_icache_mpki()

    botsalgn_small = mpki("botsalgn", 8)
    botsalgn_large = mpki("botsalgn", 32)
    assert botsalgn_small > botsalgn_large

    cg_small = mpki("CG", 8)
    cg_large = mpki("CG", 32)
    assert cg_small == pytest.approx(cg_large, rel=0.2, abs=0.2)
