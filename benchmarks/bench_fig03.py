"""Benchmark: regenerate Fig. 3 (I-cache MPKI, serial vs parallel)."""

from conftest import make_context

from repro.experiments.registry import run_experiment


def test_bench_fig03(benchmark):
    def regenerate():
        return run_experiment("fig03", make_context())

    result = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    assert result.summary["coevp_parallel_mpki"] > result.summary[
        "max_other_parallel_mpki"
    ]
