"""Benchmark: regenerate Fig. 9 (I-cache access ratio vs line buffers)."""

from conftest import make_context

from repro.experiments.registry import run_experiment


def test_bench_fig09(benchmark):
    def regenerate():
        return run_experiment("fig09", make_context())

    result = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    by_name = {row[0]: row for row in result.rows}
    # Tight-loop CG stays far below large-body BT at 4 line buffers.
    assert by_name["CG"][2] < by_name["BT"][2]
