"""Scalability of I-cache sharing beyond eight cores (Section VI-E).

"Sharing an I-cache among more than eight cores introduces additional
stall cycles which can not be mitigated with a double bus interconnect and
four line buffers" — the finding that caps the paper's design at
eight-core clusters. This bench sweeps the worker count with one fully
shared I-cache and reports the slowdown versus the private baseline at
the same core count.
"""

import json
import os
import time
from datetime import date
from pathlib import Path

import pytest
from conftest import BENCH_SCALE, BENCH_SUBSET

from repro.acmp import AcmpConfig, baseline_config, simulate
from repro.trace.synthesis import synthesize_benchmark

WORKER_COUNTS = (4, 8, 12, 16)


@pytest.fixture(scope="module")
def traces_by_count():
    return {
        workers: synthesize_benchmark(
            "UA", thread_count=workers + 1, scale=BENCH_SCALE
        )
        for workers in WORKER_COUNTS
    }


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_bench_scalability(benchmark, traces_by_count, workers):
    traces = traces_by_count[workers]
    base = simulate(baseline_config(worker_count=workers), traces)

    def run():
        config = AcmpConfig(
            worker_count=workers,
            cores_per_cache=workers,
            worker_icache_bytes=32 * 1024,
            bus_count=2,
            line_buffers=4,
        )
        return simulate(config, traces)

    shared = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio = shared.cycles / base.cycles
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["time_vs_baseline"] = round(ratio, 4)
    assert shared.total_committed == traces.instruction_count


def test_sharing_degrades_beyond_eight(traces_by_count):
    """The paper's scalability limit: the double-bus design that is free
    at 8 cores costs measurable time at 16."""
    ratios = {}
    for workers in (8, 16):
        traces = traces_by_count[workers]
        base = simulate(baseline_config(worker_count=workers), traces)
        shared = simulate(
            AcmpConfig(
                worker_count=workers,
                cores_per_cache=workers,
                worker_icache_bytes=32 * 1024,
                bus_count=2,
                line_buffers=4,
            ),
            traces,
        )
        ratios[workers] = shared.cycles / base.cycles
    assert ratios[16] >= ratios[8] - 0.01


def test_emit_campaign_timing(tmp_path):
    """Measure figure-regeneration wall time through the campaign layer
    and persist the numbers to BENCH_campaign.json at the repo root, so
    every PR leaves a perf trajectory behind.

    Three configurations of the same regeneration (fig01 + fig07 over
    the bench subset):

    * ``reference``: cycle-by-cycle engine, one process, no cache — the
      seed engine's behaviour;
    * ``campaign``: cycle-skipping kernel + ``jobs=4`` parallel runner
      with a cold result store;
    * ``cached``: a second invocation against the now-warm store.
    """
    from repro.acmp.simulator import AcmpSimulator
    from repro.acmp.system import AcmpSystem
    from repro.experiments.common import ExperimentContext
    from repro.experiments.registry import run_experiment

    def regenerate(ctx):
        started = time.perf_counter()
        run_experiment("fig01", ctx)
        run_experiment("fig07", ctx)
        return time.perf_counter() - started

    def best_of(context_for, reps=2):
        """Best-of-N wall time on this 1-CPU container; regeneration is
        deterministic, only the clock is noisy (same policy as the
        sampled probes below)."""
        best = None
        for rep in range(reps):
            elapsed = regenerate(context_for(rep))
            best = elapsed if best is None else min(best, elapsed)
        return best

    reference_s = best_of(
        lambda rep: ExperimentContext(
            scale=BENCH_SCALE, benchmarks=list(BENCH_SUBSET), cycle_skip=False
        )
    )
    skip_serial_s = best_of(
        lambda rep: ExperimentContext(
            scale=BENCH_SCALE, benchmarks=list(BENCH_SUBSET)
        )
    )
    # Two store trees: each cold repetition must start from an empty
    # store, and the cached repetitions read the fully-written last one.
    cache_dirs = [tmp_path / f"campaign-cache{rep}" for rep in range(2)]
    campaign_s = best_of(
        lambda rep: ExperimentContext(
            scale=BENCH_SCALE,
            benchmarks=list(BENCH_SUBSET),
            jobs=4,
            cache_dir=cache_dirs[rep],
        )
    )
    cached_s = best_of(
        lambda rep: ExperimentContext(
            scale=BENCH_SCALE,
            benchmarks=list(BENCH_SUBSET),
            jobs=4,
            cache_dir=cache_dirs[-1],
        )
    )

    # Scheduler engagement on representative runs: skip efficiency
    # (clock jumps), the event-driven scheduler's step elision, and —
    # on shared-front-end configs — the interconnect's batched
    # busy-cycle accounting.
    from repro.acmp import worker_shared_config

    kernel_skip = []
    probe_configs = [
        ("UA", baseline_config()),
        ("CoMD", baseline_config()),
        ("UA", worker_shared_config()),
    ]
    for bench, config in probe_configs:
        traces = synthesize_benchmark(bench, thread_count=9, scale=BENCH_SCALE)
        system = AcmpSystem(config, traces)
        system.warm_instruction_l2s()
        simulator = AcmpSimulator(system)
        simulator.run()
        stats = simulator.kernel.stats
        total_steps = stats.component_steps + stats.component_steps_avoided
        kernel_skip.append(
            {
                "benchmark": bench,
                "config": config.label(),
                "cycles_skipped": stats.cycles_skipped,
                "total_cycles": stats.total_cycles,
                "skipped_fraction": round(stats.skipped_fraction, 4),
                "skips": stats.skips,
                "component_steps": stats.component_steps,
                "component_steps_avoided": stats.component_steps_avoided,
                "steps_avoided_fraction": round(
                    stats.component_steps_avoided / max(1, total_steps), 4
                ),
                "wakes": stats.wakes,
                "interconnect_busy_batched": stats.interconnect_busy_batched,
                "commit_cycles_batched": stats.commit_cycles_batched,
                "redirect_cycles_batched": stats.redirect_cycles_batched,
                "replay_walk_engaged": stats.replay_walk_engaged,
            }
        )
    kernel_stats = kernel_skip[0]

    # Sampled-simulation probe: wall-time reduction and accuracy of
    # fast-mode interval sampling (repro.sampling) against full
    # detailed runs, on the UA sharing comparison at full trace scale.
    # Full scale, not BENCH_SCALE: sampling is a long-run lever — at
    # bench scale the traces fit inside one sampling period and the
    # sampled path degenerates to an exact run.
    # The sampled runs go through the warm-checkpoint store twice: a
    # cold pass that warms from the trace and writes every detail
    # interval's entry state, then a hit pass served entirely from the
    # store — the campaign-amortisation case the store exists for.
    from repro.acmp import worker_shared_config as _shared
    from repro.sampling import (
        Checkpointing,
        CheckpointStore,
        resolve_plan,
        simulate_sampled,
    )

    plan = resolve_plan("fast")
    probe_traces = synthesize_benchmark("UA", thread_count=9, scale=1.0)
    base_cfg = baseline_config()
    shared_cfg = _shared()
    # Two checkpoint trees: each cold repetition must start from an
    # empty store, and the hit repetitions read the fully-written one.
    policies = [
        Checkpointing(
            store=CheckpointStore(tmp_path / f"checkpoints{rep}"),
            seed=0,
            scale=1.0,
        )
        for rep in range(2)
    ]

    def timed(run):
        """Best-of-2 wall time on this 1-CPU container; the simulated
        result is deterministic, only the clock is noisy."""
        import gc

        best = None
        for rep in range(2):
            gc.collect()
            started = time.perf_counter()
            result = run(rep)
            elapsed = time.perf_counter() - started
            best = elapsed if best is None else min(best, elapsed)
        return result, best

    timings = {}
    cycles = {}
    counters = {}
    for label, config, mode in (
        ("full_base", base_cfg, "full"),
        ("full_shared", shared_cfg, "full"),
        ("cold_base", base_cfg, "cold"),
        ("cold_shared", shared_cfg, "cold"),
        ("hit_base", base_cfg, "hit"),
        ("hit_shared", shared_cfg, "hit"),
    ):
        if mode == "full":
            run = lambda rep, config=config: simulate(config, probe_traces)
        elif mode == "cold":
            run = lambda rep, config=config: simulate_sampled(
                config, probe_traces, plan, checkpoints=policies[rep]
            )
        else:  # hit: every tree is fully written by now; read the last
            run = lambda rep, config=config: simulate_sampled(
                config, probe_traces, plan, checkpoints=policies[-1]
            )
        result, timings[label] = timed(run)
        cycles[label] = result.cycles
        if mode != "full":
            counters[label] = result.sampling["checkpoints"]
    full_s = timings["full_base"] + timings["full_shared"]
    sampled_s = timings["cold_base"] + timings["cold_shared"]
    hit_s = timings["hit_base"] + timings["hit_shared"]
    ratio_full = cycles["full_shared"] / cycles["full_base"]
    ratio_sampled = cycles["cold_shared"] / cycles["cold_base"]
    sampling_probe = {
        "benchmark": "UA",
        "scale": 1.0,
        "plan": plan.spec(),
        "coverage": round(plan.coverage, 4),
        "full_s": round(full_s, 3),
        "sampled_s": round(sampled_s, 3),
        "sampled_hit_s": round(hit_s, 3),
        "wall_speedup": round(full_s / sampled_s, 3),
        "wall_speedup_hit": round(full_s / hit_s, 3),
        "time_ratio_full": round(ratio_full, 5),
        "time_ratio_sampled": round(ratio_sampled, 5),
        "speedup_rel_error": round(
            abs(ratio_sampled - ratio_full) / ratio_full, 5
        ),
        "cycles_rel_error_base": round(
            abs(cycles["cold_base"] - cycles["full_base"])
            / cycles["full_base"],
            5,
        ),
        "cycles_rel_error_shared": round(
            abs(cycles["cold_shared"] - cycles["full_shared"])
            / cycles["full_shared"],
            5,
        ),
        "checkpoints_cold": counters["cold_base"],
        "checkpoints_hit": counters["hit_base"],
    }

    # Warming-throughput probe: basic blocks per second through the
    # batched functional warmer versus the scalar reference walk, over
    # the same probe trace's non-skip intervals. The batched walk is
    # measured once per kernel backend (the pure-Python walk always,
    # the compiled span path only when the extension is loaded) so the
    # trajectory records both numbers side by side.
    from repro import kernels
    from repro.machine.model import get_model
    from repro.sampling import warmer as warmer_module
    from repro.sampling.simulator import _warm_interval
    from repro.sampling.slicer import IntervalKind, slice_traces
    from repro.sampling.warmer import BatchedWarmer

    model = get_model("acmp")
    warm_intervals = [
        interval
        for interval in slice_traces(probe_traces, plan)
        if interval.kind is not IntervalKind.SKIP
    ]

    def time_batched():
        """Best-of-3: the whole walk is ~15ms, so a single scheduler
        blip on this 1-CPU container halves the single-shot figure."""
        best = None
        for _ in range(3):
            system = model.build_system(base_cfg, probe_traces)
            warmer = BatchedWarmer(system, probe_traces)
            started = time.perf_counter()
            blocks = sum(
                warmer.warm_interval(interval) for interval in warm_intervals
            )
            elapsed = time.perf_counter() - started
            best = elapsed if best is None else min(best, elapsed)
        return blocks, best

    batched_blocks, batched_s = time_batched()  # active backend
    saved_bindings = (warmer_module._native_span, warmer_module._native_warm)
    warmer_module._native_span = None
    warmer_module._native_warm = None
    try:
        _, py_batched_s = time_batched()
    finally:
        warmer_module._native_span, warmer_module._native_warm = (
            saved_bindings
        )
    scalar_system = model.build_system(base_cfg, probe_traces)
    started = time.perf_counter()
    for interval in warm_intervals:
        _warm_interval(scalar_system, probe_traces, interval)
    scalar_s = time.perf_counter() - started
    warming_probe = {
        "benchmark": "UA",
        "scale": 1.0,
        "blocks": batched_blocks,
        "batched_s": round(batched_s, 3),
        "scalar_s": round(scalar_s, 3),
        "batched_blocks_per_s": round(batched_blocks / batched_s),
        "scalar_blocks_per_s": round(batched_blocks / scalar_s),
        "batched_speedup": round(scalar_s / batched_s, 3),
        "batched_blocks_per_s_py": round(batched_blocks / py_batched_s),
        "batched_blocks_per_s_compiled": (
            round(batched_blocks / batched_s) if kernels.NATIVE else None
        ),
    }

    # Streamed-ingest probe: the chunked on-disk trace path versus the
    # in-memory synthesis path on the same UA full-detail run. The
    # streamed leg re-opens the corpus each repetition, so it pays the
    # whole bill — index read, chunk decode, record construction —
    # while the in-memory leg starts with records already built.
    from repro.trace import open_trace_set, write_trace_set

    corpus_dir = tmp_path / "trace-corpus"
    started = time.perf_counter()
    write_trace_set(probe_traces, corpus_dir, chunked=True)
    encode_s = time.perf_counter() - started

    streamed_result, streamed_s = timed(
        lambda rep: simulate(base_cfg, open_trace_set(corpus_dir))
    )
    memory_s = timings["full_base"]
    ingest_overhead = streamed_s / memory_s - 1.0
    corpus_bytes = sum(
        child.stat().st_size for child in corpus_dir.iterdir()
    )
    ingest_probe = {
        "benchmark": "UA",
        "scale": 1.0,
        "corpus_bytes": corpus_bytes,
        "encode_s": round(encode_s, 3),
        "memory_run_s": round(memory_s, 3),
        "streamed_run_s": round(streamed_s, 3),
        "streamed_overhead": round(ingest_overhead, 4),
    }

    # Observability-overhead probe: the recorder must be free when
    # disabled — instrumented tiers grab the registry/tracer at
    # construction, so hot paths reduce to one None check — and cheap
    # with metrics on. Timed on a UA run; the ambient leg measures the
    # state every other probe in this file ran under.
    from repro import obs
    import importlib

    # repro.obs re-exports a recorder() *function* that shadows the
    # submodule attribute, so `import ... as` would bind the function.
    obs_recorder = importlib.import_module("repro.obs.recorder")
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.profile import phase_breakdown

    # Twice BENCH_SCALE, legs interleaved round-robin AND rotated: the
    # disabled-overhead gate is 2% of this run, so the run must be long
    # enough that container scheduling jitter (a few ms) stays inside
    # the margin, every leg must see the same load profile — a
    # background burst during one leg's block would otherwise
    # masquerade as recorder overhead — and no leg may own a fixed slot
    # in the round (the first run after a round boundary is
    # systematically colder). Best-of-6 rotated rounds.
    obs_traces = synthesize_benchmark(
        "UA", thread_count=9, scale=BENCH_SCALE * 2
    )

    def obs_once():
        import gc

        gc.collect()
        # CPU time, not wall time: the recorder's cost is instructions
        # retired, and process_time is blind to the scheduler steal
        # that dominates wall jitter on a shared 1-CPU host.
        started = time.process_time()
        simulate(base_cfg, obs_traces)
        return time.process_time() - started

    obs_times: dict[str, list[float]] = {}
    obs_state: dict[str, int] = {"timeline_events": 0}

    def obs_leg(leg):
        obs_times.setdefault(leg, []).append(obs_once())

    ambient_recorder = obs_recorder.recorder()

    def run_leg(leg):
        if leg == "ambient":
            obs_recorder._active = ambient_recorder
            obs_leg(leg)
        elif leg == "disabled":
            obs.disable()
            obs_leg(leg)
        elif leg == "metrics":
            with obs.recording(metrics=True):
                obs_leg(leg)
        else:
            with obs.recording(metrics=True, timeline=True) as obs_rec:
                obs_leg(leg)
                obs_state["timeline_events"] = len(obs_rec.tracer)

    obs_legs = ("ambient", "disabled", "metrics", "timeline")
    try:
        for round_index in range(7):
            for slot in range(len(obs_legs)):
                run_leg(obs_legs[(round_index + slot) % len(obs_legs)])
        # Per-phase wall attribution of one sampled run with metrics on
        # (no checkpoint store: a clean warming/measurement/extrapolation
        # mix with nothing served from disk).
        with obs.recording(metrics=True):
            sampled_obs = simulate_sampled(
                base_cfg, probe_traces, plan, checkpoints=None
            )
    finally:
        obs_recorder._active = ambient_recorder
    timeline_events = obs_state["timeline_events"]

    def obs_overhead(leg):
        # Ratio of per-leg minima: the bulk of repeated identical runs
        # drifts by ±5% even in CPU time (allocator state, frequency
        # steps), but the floor is reproducible to well under 1% — the
        # min is the only estimator that makes a 2% gate assertable on
        # this host, and 7 interleaved rotated rounds give each leg a
        # fair shot at hitting it.
        return min(obs_times[leg]) / min(obs_times["disabled"]) - 1.0

    phases = phase_breakdown(
        MetricsRegistry.from_payload(sampled_obs.metrics)
    )
    phase_total = sum(phases.values()) or 1.0
    obs_probe = {
        "benchmark": "UA",
        "scale": BENCH_SCALE * 2,
        "run_disabled_s": round(min(obs_times["disabled"]), 3),
        "overhead_disabled": round(obs_overhead("ambient"), 4),
        "overhead_metrics": round(obs_overhead("metrics"), 4),
        "overhead_timeline": round(obs_overhead("timeline"), 4),
        "timeline_events": timeline_events,
        "phase_fractions": {
            name: round(seconds / phase_total, 4)
            for name, seconds in phases.items()
        },
    }

    # The runner's own clamp bookkeeping (an empty batch takes the
    # serial path but still computes the width the pool would get).
    from repro.campaign import run_specs

    jobs_report = run_specs([], jobs=4)

    payload = {
        "generated": date.today().isoformat(),
        "host_cpus": os.cpu_count(),
        "campaign_jobs": jobs_report.jobs,
        "effective_jobs": jobs_report.effective_jobs,
        "kernel_backend": kernels.backend_name(),
        "scale": BENCH_SCALE,
        "benchmarks": list(BENCH_SUBSET),
        "experiments": ["fig01", "fig07"],
        "reference_serial_s": round(reference_s, 3),
        "skip_serial_s": round(skip_serial_s, 3),
        "campaign_skip_jobs4_s": round(campaign_s, 3),
        "campaign_cached_s": round(cached_s, 3),
        "speedup_skip_serial": round(reference_s / skip_serial_s, 3),
        "speedup_cold": round(reference_s / campaign_s, 3),
        "speedup_cached": round(reference_s / max(cached_s, 1e-9), 3),
        "kernel_skip": kernel_stats,
        "kernel_skip_per_benchmark": kernel_skip,
        "sampling": sampling_probe,
        "warming": warming_probe,
        "trace_ingest": ingest_probe,
        "obs": obs_probe,
    }
    out_path = Path(__file__).resolve().parent.parent / "BENCH_campaign.json"
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    # The campaign layer's regeneration-speedup criterion: a repeated
    # regeneration must beat the seed-style serial rerun by >= 1.5x
    # (on multi-core hosts the cold jobs=4 path should too, but a
    # 1-CPU container cannot parallelise, so the gate is the store).
    assert payload["speedup_cached"] >= 1.5
    # The event-driven scheduler's criterion: skip efficiency at or
    # above the old global gate's recorded UA figure (0.1707), and a
    # substantial fraction of component steps elided outright.
    assert kernel_stats["skipped_fraction"] >= 0.17
    assert any(
        entry["steps_avoided_fraction"] >= 0.3 for entry in kernel_skip
    )
    # The interconnect busy-horizon lever: shared-front-end runs must
    # batch at least some busy-only steps away.
    assert any(
        entry["interconnect_busy_batched"] > 0 for entry in kernel_skip
    )
    # The commit-replay lever: every probe leaves commit-bound drain
    # phases behind quiescent front-ends, and those back-end cycles
    # must be settled in batches, not stepped.
    assert all(
        entry["commit_cycles_batched"] > 0 for entry in kernel_skip
    )
    # The redirect-replay lever: the UA probe's mispredict redirects
    # must be batch-settled, not stepped through drain + penalty.
    assert kernel_stats["redirect_cycles_batched"] > 0
    # The interval-sampling lever: fast mode must cut wall time by at
    # least 3x on the UA probe while keeping the reported shared-vs-
    # baseline speedup within 2% of the full runs' value.
    assert sampling_probe["wall_speedup"] >= 3.0
    assert sampling_probe["speedup_rel_error"] <= 0.02
    # The warm-checkpoint lever: the second (all-hit) sampled pass
    # must beat the full runs by a wider margin still, never touch the
    # trace for warming, and reproduce the cold pass's cycles exactly.
    assert sampling_probe["wall_speedup_hit"] >= 6.0
    assert counters["hit_base"]["misses"] == 0
    assert counters["hit_base"]["hits"] > 0
    assert counters["cold_base"]["writes"] == counters["cold_base"]["misses"]
    assert cycles["hit_base"] == cycles["cold_base"]
    assert cycles["hit_shared"] == cycles["cold_shared"]
    # The streamed-ingest criterion: reading the chunked corpus must
    # stay within 10% of the in-memory run's wall time and reproduce
    # it bit for bit — streaming is a memory lever, not a time trade.
    assert streamed_result.cycles == cycles["full_base"]
    assert ingest_probe["streamed_overhead"] < 0.10
    # The observability contract: recording machinery must be free when
    # disabled (< 2% — the two legs run identical code with no recorder
    # installed, so this is the noise floor the construction-time-grab
    # design has to stay under) and cheap with metrics on (< 10%).
    assert obs_probe["overhead_disabled"] < 0.02
    assert obs_probe["overhead_metrics"] < 0.10
    assert obs_probe["timeline_events"] > 0
    assert {"warming", "measurement", "extrapolation"} <= set(phases)
    # The batched-warming lever: the vectorised walk must outpace the
    # scalar reference walk it is bit-identical to, on both backends.
    assert warming_probe["batched_speedup"] >= 1.5
    assert warming_probe["batched_blocks_per_s"] >= 100_000
    assert warming_probe["batched_blocks_per_s_py"] >= 100_000
    if kernels.NATIVE:
        # The span kernel must beat PR 7's per-block compiled walk
        # (711k blocks/s on this container), not merely the py path.
        assert warming_probe["batched_blocks_per_s_compiled"] > 711_000
        # The compiled replay walks must actually engage on every
        # scheduler probe — the settlement paths all route through it.
        assert all(
            entry["replay_walk_engaged"] > 0 for entry in kernel_skip
        )
