"""Scalability of I-cache sharing beyond eight cores (Section VI-E).

"Sharing an I-cache among more than eight cores introduces additional
stall cycles which can not be mitigated with a double bus interconnect and
four line buffers" — the finding that caps the paper's design at
eight-core clusters. This bench sweeps the worker count with one fully
shared I-cache and reports the slowdown versus the private baseline at
the same core count.
"""

import pytest
from conftest import BENCH_SCALE

from repro.acmp import AcmpConfig, baseline_config, simulate
from repro.trace.synthesis import synthesize_benchmark

WORKER_COUNTS = (4, 8, 12, 16)


@pytest.fixture(scope="module")
def traces_by_count():
    return {
        workers: synthesize_benchmark(
            "UA", thread_count=workers + 1, scale=BENCH_SCALE
        )
        for workers in WORKER_COUNTS
    }


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_bench_scalability(benchmark, traces_by_count, workers):
    traces = traces_by_count[workers]
    base = simulate(baseline_config(worker_count=workers), traces)

    def run():
        config = AcmpConfig(
            worker_count=workers,
            cores_per_cache=workers,
            worker_icache_bytes=32 * 1024,
            bus_count=2,
            line_buffers=4,
        )
        return simulate(config, traces)

    shared = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio = shared.cycles / base.cycles
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["time_vs_baseline"] = round(ratio, 4)
    assert shared.total_committed == traces.instruction_count


def test_sharing_degrades_beyond_eight(traces_by_count):
    """The paper's scalability limit: the double-bus design that is free
    at 8 cores costs measurable time at 16."""
    ratios = {}
    for workers in (8, 16):
        traces = traces_by_count[workers]
        base = simulate(baseline_config(worker_count=workers), traces)
        shared = simulate(
            AcmpConfig(
                worker_count=workers,
                cores_per_cache=workers,
                worker_icache_bytes=32 * 1024,
                bus_count=2,
                line_buffers=4,
            ),
            traces,
        )
        ratios[workers] = shared.cycles / base.cycles
    assert ratios[16] >= ratios[8] - 0.01
