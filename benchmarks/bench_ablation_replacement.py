"""Ablation: I-cache replacement policy.

Table I fixes LRU; this bench confirms the shared-I-cache conclusions are
not an artefact of true LRU by sweeping the implemented policies (LRU,
tree-PLRU, FIFO, random) on a capacity-pressured benchmark (botsalgn, the
Fig. 11 outlier) at the 16 KB shared design point.
"""

import pytest
from conftest import BENCH_SCALE

from repro.acmp import simulate, worker_shared_config
from repro.trace.synthesis import synthesize_benchmark

POLICIES = ("lru", "plru", "fifo", "random")


@pytest.fixture(scope="module")
def botsalgn_traces():
    return synthesize_benchmark("botsalgn", thread_count=9, scale=BENCH_SCALE)


@pytest.mark.parametrize("policy", POLICIES)
def test_bench_replacement(benchmark, botsalgn_traces, policy):
    config = worker_shared_config(icache_policy=policy)

    def run():
        return simulate(config, botsalgn_traces)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["worker_mpki"] = round(result.worker_icache_mpki(), 3)
    assert result.total_committed == botsalgn_traces.instruction_count
