"""Ablation: I-bus arbitration policy as the fetch policy (Section VII).

The paper's conclusion notes that once the I-cache is shared, "the
arbitration policy on an I-bus becomes the fetching policy" and proposes
evaluating SMT-style policies. This bench sweeps all four policies on the
most bus-sensitive benchmark (UA) at the naive cpc=8 single-bus point and
reports the execution-time ratio to the private baseline.
"""

import pytest
from conftest import BENCH_SCALE

from repro.acmp import baseline_config, simulate, worker_shared_config
from repro.trace.synthesis import synthesize_benchmark

POLICIES = ("round-robin", "fixed-priority", "least-recently-granted", "icount")


@pytest.fixture(scope="module")
def ua_runs():
    traces = synthesize_benchmark("UA", thread_count=9, scale=BENCH_SCALE)
    base = simulate(baseline_config(), traces)
    return traces, base


@pytest.mark.parametrize("policy", POLICIES)
def test_bench_arbitration(benchmark, ua_runs, policy):
    traces, base = ua_runs

    def run():
        config = worker_shared_config(
            cores_per_cache=8, icache_kb=32, bus_count=1, arbitration=policy
        )
        return simulate(config, traces)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio = result.cycles / base.cycles
    benchmark.extra_info["time_vs_baseline"] = round(ratio, 4)
    assert result.total_committed == traces.instruction_count
