"""Benchmark: regenerate Fig. 1 (Hill-Marty ACMP speedup curves)."""

from repro.experiments.registry import run_experiment


def test_bench_fig01(benchmark):
    result = benchmark(run_experiment, "fig01")
    assert 1.0 < result.summary["crossover_percent"] < 3.0
