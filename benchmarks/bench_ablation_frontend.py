"""Ablation: shared fetch predictor and crossbar interconnect.

Section VII future work: "customizing the rest of the multicore front-end
and sharing both the iTLB and branch predictor may also provide benefits
from similar cross-thread prefetching and constructive interference"; and
Section IV-B weighs crossbars against buses. Both options exist in the
configuration; this bench prices them on the chosen design point.
"""

import pytest
from conftest import BENCH_SCALE

from repro.acmp import simulate, worker_shared_config
from repro.power import evaluate_power, worker_cluster_area
from repro.trace.synthesis import synthesize_benchmark

VARIANTS = {
    "proposal": dict(),
    "shared-predictor": dict(shared_fetch_predictor=True),
    "crossbar": dict(interconnect="crossbar"),
}


@pytest.fixture(scope="module")
def dc_traces():
    return synthesize_benchmark("DC", thread_count=9, scale=BENCH_SCALE)


@pytest.mark.parametrize("variant", list(VARIANTS))
def test_bench_frontend_variant(benchmark, dc_traces, variant):
    config = worker_shared_config(**VARIANTS[variant])

    def run():
        return simulate(config, dc_traces)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    power = evaluate_power(result, config)
    benchmark.extra_info["cycles"] = result.cycles
    benchmark.extra_info["area_mm2"] = round(power.area_mm2, 2)
    assert result.total_committed == dc_traces.instruction_count
    if variant == "crossbar":
        bus_area = worker_cluster_area(worker_shared_config()).total
        assert power.area_mm2 > bus_area
