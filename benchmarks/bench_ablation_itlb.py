"""Ablation: shared instruction TLB (Section VII future work).

"Sharing both the iTLB and branch predictor may also provide benefits from
similar cross-thread prefetching and constructive interference effects."
This bench compares private vs shared iTLBs on the chosen shared-I-cache
design point.
"""

import pytest
from conftest import BENCH_SCALE

from repro.acmp import simulate, worker_shared_config
from repro.trace.synthesis import synthesize_benchmark

VARIANTS = {
    "private-itlb": dict(itlb_enabled=True),
    "shared-itlb": dict(itlb_enabled=True, shared_itlb=True),
}


@pytest.fixture(scope="module")
def cg_traces():
    return synthesize_benchmark("CG", thread_count=9, scale=BENCH_SCALE)


@pytest.mark.parametrize("variant", list(VARIANTS))
def test_bench_itlb(benchmark, cg_traces, variant):
    config = worker_shared_config(**VARIANTS[variant])

    def run():
        return simulate(config, cg_traces)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["cycles"] = result.cycles
    assert result.total_committed == cg_traces.instruction_count
