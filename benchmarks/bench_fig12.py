"""Benchmark: regenerate Fig. 12 (time / energy / area design points)."""

from conftest import make_context

from repro.experiments.registry import run_experiment


def test_bench_fig12(benchmark):
    def regenerate():
        return run_experiment("fig12", make_context())

    result = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    assert result.summary["area_4_LB_double_bus"] < 0.95
    assert result.summary["energy_4_LB_double_bus"] < 1.0
