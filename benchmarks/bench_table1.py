"""Benchmark: regenerate Table I (simulated ACMP configuration)."""

from repro.experiments.registry import run_experiment


def test_bench_table1(benchmark):
    result = benchmark(run_experiment, "table1")
    assert result.summary["all_match"] == 1.0
