"""Benchmark: regenerate Fig. 7 (naive sharing execution time, cpc sweep)."""

from conftest import make_context

from repro.experiments.registry import run_experiment


def test_bench_fig07(benchmark):
    def regenerate():
        return run_experiment("fig07", make_context())

    result = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    assert result.summary["mean_cpc8_ratio"] >= result.summary["mean_cpc2_ratio"]
    assert result.summary["worst_cpc8_ratio"] > 1.02
