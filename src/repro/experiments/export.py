"""EXPERIMENTS.md generation: paper-vs-measured for every table/figure.

Renders the outcome of a full experiment campaign as a markdown report
with, per experiment, the paper's reference values, the measured values,
and a pass/check verdict on the *shape* claims (the fidelity contract of
DESIGN.md section 6).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import ExperimentResult


@dataclass(frozen=True, slots=True)
class ShapeCheck:
    """One verifiable shape claim of the paper."""

    description: str
    paper_value: str
    summary_key: str
    #: inclusive acceptance interval on the summary value
    low: float
    high: float
    #: formatting for the measured value
    fmt: str = "{:.3f}"

    def evaluate(self, result: ExperimentResult) -> tuple[str, bool]:
        value = result.summary.get(self.summary_key)
        if value is None:
            return "(missing)", False
        ok = self.low <= value <= self.high
        text = self.fmt.format(value)
        # Seed sweeps attach a 95 % confidence half-width per summary
        # key (see repro.experiments.common.attach_seed_intervals);
        # surface it, and record whether the claim is *CI-stable* — the
        # whole confidence band, not just the mean, inside the
        # acceptance interval — so EXPERIMENTS.md distinguishes claims
        # that hold across trace realisations from ones riding on a
        # lucky seed.
        half_width = result.summary.get(f"{self.summary_key}_ci95")
        if half_width is not None:
            seeds = int(result.summary.get("seed_count", 0))
            text += f" ± {half_width:.3f} (95% CI, {seeds} seeds"
            if ok:
                stable = (
                    self.low <= value - half_width
                    and value + half_width <= self.high
                )
                text += ", CI-stable" if stable else ", CI-fragile"
            text += ")"
        return text, ok


#: The paper's headline claims, keyed by experiment id.
SHAPE_CHECKS: dict[str, list[ShapeCheck]] = {
    "fig01": [
        ShapeCheck(
            "ACMP beats both symmetric CMPs above this serial fraction",
            "~2 %", "crossover_percent", 1.0, 3.0, "{:.1f} %",
        ),
        ShapeCheck(
            "measured ACMP-vs-SCMP amean speedup (equal area, simulated)",
            ">= 1", "measured_speedup_amean", 0.99, 3.0, "{:.3f}x",
        ),
    ],
    "fig02": [
        ShapeCheck(
            "parallel/serial mean basic-block length ratio",
            "~3x", "amean_ratio", 2.0, 5.0, "{:.2f}x",
        ),
    ],
    "fig03": [
        ShapeCheck(
            "CoEVP parallel MPKI (the only value above 1)",
            "1.27", "coevp_parallel_mpki", 0.8, 1.8, "{:.2f}",
        ),
        ShapeCheck(
            "max parallel MPKI of every other benchmark",
            "<< 1", "max_other_parallel_mpki", 0.0, 0.5, "{:.2f}",
        ),
    ],
    "fig04": [
        ShapeCheck(
            "mean dynamic instruction sharing",
            "~99 %", "mean_dynamic_sharing_percent", 97.0, 100.0, "{:.1f} %",
        ),
    ],
    "table1": [
        ShapeCheck(
            "library defaults equal the paper's Table I",
            "all match", "all_match", 1.0, 1.0, "{:.0f}",
        ),
    ],
    "fig07": [
        ShapeCheck(
            "worst cpc=8 naive-sharing slowdown (UA in the paper)",
            "~1.18", "worst_cpc8_ratio", 1.08, 1.35,
        ),
        ShapeCheck(
            "mean cpc=2 ratio (sharing between pairs is ~free)",
            "~1.00", "mean_cpc2_ratio", 0.97, 1.03,
        ),
    ],
    "fig08": [
        ShapeCheck(
            "benchmarks whose added stalls are I-bus dominated",
            "most of 24", "bus_dominated_count", 18, 24, "{:.0f}",
        ),
    ],
    "fig09": [
        ShapeCheck(
            "mean 4-LB access ratio of the tight-loop codes",
            "low (<40 %)", "mean_low_ratio_at_4lb", 0.0, 40.0, "{:.1f} %",
        ),
        ShapeCheck(
            "mean 4-LB access ratio of the large-body codes",
            "~100 %", "mean_high_ratio_at_4lb", 60.0, 100.0, "{:.1f} %",
        ),
    ],
    "fig10": [
        ShapeCheck(
            "mean exec time with the double bus (full recovery)",
            "~1.00", "mean_double_bus", 0.97, 1.02,
        ),
        ShapeCheck(
            "mean exec time with 8 LB + single bus (partial recovery)",
            "between naive and double-bus", "mean_more_lb", 0.97, 1.10,
        ),
    ],
    "fig11": [
        ShapeCheck(
            "mean shared(32 KB)/private miss ratio",
            "~50 %", "mean_ratio_32kb_percent", 10.0, 80.0, "{:.0f} %",
        ),
        ShapeCheck(
            "best-case shared/private miss ratio (LU/SP in the paper)",
            "~10 %", "min_ratio_32kb_percent", 0.0, 30.0, "{:.0f} %",
        ),
    ],
    "fig12": [
        ShapeCheck(
            "area of the chosen design (4 LB + double bus)",
            "~0.89", "area_4_LB_double_bus", 0.86, 0.92,
        ),
        ShapeCheck(
            "energy of the chosen design",
            "~0.95", "energy_4_LB_double_bus", 0.90, 0.99,
        ),
        ShapeCheck(
            "execution time of the chosen design",
            "~1.00", "time_4_LB_double_bus", 0.97, 1.03,
        ),
    ],
    "fig13": [
        ShapeCheck(
            "all-shared penalty trend: high-serial minus low-serial mean "
            "ratio (the paper's Fig. 13 slope)",
            "positive", "trend_delta", 0.0, 0.05, "{:+.4f}",
        ),
        ShapeCheck(
            "Group 3 (EP/FT/UA) all-shared ratio with a single bus",
            "> 1 (bus saturation)", "group3_single_bus_mean_ratio", 1.0, 1.5,
        ),
    ],
}


def render_markdown(
    results: list[ExperimentResult],
    scale: float,
    preamble: str = "",
) -> str:
    """Render the full EXPERIMENTS.md content from a campaign."""
    lines = [
        "# EXPERIMENTS — paper vs measured",
        "",
        "Generated by `repro.experiments.export.render_markdown` from a full",
        f"campaign over all 24 benchmarks at scale {scale}.",
        "Regenerate any row with `python -m repro.experiments <id> --scale "
        f"{scale}`.",
        "",
    ]
    if preamble:
        lines += [preamble, ""]
    passed = 0
    total = 0
    for result in results:
        lines.append(f"## {result.experiment_id}: {result.title}")
        lines.append("")
        checks = SHAPE_CHECKS.get(result.experiment_id, [])
        if checks:
            lines.append("| shape claim | paper | measured | ok |")
            lines.append("|---|---|---|---|")
            for check in checks:
                measured, ok = check.evaluate(result)
                total += 1
                passed += ok
                mark = "yes" if ok else "NO"
                lines.append(
                    f"| {check.description} | {check.paper_value} | "
                    f"{measured} | {mark} |"
                )
            lines.append("")
        lines.append("```")
        lines.append(result.rendered)
        lines.append("```")
        lines.append("")
    lines.insert(
        5,
        f"**Shape checks passed: {passed}/{total}.**",
    )
    return "\n".join(lines)
