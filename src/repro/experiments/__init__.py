"""Experiment drivers: one per paper table/figure, plus the registry.

Submodules are imported lazily by :mod:`repro.experiments.registry` to keep
``import repro`` light; use::

    from repro.experiments.registry import run_experiment
    print(run_experiment("fig07").rendered)

or the command line::

    python -m repro.experiments fig07 --scale 0.5
"""
