"""Fig. 3: I-cache MPKI in serial vs parallel code regions.

Functional 32 KB / 8-way / 64 B / LRU cache over the master trace.
Shape checks: parallel MPKI far below 1 for every benchmark except CoEVP
(~1.27); serial MPKI much higher everywhere.
"""

from __future__ import annotations

from repro.analysis.characterize import mpki_profile
from repro.analysis.report import format_table
from repro.experiments.common import ExperimentContext, ExperimentResult

EXPERIMENT_ID = "fig03"
TITLE = "I-cache MPKI, serial vs parallel (32KB, 8-way, 64B, LRU)"


def run(ctx: ExperimentContext | None = None) -> ExperimentResult:
    ctx = ctx or ExperimentContext()
    headers = ["benchmark", "serial MPKI", "parallel MPKI"]
    rows: list[list[object]] = []
    coevp_parallel = 0.0
    max_other_parallel = 0.0
    for name in ctx.benchmarks:
        traces = ctx.traces_for(name)
        profile = mpki_profile(traces.master)
        serial = profile.serial.steady_state_mpki
        parallel = profile.parallel.steady_state_mpki
        rows.append([name, serial, parallel])
        if name == "CoEVP":
            coevp_parallel = parallel
        else:
            max_other_parallel = max(max_other_parallel, parallel)
    rendered = format_table(headers, rows, float_format="{:.2f}")
    rendered += (
        f"\nCoEVP parallel MPKI = {coevp_parallel:.2f} (paper: 1.27); "
        f"max other parallel MPKI = {max_other_parallel:.2f} (paper: << 1)"
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=headers,
        rows=rows,
        rendered=rendered,
        summary={
            "coevp_parallel_mpki": coevp_parallel,
            "max_other_parallel_mpki": max_other_parallel,
        },
    )
