"""Registry of all experiment drivers, keyed by the paper's figure/table id."""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import ConfigurationError
from repro.experiments import (
    fig01_acmp_speedup,
    fig02_basic_blocks,
    fig03_mpki,
    fig04_sharing,
    fig07_naive_sharing,
    fig08_cpi_stack,
    fig09_access_ratio,
    fig10_tradeoff,
    fig11_miss_analysis,
    fig12_area_energy,
    fig13_all_shared,
    table1_config,
)
from repro.experiments.common import ExperimentContext, ExperimentResult

_MODULES = (
    fig01_acmp_speedup,
    fig02_basic_blocks,
    fig03_mpki,
    fig04_sharing,
    table1_config,
    fig07_naive_sharing,
    fig08_cpi_stack,
    fig09_access_ratio,
    fig10_tradeoff,
    fig11_miss_analysis,
    fig12_area_energy,
    fig13_all_shared,
)

EXPERIMENTS: dict[str, Callable[[ExperimentContext | None], ExperimentResult]] = {
    module.EXPERIMENT_ID: module.run for module in _MODULES
}

TITLES: dict[str, str] = {module.EXPERIMENT_ID: module.TITLE for module in _MODULES}


def experiment_ids() -> list[str]:
    """All experiment ids in paper order."""
    return list(EXPERIMENTS)


def run_experiment(
    experiment_id: str, ctx: ExperimentContext | None = None
) -> ExperimentResult:
    """Run one experiment by id (e.g. ``"fig07"`` or ``"table1"``)."""
    normalized = experiment_id.lower().replace(".", "").replace(" ", "")
    try:
        driver = EXPERIMENTS[normalized]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; expected one of "
            f"{experiment_ids()}"
        ) from None
    return driver(ctx)


def run_all(ctx: ExperimentContext | None = None) -> list[ExperimentResult]:
    """Run every experiment, sharing one context for memoised runs."""
    ctx = ctx or ExperimentContext()
    return [run_experiment(eid, ctx) for eid in experiment_ids()]
