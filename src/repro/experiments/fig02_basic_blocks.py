"""Fig. 2: average dynamic basic-block length in serial vs parallel code.

Master-thread characterisation over all 24 benchmarks. Shape checks:
parallel blocks ~3x serial on (arithmetic) mean; nab and CoEVP inverted.
"""

from __future__ import annotations

from repro.analysis.characterize import basic_block_profile
from repro.analysis.report import format_table
from repro.experiments.common import ExperimentContext, ExperimentResult

EXPERIMENT_ID = "fig02"
TITLE = "Average dynamic basic block length [bytes], serial vs parallel"


def run(ctx: ExperimentContext | None = None) -> ExperimentResult:
    ctx = ctx or ExperimentContext()
    headers = ["benchmark", "serial [B]", "parallel [B]", "ratio"]
    rows: list[list[object]] = []
    serial_values = []
    parallel_values = []
    for name in ctx.benchmarks:
        traces = ctx.traces_for(name)
        profile = basic_block_profile(traces.master)
        serial_values.append(profile.serial_mean_bytes)
        parallel_values.append(profile.parallel_mean_bytes)
        rows.append(
            [
                name,
                profile.serial_mean_bytes,
                profile.parallel_mean_bytes,
                profile.parallel_to_serial_ratio,
            ]
        )
    amean_serial = sum(serial_values) / len(serial_values)
    amean_parallel = sum(parallel_values) / len(parallel_values)
    rows.append(["amean", amean_serial, amean_parallel, amean_parallel / amean_serial])
    rendered = format_table(headers, rows, float_format="{:.1f}")
    rendered += (
        f"\nparallel/serial amean ratio = {amean_parallel / amean_serial:.2f} "
        f"(paper: ~3x)"
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=headers,
        rows=rows,
        rendered=rendered,
        summary={
            "amean_serial_bytes": amean_serial,
            "amean_parallel_bytes": amean_parallel,
            "amean_ratio": amean_parallel / amean_serial,
        },
    )
