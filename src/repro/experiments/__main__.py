"""Command-line entry point for regenerating the paper's tables and figures.

Examples::

    python -m repro.experiments list
    python -m repro.experiments fig07
    python -m repro.experiments all --scale 0.5 --benchmarks BT,CG,UA
    python -m repro.experiments all --jobs 4 --cache-dir .results

``--jobs N`` fans the simulations of each figure out over N worker
processes through the campaign runner; ``--cache-dir`` persists every
simulation result as JSON keyed by (benchmark, design point, seed,
scale), so a second invocation only simulates design points it has
never seen.
"""

from __future__ import annotations

import argparse
import logging
import sys
import time

from repro.campaign.runner import print_progress
from repro.experiments.common import ExperimentContext
from repro.obs.log import add_log_arguments, setup_from_args
from repro.experiments.registry import (
    TITLES,
    experiment_ids,
    run_all,
    run_experiment,
)
from repro.workloads.suites import benchmark_names

# Not __name__: under `python -m` this module IS "__main__",
# which would fall outside the configured "repro" logger tree.
_LOG = logging.getLogger("repro.experiments.cli")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (fig01..fig13, table1), 'all', or 'list'",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="per-thread instruction budget multiplier (default 1.0)",
    )
    parser.add_argument(
        "--benchmarks",
        type=str,
        default="",
        help="comma-separated benchmark subset (default: all 24)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="trace synthesis seed (default 0); combined with --seeds "
        "it names the sweep's primary seed",
    )
    parser.add_argument(
        "--seeds",
        type=str,
        default="",
        help="comma-separated seed sweep (e.g. 0,1,2): figures report "
        "per-design-point mean ± 95%% CI across independent trace "
        "realisations; the first seed drives the primary tables",
    )
    parser.add_argument(
        "--machine",
        type=str,
        default="acmp",
        help="machine model the machine-parametric figures (fig07-fig09) "
        "sweep: 'acmp' (the paper's machine) or 'scmp' (symmetric CMP "
        "with per-core or banked front-ends); fig01 always compares "
        "the ACMP against the symmetric model",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the simulation campaign (default 1)",
    )
    parser.add_argument(
        "--cache-dir",
        type=str,
        default="",
        help="persist simulation results as JSON under this directory "
        "and reuse them across invocations",
    )
    parser.add_argument(
        "--no-cycle-skip",
        action="store_true",
        help="disable the kernel's cycle-skipping fast path (engine "
        "cross-checks; results are bit-identical either way)",
    )
    parser.add_argument(
        "--sampling",
        type=str,
        default="none",
        help="interval-sampled simulation: none (full detail, default), "
        "fast (~1/20 coverage), precise (~1/3 coverage), or a plan spec "
        "like d8000:s152000:w152000:r0; sampled figures carry "
        "per-metric error estimates and cache separately from full runs",
    )
    parser.add_argument(
        "--checkpoints",
        choices=("on", "off", "refresh"),
        default="on",
        help="warm-checkpoint store for sampled runs, colocated at "
        "<cache-dir>/checkpoints: on (read+write, default), off, or "
        "refresh (ignore existing entries but rewrite them)",
    )
    parser.add_argument(
        "--event-dir",
        type=str,
        default=None,
        help="read traces from this captured corpus (layout written by "
        "'python -m repro.trace capture' / --capture-traces) instead of "
        "synthesising; chunked sets stream in O(chunk) memory",
    )
    parser.add_argument(
        "--capture-traces",
        type=str,
        default=None,
        metavar="DIR",
        help="persist every synthesized trace set into this corpus "
        "(chunked .trcz) as a side effect of the run",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="suppress per-run campaign progress on stderr",
    )
    parser.add_argument(
        "--export",
        type=str,
        default="",
        help="also write a paper-vs-measured markdown report to this path",
    )
    add_log_arguments(parser)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    setup_from_args(args)
    if args.experiment == "list":
        for experiment_id in experiment_ids():
            print(f"{experiment_id:8s} {TITLES[experiment_id]}")
        return 0
    benchmarks = (
        [name.strip() for name in args.benchmarks.split(",") if name.strip()]
        or benchmark_names()
    )
    sweep = tuple(
        int(part) for part in args.seeds.split(",") if part.strip() != ""
    )
    if args.seed is not None:
        # An explicit --seed always drives the primary tables; with
        # --seeds it joins (and leads) the sweep instead of being
        # silently discarded.
        seed = args.seed
        sweep = (seed, *(s for s in sweep if s != seed))
    else:
        seed = sweep[0] if sweep else 0
    show_progress = (args.jobs > 1 or args.cache_dir) and not args.quiet
    ctx = ExperimentContext(
        scale=args.scale,
        benchmarks=benchmarks,
        seed=seed,
        seeds=sweep[1:],
        jobs=args.jobs,
        cache_dir=args.cache_dir or None,
        cycle_skip=not args.no_cycle_skip,
        progress=print_progress if show_progress else None,
        machine=args.machine,
        sampling=args.sampling if args.sampling != "none" else "",
        checkpoints=args.checkpoints,
        event_dir=args.event_dir,
        capture_traces=args.capture_traces,
    )
    started = time.time()
    if args.experiment == "all":
        results = run_all(ctx)
    else:
        results = [run_experiment(args.experiment, ctx)]
    for result in results:
        print(result)
        print()
    if args.export:
        from pathlib import Path

        from repro.experiments.export import render_markdown

        Path(args.export).write_text(render_markdown(results, scale=args.scale))
        _LOG.info("[wrote %s]", args.export)
    _LOG.info("[%.1fs total]", time.time() - started)
    return 0


if __name__ == "__main__":
    sys.exit(main())
