"""Fig. 12: execution time, energy and area of the design points.

Four cpc = 8 / 16 KB-shared design points (line buffers x bus count)
against the private baseline, averaged across benchmarks, with the
McPAT/CACTI-style models pricing area and energy. Shape checks: the
4 LB + double-bus point saves ~11 % area and ~5 % energy at ~no
performance cost; single-bus points save the most area but lose
performance and keep only modest energy savings.

Machine-parametric: the design points are built from the context's
machine model (``--machine``) and the power layer resolves each
configuration's topology through the machine registry, so the same
trade-off is priced on the ACMP's worker cluster or on a symmetric
CMP's banked front-ends.
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.experiments.common import (
    ExperimentContext,
    ExperimentResult,
    attach_sampling_errors,
    attach_seed_intervals,
)
from repro.power.energy import evaluate_power

EXPERIMENT_ID = "fig12"
TITLE = "Normalized execution time / energy / area of the design points"

VARIANTS: tuple[tuple[str, dict], ...] = (
    ("cpc=8, 4 LB, single bus", dict(bus_count=1, line_buffers=4)),
    ("cpc=8, 4 LB, double bus", dict(bus_count=2, line_buffers=4)),
    ("cpc=8, 8 LB, single bus", dict(bus_count=1, line_buffers=8)),
    ("cpc=8, 8 LB, double bus", dict(bus_count=2, line_buffers=8)),
)


def _variant_config(ctx: ExperimentContext, overrides: dict):
    return ctx.model.shared_config(cores_per_cache=8, icache_kb=16, **overrides)


def design_points(ctx: ExperimentContext) -> list[tuple[str, object]]:
    """Every (benchmark, config) pair this figure needs."""
    configs = [ctx.model.baseline_config()] + [
        _variant_config(ctx, overrides) for _, overrides in VARIANTS
    ]
    return [(name, config) for name in ctx.benchmarks for config in configs]


def run(ctx: ExperimentContext | None = None) -> ExperimentResult:
    ctx = ctx or ExperimentContext()
    ctx.ensure(design_points(ctx))
    headers = ["design point", "exec time", "energy", "area"]
    rows: list[list[object]] = []
    summary: dict[str, float] = {}
    base_config = ctx.model.baseline_config()
    for label, overrides in VARIANTS:
        config = _variant_config(ctx, overrides)
        time_ratios = []
        energy_ratios = []
        area_ratio = 0.0
        for name in ctx.benchmarks:
            base_result = ctx.run(name, base_config)
            base_power = evaluate_power(base_result, base_config)
            result = ctx.run(name, config)
            power = evaluate_power(result, config)
            time_ratios.append(result.cycles / base_result.cycles)
            energy_ratios.append(power.energy_nj / base_power.energy_nj)
            area_ratio = power.area_mm2 / base_power.area_mm2
        mean_time = sum(time_ratios) / len(time_ratios)
        mean_energy = sum(energy_ratios) / len(energy_ratios)
        rows.append([label, mean_time, mean_energy, area_ratio])
        key = label.replace("cpc=8, ", "").replace(" ", "_").replace(",", "")
        summary[f"time_{key}"] = mean_time
        summary[f"energy_{key}"] = mean_energy
        summary[f"area_{key}"] = area_ratio
    rendered = format_table(headers, rows)
    best = rows[1]  # 4 LB + double bus: the paper's chosen design
    rendered += (
        f"\nchosen design (4 LB + double bus): time {best[1]:.3f}, "
        f"energy {best[2]:.3f} (paper: ~0.95), area {best[3]:.3f} "
        f"(paper: ~0.89)"
    )
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=headers,
        rows=rows,
        rendered=rendered,
        summary=summary,
    )
    result = attach_seed_intervals(
        ctx, run, result, ('time_4_LB_double_bus', 'energy_4_LB_double_bus')
    )
    return attach_sampling_errors(ctx, result, design_points(ctx))
