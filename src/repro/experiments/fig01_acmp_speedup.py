"""Fig. 1: ACMP vs symmetric-CMP speedup — analytic model and simulation.

Two complementary views of the paper's motivation figure:

* **Analytic (Hill-Marty)**: 16 BCE budget; 4-big-core symmetric CMP vs
  16-small-core symmetric CMP vs 1-big + 12-small ACMP, as the serial
  code fraction varies. Shape check: the ACMP wins for serial fractions
  above ~2 %.
* **Simulated (cross-machine)**: the same workloads run on two
  registered machine models through the campaign layer — the paper's
  ACMP baseline (1 big master + 8 lean workers,
  :mod:`repro.acmp`) against a symmetric CMP of nine uniform lean
  cores (:mod:`repro.scmp`) at matched parallel width. The equal-area
  normalisation follows Hill-Marty ``perf(r) = sqrt(r)``: the big
  master spends 4 BCE for 2x the lean serial IPC, so the symmetric
  machine replays serial phases at half rate
  (``serial_ipc_scale = 0.5``) and is granted the freed ~3 BCE as
  doubled per-core I-caches (64 KB vs 32 KB) — a normalisation that
  favours the symmetric side. Per-benchmark speedup =
  symmetric-CMP cycles / ACMP cycles: benchmarks with a real serial
  fraction should favour the ACMP, reproducing Fig. 1's claim in
  simulation rather than only analytically.
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.experiments.common import ExperimentContext, ExperimentResult
from repro.machine.model import get_model
from repro.models.amdahl import acmp_crossover_fraction, figure1_series

EXPERIMENT_ID = "fig01"
TITLE = "ACMP speedup potential: Hill-Marty model + measured ACMP vs SCMP"

#: Matched parallel width: 9 threads on both machines.
_THREADS = 9
#: Equal-area normalisation: the symmetric machine trades the big
#: core's extra ~3 BCE for doubled per-core I-caches.
_SCMP_ICACHE_KB = 64


def _acmp_config(ctx: ExperimentContext):
    return get_model("acmp").baseline_config()


def _scmp_config(ctx: ExperimentContext):
    symmetric = ctx.machine if ctx.machine != "acmp" else "scmp"
    return get_model(symmetric).baseline_config(
        core_count=_THREADS, icache_bytes=_SCMP_ICACHE_KB * 1024
    )


def design_points(ctx: ExperimentContext) -> list[tuple[str, object]]:
    """Every (benchmark, config) pair the simulated comparison needs."""
    return [
        (name, config)
        for name in ctx.benchmarks
        for config in (_acmp_config(ctx), _scmp_config(ctx))
    ]


def run(ctx: ExperimentContext | None = None) -> ExperimentResult:
    ctx = ctx or ExperimentContext()
    # -- analytic Hill-Marty curves (the paper's actual figure) ----------
    points = figure1_series()
    headers = [
        "serial %",
        "symmetric 4x big",
        "symmetric 16x small",
        "ACMP 1 big + 12 small",
    ]
    rows: list[list[object]] = []
    for point in points:
        rows.append(
            [
                f"{point.serial_fraction * 100:.0f}",
                point.symmetric_big,
                point.symmetric_small,
                point.asymmetric,
            ]
        )
    crossover = acmp_crossover_fraction()
    rendered = format_table(headers, rows)
    rendered += (
        f"\nACMP outperforms both symmetric designs above "
        f"{crossover * 100:.1f}% serial code (paper: ~2%)"
    )

    # -- simulated cross-machine comparison ------------------------------
    ctx.ensure(design_points(ctx))
    measured_headers = ["benchmark", "ACMP cycles", "SCMP cycles", "speedup"]
    measured_rows: list[list[object]] = []
    speedups: list[float] = []
    acmp_wins = 0
    for name in ctx.benchmarks:
        acmp = ctx.run(name, _acmp_config(ctx))
        scmp = ctx.run(name, _scmp_config(ctx))
        speedup = scmp.cycles / acmp.cycles
        speedups.append(speedup)
        if speedup > 1.0:
            acmp_wins += 1
        measured_rows.append([name, acmp.cycles, scmp.cycles, speedup])
    amean = sum(speedups) / len(speedups)
    measured = format_table(measured_headers, measured_rows)
    rendered += (
        f"\n\nmeasured: ACMP ({_acmp_config(ctx).label()}) vs symmetric CMP "
        f"({_scmp_config(ctx).label()}), equal-area normalisation\n"
        f"{measured}\n"
        f"ACMP faster on {acmp_wins}/{len(speedups)} benchmarks; "
        f"amean speedup {amean:.3f} (serial phases drive the gap)"
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=headers,
        rows=rows,
        rendered=rendered,
        summary={
            "crossover_percent": crossover * 100,
            "acmp_speedup_at_10pct": next(
                p.asymmetric for p in points if abs(p.serial_fraction - 0.10) < 1e-9
            ),
            "measured_speedup_amean": amean,
            "acmp_win_fraction": acmp_wins / len(speedups),
        },
    )
