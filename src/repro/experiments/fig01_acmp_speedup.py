"""Fig. 1: potential speedup of CMP designs vs serial code fraction.

Analytic Hill-Marty model: 16 BCE budget; 4-big-core symmetric CMP vs
16-small-core symmetric CMP vs 1-big + 12-small ACMP. Shape check: the
ACMP wins for serial fractions above ~2 %.
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.experiments.common import ExperimentContext, ExperimentResult
from repro.models.amdahl import acmp_crossover_fraction, figure1_series

EXPERIMENT_ID = "fig01"
TITLE = "ACMP speedup potential vs serial code fraction (Hill-Marty, 16 BCE)"


def run(ctx: ExperimentContext | None = None) -> ExperimentResult:
    points = figure1_series()
    headers = [
        "serial %",
        "symmetric 4x big",
        "symmetric 16x small",
        "ACMP 1 big + 12 small",
    ]
    rows: list[list[object]] = []
    for point in points:
        rows.append(
            [
                f"{point.serial_fraction * 100:.0f}",
                point.symmetric_big,
                point.symmetric_small,
                point.asymmetric,
            ]
        )
    crossover = acmp_crossover_fraction()
    rendered = format_table(headers, rows)
    rendered += (
        f"\nACMP outperforms both symmetric designs above "
        f"{crossover * 100:.1f}% serial code (paper: ~2%)"
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=headers,
        rows=rows,
        rendered=rendered,
        summary={
            "crossover_percent": crossover * 100,
            "acmp_speedup_at_10pct": next(
                p.asymmetric for p in points if abs(p.serial_fraction - 0.10) < 1e-9
            ),
        },
    )
