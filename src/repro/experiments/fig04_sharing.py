"""Fig. 4: instruction sharing across threads (parallel sections only).

Static (footprint) and dynamic (execution-weighted) sharing across the
threads of an 8-worker run. Shape check: ~99 % dynamic sharing on average.
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.analysis.sharing import sharing_profile
from repro.experiments.common import ExperimentContext, ExperimentResult

EXPERIMENT_ID = "fig04"
TITLE = "Instruction sharing across threads [%] (parallel sections)"


def run(ctx: ExperimentContext | None = None) -> ExperimentResult:
    ctx = ctx or ExperimentContext()
    headers = ["benchmark", "static %", "dynamic %"]
    rows: list[list[object]] = []
    dynamic_values = []
    for name in ctx.benchmarks:
        traces = ctx.traces_for(name)
        profile = sharing_profile(traces)
        rows.append(
            [name, profile.static_sharing * 100, profile.dynamic_sharing * 100]
        )
        dynamic_values.append(profile.dynamic_sharing)
    mean_dynamic = sum(dynamic_values) / len(dynamic_values)
    rendered = format_table(headers, rows, float_format="{:.1f}")
    rendered += (
        f"\nmean dynamic sharing = {mean_dynamic * 100:.1f}% (paper: ~99%)"
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=headers,
        rows=rows,
        rendered=rendered,
        summary={"mean_dynamic_sharing_percent": mean_dynamic * 100},
    )
