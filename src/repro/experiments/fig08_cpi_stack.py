"""Fig. 8: normalized CPI stack per benchmark at the highest sharing level.

Worker-core CPI breakdown for the cpc = 8 naive-sharing configuration
(32 KB shared, 4 line buffers, single bus), normalised to the baseline
run's CPI. Shape check: the added components are dominated by I-bus
latency/congestion, not by I-cache misses or branch mispredictions.

Machine-parametric: the sweep is built from the context's machine model
(``--machine``), so the same figure characterises naive sharing on the
ACMP's worker cluster or on a symmetric CMP's banked front-ends.
"""

from __future__ import annotations

from repro.analysis.report import format_stacked_bars, format_table
from repro.experiments.common import (
    ExperimentContext,
    ExperimentResult,
    attach_sampling_errors,
    attach_seed_intervals,
)

EXPERIMENT_ID = "fig08"
TITLE = "Normalized worker CPI stack at cpc=8 (single bus)"

COMPONENTS = (
    "base",
    "ibus_latency",
    "ibus_congestion",
    "icache_latency",
    "branch",
    "memory",
    "sync",
    "other",
)
SYMBOLS = {
    "base": "#",
    "ibus_latency": "L",
    "ibus_congestion": "C",
    "icache_latency": "$",
    "branch": "B",
    "memory": "M",
    "sync": "s",
    "other": ".",
}


def design_points(ctx: ExperimentContext) -> list[tuple[str, object]]:
    """Every (benchmark, config) pair this figure needs."""
    configs = [
        ctx.model.baseline_config(),
        ctx.model.shared_config(
            cores_per_cache=8, icache_kb=32, bus_count=1, line_buffers=4
        ),
    ]
    return [(name, config) for name in ctx.benchmarks for config in configs]


def run(ctx: ExperimentContext | None = None) -> ExperimentResult:
    ctx = ctx or ExperimentContext()
    ctx.ensure(design_points(ctx))
    headers = ["benchmark"] + list(COMPONENTS)
    rows: list[list[object]] = []
    stacks: dict[str, dict[str, float]] = {}
    bus_dominated = 0
    for name in ctx.benchmarks:
        base = ctx.run(name, ctx.model.baseline_config())
        shared = ctx.run(
            name,
            ctx.model.shared_config(
                cores_per_cache=8, icache_kb=32, bus_count=1, line_buffers=4
            ),
        )
        base_stack = base.cpi_stack()
        base_cpi = sum(base_stack.values())
        stack = shared.cpi_stack()
        normalized = {
            component: stack.get(component, 0.0) / base_cpi
            for component in COMPONENTS
        }
        stacks[name] = normalized
        rows.append([name] + [normalized[c] for c in COMPONENTS])
        # The paper's observation concerns the *additional* stall cycles
        # sharing introduces over the baseline: most must come from the
        # I-bus, not from extra I-cache misses or branch behaviour.
        bus_added = (
            stack.get("ibus_latency", 0.0)
            + stack.get("ibus_congestion", 0.0)
            - base_stack.get("ibus_latency", 0.0)
            - base_stack.get("ibus_congestion", 0.0)
        )
        other_added = sum(
            stack.get(c, 0.0) - base_stack.get(c, 0.0)
            for c in ("icache_latency", "branch", "memory")
        )
        if bus_added >= max(other_added, 0.0):
            bus_dominated += 1
    rendered = format_table(headers, rows)
    rendered += "\n\n" + format_stacked_bars(stacks, COMPONENTS, SYMBOLS)
    rendered += (
        f"\nbenchmarks where added stalls are I-bus dominated: "
        f"{bus_dominated}/{len(ctx.benchmarks)} (paper: most)"
    )
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=headers,
        rows=rows,
        rendered=rendered,
        summary={"bus_dominated_count": float(bus_dominated)},
    )
    result = attach_seed_intervals(ctx, run, result, ('bus_dominated_count',))
    return attach_sampling_errors(ctx, result, design_points(ctx))
