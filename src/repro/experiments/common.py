"""Shared experiment harness.

Every figure/table of the paper has a driver in this package. Drivers
share an :class:`ExperimentContext` that memoises synthesised traces and
simulation runs, because several figures reuse the same design points
(e.g. the cpc=8 naive-sharing run feeds Figs. 7, 8 and 11).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.acmp.config import AcmpConfig
from repro.acmp.results import SimulationResult
from repro.acmp.simulator import simulate
from repro.trace.stream import TraceSet
from repro.trace.synthesis import synthesize
from repro.workloads.suites import ALL_BENCHMARKS, get_benchmark


@dataclass
class ExperimentContext:
    """Run parameters plus trace/result memoisation.

    Attributes:
        scale: per-thread instruction budget multiplier (1.0 reproduces
            the calibrated defaults; smaller values trade resolution for
            speed in tests and benchmarks).
        benchmarks: the benchmark names to evaluate (defaults to all 24).
        seed: trace-synthesis seed.
    """

    scale: float = 1.0
    benchmarks: list[str] = field(
        default_factory=lambda: [model.name for model in ALL_BENCHMARKS]
    )
    seed: int = 0
    warm_l2: bool = True
    _traces: dict[str, TraceSet] = field(default_factory=dict, repr=False)
    _results: dict[tuple[str, str], SimulationResult] = field(
        default_factory=dict, repr=False
    )

    def traces_for(self, name: str) -> TraceSet:
        """Synthesise (and memoise) the 9-thread trace set for a benchmark."""
        if name not in self._traces:
            model = get_benchmark(name)
            self._traces[name] = synthesize(
                model, thread_count=9, scale=self.scale, seed=self.seed
            )
        return self._traces[name]

    def run(self, name: str, config: AcmpConfig) -> SimulationResult:
        """Simulate (and memoise) one benchmark on one design point."""
        key = (name, config.label())
        if key not in self._results:
            self._results[key] = simulate(
                config, self.traces_for(name), warm_l2=self.warm_l2
            )
        return self._results[key]


@dataclass
class ExperimentResult:
    """Uniform output of one experiment driver."""

    experiment_id: str
    title: str
    headers: list[str]
    rows: list[list[object]]
    rendered: str
    #: free-form numbers downstream assertions and EXPERIMENTS.md use
    summary: dict[str, float] = field(default_factory=dict)

    def __str__(self) -> str:
        return f"== {self.experiment_id}: {self.title} ==\n{self.rendered}"
