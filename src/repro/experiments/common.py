"""Shared experiment harness.

Every figure/table of the paper has a driver in this package. Drivers
share an :class:`ExperimentContext` that memoises synthesised traces and
simulation runs, because several figures reuse the same design points
(e.g. the cpc=8 naive-sharing run feeds Figs. 7, 8 and 11).

The context executes through the campaign layer
(:mod:`repro.campaign`): drivers declare their full design-point set up
front via :meth:`ExperimentContext.ensure`, which batches the missing
runs — across worker processes when ``jobs > 1`` — and consults the
persistent result store when ``cache_dir`` is set, so repeated
regenerations only simulate what they have never seen.

Design points may belong to any registered machine model
(:mod:`repro.machine.model`): each run's machine is derived from its
config's type, results are memoised per (machine, benchmark, label),
and :attr:`ExperimentContext.machine` names the model that
machine-parametric drivers (fig07-fig09) build their sweeps from.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.campaign.runner import ProgressHook, run_specs
from repro.campaign.spec import RunSpec
from repro.campaign.store import ResultStore
from repro.errors import ConfigurationError
from repro.machine.config import BaseMachineConfig
from repro.machine.model import MachineModel, get_model, model_for_config
from repro.machine.results import SimulationResult
from repro.trace.stream import TraceSet
from repro.utils.stats import mean_halfwidth95
from repro.workloads.suites import ALL_BENCHMARKS

@dataclass(frozen=True)
class MeanCI:
    """A sample mean with its two-sided 95 % confidence half-width."""

    mean: float
    half_width: float
    n: int

    def __str__(self) -> str:
        if self.n < 2:
            return f"{self.mean:.3f}"
        return f"{self.mean:.3f} ± {self.half_width:.3f}"


def mean_ci(values: Sequence[float]) -> MeanCI:
    """Mean ± 95 % CI (Student t) of independent samples.

    With one sample the half-width is 0 (no spread information) — the
    caller should treat it as a point estimate, not certainty.
    """
    samples = [float(value) for value in values]
    if not samples:
        raise ConfigurationError("mean_ci needs at least one sample")
    mean, half_width = mean_halfwidth95(samples)
    return MeanCI(mean=mean, half_width=half_width, n=len(samples))


@dataclass
class ExperimentContext:
    """Run parameters plus trace/result memoisation.

    Attributes:
        scale: per-thread instruction budget multiplier (1.0 reproduces
            the calibrated defaults; smaller values trade resolution for
            speed in tests and benchmarks).
        benchmarks: the benchmark names to evaluate (defaults to all 24).
        seed: trace-synthesis seed.
        jobs: worker processes for batched simulation (1 = in-process).
        cache_dir: directory of the persistent result store; None keeps
            results in memory only.
        cycle_skip: scheduled kernel (bit-identical results; off only
            for engine cross-checks).
        progress: optional per-completed-run callback for batched runs.
        seeds: additional trace-synthesis seeds forming a seed sweep
            with ``seed``; figure drivers then report per-design-point
            mean ± 95 % CI alongside the primary seed's tables.
        machine: registry name of the machine model that
            machine-parametric drivers (fig07-fig13) build their design
            points from; resolved through :mod:`repro.machine.model`.
            Drivers may still mix in configs of any other registered
            machine (fig01 compares two machines in one run) — the
            machine of each individual run is always derived from its
            config's type.
        sampling: interval-sampled simulation flavor — empty (full
            detailed runs), a mode name (``fast``/``precise``) or a
            plan spec (see :mod:`repro.sampling`). Sampled results are
            extrapolations with per-metric error estimates; figure
            drivers surface the aggregate error via
            :func:`attach_sampling_errors`, and the result store files
            sampled entries separately from full ones.
        checkpoints: warm-checkpoint policy for sampled runs executed
            against a result store — ``"on"`` (read and write the
            ``checkpoints/`` tree beside the store, the default),
            ``"off"``, or ``"refresh"`` (ignore existing entries but
            rewrite them). In-memory contexts (no ``cache_dir``) have
            nowhere durable to put the tree and warm from the trace.
        event_dir: read traces from this captured corpus (the layout
            ``python -m repro.trace capture`` writes) instead of
            synthesising; chunked sets stream in O(chunk) memory.
        capture_traces: persist every synthesized trace set into this
            corpus directory (chunked ``.trcz``) as a side effect.
    """

    scale: float = 1.0
    benchmarks: list[str] = field(
        default_factory=lambda: [model.name for model in ALL_BENCHMARKS]
    )
    seed: int = 0
    warm_l2: bool = True
    jobs: int = 1
    cache_dir: str | Path | None = None
    cycle_skip: bool = True
    progress: ProgressHook | None = None
    seeds: tuple[int, ...] = ()
    machine: str = "acmp"
    sampling: str = ""
    checkpoints: str = "on"
    event_dir: str | Path | None = None
    capture_traces: str | Path | None = None
    _traces: dict[str, TraceSet] = field(default_factory=dict, repr=False)
    _results: dict[tuple[str, str, str], SimulationResult] = field(
        default_factory=dict, repr=False
    )
    _digests: dict[tuple[str, str, str], str] = field(
        default_factory=dict, repr=False
    )
    _store: ResultStore | None = field(default=None, repr=False)
    _seed_contexts: dict[int, "ExperimentContext"] = field(
        default_factory=dict, repr=False
    )

    def __post_init__(self) -> None:
        if self.cache_dir is not None:
            self._store = ResultStore(self.cache_dir)
        get_model(self.machine)  # fail fast on unknown machine names
        if self.checkpoints not in ("on", "off", "refresh"):
            raise ConfigurationError(
                f"unknown checkpoint mode {self.checkpoints!r}: expected "
                f"one of 'on', 'off', 'refresh'"
            )
        if self.sampling:
            from repro.sampling import resolve_plan

            plan = resolve_plan(self.sampling)  # fail fast on bad specs
            self.sampling = plan.spec() if plan is not None else ""

    @property
    def model(self) -> MachineModel:
        """The machine model machine-parametric drivers build configs from."""
        return get_model(self.machine)

    # -- seed sweeps ---------------------------------------------------------

    @property
    def seed_sweep(self) -> tuple[int, ...]:
        """Every seed of the sweep, primary first, duplicates dropped."""
        ordered: list[int] = []
        for seed in (self.seed, *self.seeds):
            if seed not in ordered:
                ordered.append(seed)
        return tuple(ordered)

    def for_seed(self, seed: int) -> ExperimentContext:
        """A context pinned to one seed (memoised; shares the store).

        The clone has no extra seeds, so drivers running under it do
        not recurse into another sweep.
        """
        pinned = self._seed_contexts.get(seed)
        if pinned is None:
            pinned = ExperimentContext(
                scale=self.scale,
                benchmarks=list(self.benchmarks),
                seed=seed,
                warm_l2=self.warm_l2,
                jobs=self.jobs,
                cache_dir=self.cache_dir,
                cycle_skip=self.cycle_skip,
                progress=self.progress,
                machine=self.machine,
                sampling=self.sampling,
                checkpoints=self.checkpoints,
                event_dir=self.event_dir,
                capture_traces=self.capture_traces,
            )
            self._seed_contexts[seed] = pinned
        return pinned

    def seed_intervals(
        self,
        driver: Callable[[ExperimentContext], "ExperimentResult"],
        keys: Sequence[str],
        primary_summary: dict[str, float] | None = None,
    ) -> dict[str, MeanCI] | None:
        """Per-design-point statistics of a driver across the seed sweep.

        Runs ``driver`` once per non-primary seed (each under a pinned
        single-seed context, so results batch and cache exactly like
        primary runs) and aggregates the requested ``summary`` scalars
        into mean ± 95 % CI. The primary seed's sample comes from
        ``primary_summary`` when given — the caller already computed it
        — instead of re-simulating the whole figure for that seed.
        Returns None for single-seed contexts.
        """
        sweep = self.seed_sweep
        if len(sweep) < 2:
            return None
        samples: dict[str, list[float]] = {key: [] for key in keys}
        for seed in sweep:
            if seed == self.seed and primary_summary is not None:
                summary = primary_summary
            else:
                summary = driver(self.for_seed(seed)).summary
            for key in keys:
                samples[key].append(float(summary[key]))
        return {key: mean_ci(values) for key, values in samples.items()}

    def traces_for(self, name: str, thread_count: int = 9) -> TraceSet:
        """Synthesise (and memoise) a benchmark's trace set.

        Defaults to the paper's 9 threads (1 master + 8 workers); runs
        for other core counts synthesise their own matching set, the
        same rule the campaign workers apply.
        """
        key = name if thread_count == 9 else f"{name}@{thread_count}"
        if key not in self._traces:
            self._traces[key] = self.trace_provider().trace_set(
                name, thread_count=thread_count, scale=self.scale, seed=self.seed
            )
        return self._traces[key]

    def trace_provider(self):
        """The trace source this context implies (see :mod:`repro.trace`).

        ``event_dir`` streams captured sets from disk; otherwise the
        in-process synthesiser, capturing each set to ``capture_traces``
        when that is set. Both CLI flavors and the in-process path
        resolve traces through the same provider, so results cannot
        depend on the execution mode.
        """
        from repro.trace.provider import provider_for

        return provider_for(self.event_dir, self.capture_traces)

    def spec_for(self, name: str, config: BaseMachineConfig) -> RunSpec:
        """The campaign work unit for one benchmark on one design point.

        The machine model is derived from the config's type through the
        registry (by :class:`RunSpec` itself), so drivers can mix
        machines in one context.
        """
        return RunSpec(
            benchmark=name,
            config=config,
            seed=self.seed,
            scale=self.scale,
            warm_l2=self.warm_l2,
            cycle_skip=self.cycle_skip,
            sampling=self.sampling,
        )

    def ensure(self, pairs: Iterable[tuple[str, BaseMachineConfig]]) -> None:
        """Simulate every missing (benchmark, design point) pair.

        Drivers call this with their full design-point set before
        reading individual results, so the campaign runner can batch
        the outstanding work across ``jobs`` processes and the result
        store instead of simulating lazily one run at a time.
        """
        specs: list[RunSpec] = []
        seen: set[tuple[str, str, str]] = set()
        for name, config in pairs:
            spec = self.spec_for(name, config)
            key = (spec.machine, name, config.label())
            # Results are memoised by (machine, label): refuse two
            # different configurations behind one label rather than
            # serving whichever was simulated first.
            digest = spec.config_digest()
            known = self._digests.setdefault(key, digest)
            if known != digest:
                raise ConfigurationError(
                    f"two design points for benchmark {name!r} share the "
                    f"label {config.label()!r} but differ in "
                    f"configuration; give them distinguishable labels"
                )
            if key in self._results or key in seen:
                continue
            seen.add(key)
            specs.append(spec)
        if not specs:
            return
        if self.jobs <= 1 and self._store is None:
            # In-process path: reuse the memoised trace sets directly.
            # Trace shape follows the design point's core count, exactly
            # as campaign workers synthesise theirs, so results cannot
            # depend on the execution mode.
            from repro.sampling import simulate_sampled

            for spec in specs:
                key = (spec.machine, spec.benchmark, spec.config.label())
                # simulate_sampled with a None plan is plain full
                # simulation, so one call covers both flavors.
                self._results[key] = simulate_sampled(
                    spec.config,
                    self.traces_for(
                        spec.benchmark, thread_count=spec.config.core_count
                    ),
                    spec.sampling_plan(),
                    warm_l2=self.warm_l2,
                    cycle_skip=self.cycle_skip,
                )
            return
        report = run_specs(
            specs,
            jobs=self.jobs,
            store=self._store,
            progress=self.progress,
            name="experiments",
            checkpoints=self.checkpoints,
            event_dir=str(self.event_dir) if self.event_dir else None,
            capture_dir=str(self.capture_traces) if self.capture_traces else None,
        )
        for (machine, benchmark, label, _seed, _scale), result in report.results.items():
            self._results[(machine, benchmark, label)] = result

    def run(self, name: str, config: BaseMachineConfig) -> SimulationResult:
        """Simulate (and memoise) one benchmark on one design point."""
        # Always route through ensure: on a memo hit it only performs
        # the label/digest consistency check.
        self.ensure([(name, config)])
        machine = model_for_config(config).name
        return self._results[(machine, name, config.label())]


@dataclass
class ExperimentResult:
    """Uniform output of one experiment driver."""

    experiment_id: str
    title: str
    headers: list[str]
    rows: list[list[object]]
    rendered: str
    #: free-form numbers downstream assertions and EXPERIMENTS.md use
    summary: dict[str, float] = field(default_factory=dict)

    def __str__(self) -> str:
        return f"== {self.experiment_id}: {self.title} ==\n{self.rendered}"


def attach_seed_intervals(
    ctx: ExperimentContext,
    driver: Callable[[ExperimentContext], ExperimentResult],
    result: ExperimentResult,
    keys: Sequence[str],
) -> ExperimentResult:
    """Surface seed-sweep mean ± 95 % CI in a driver's table output.

    When the context sweeps several seeds, re-evaluates the driver's
    headline ``summary`` scalars per seed and appends the aggregate
    interval to the rendered table; ``summary`` gains ``<key>_ci95``
    (the half-width) and ``seed_count``, which EXPERIMENTS.md renders
    next to the shape checks. No-op for single-seed contexts, so tests
    and default CLI runs are unchanged.
    """
    intervals = ctx.seed_intervals(driver, keys, primary_summary=result.summary)
    if not intervals:
        return result
    lines = [
        f"seed sweep, n={len(ctx.seed_sweep)} "
        f"(seeds {', '.join(str(s) for s in ctx.seed_sweep)}; mean ± 95% CI):"
    ]
    for key, interval in intervals.items():
        result.summary[f"{key}_ci95"] = interval.half_width
        result.summary[key] = interval.mean
        lines.append(f"  {key} = {interval}")
    result.summary["seed_count"] = float(len(ctx.seed_sweep))
    result.rendered += "\n" + "\n".join(lines)
    return result


def attach_sampling_errors(
    ctx: ExperimentContext,
    result: ExperimentResult,
    pairs: Iterable[tuple[str, BaseMachineConfig]] | None = None,
) -> ExperimentResult:
    """Surface sampled-simulation error bars in a driver's output.

    When the context runs in sampled mode, every simulation result the
    driver consumed carries per-metric relative sampling-error
    estimates (95 % CI of the across-interval spread). This aggregates
    the worst case over the figure's own runs — ``pairs`` names them,
    exactly the ``design_points(ctx)`` list the driver passed to
    :meth:`ExperimentContext.ensure` — and appends it to the rendered
    table; ``summary`` gains ``sampling_err_<metric>`` keys and
    ``sampling_coverage``. Without ``pairs`` every run the (possibly
    figure-spanning) context has seen is aggregated. No-op for
    unsampled contexts, so tests and default CLI runs are unchanged.
    """
    if not ctx.sampling:
        return result
    if pairs is None:
        run_results = list(ctx._results.values())
    else:
        wanted = {
            (model_for_config(config).name, name, config.label())
            for name, config in pairs
        }
        run_results = [
            run_result
            for key, run_result in ctx._results.items()
            if key in wanted
        ]
    estimates: dict[str, list[float]] = {}
    metrics: set[str] = set()
    coverages: set[float] = set()
    sampled_runs = 0
    for run_result in run_results:
        info = run_result.sampling
        if not info:
            continue
        sampled_runs += 1
        if info.get("coverage") is not None:
            coverages.add(float(info["coverage"]))
        for metric, relative in (info.get("errors") or {}).items():
            metrics.add(metric)
            if relative is not None:
                estimates.setdefault(metric, []).append(float(relative))
    if not sampled_runs:
        return result
    # Runs of one figure can mix effective coverages (a trace too small
    # to slice runs exact at 1.0); report the range, not an arbitrary
    # iteration-order survivor.
    if not coverages:
        coverage_text = "?"
        coverage = None
    elif len(coverages) == 1:
        coverage = coverages.pop()
        coverage_text = f"{coverage}"
    else:
        coverage = min(coverages)
        coverage_text = f"{coverage}..{max(coverages)}"
    parts = []
    for metric in sorted(metrics):
        values = estimates.get(metric)
        if values:
            worst = max(values)
            parts.append(f"{metric} ±{worst:.1%} ({len(values)} runs)")
            result.summary[f"sampling_err_{metric}"] = worst
        else:
            # Too few measured intervals (or a near-zero metric) on
            # every run: no spread information to report.
            parts.append(f"{metric} n/a")
    result.rendered += (
        f"\nsampled mode {ctx.sampling} (coverage {coverage_text}, "
        f"{sampled_runs} runs): every value is an extrapolation; "
        f"worst-case 95% sampling error — "
        f"{', '.join(parts) if parts else 'n/a'}"
    )
    if coverage is not None:
        result.summary["sampling_coverage"] = float(coverage)
    return result
