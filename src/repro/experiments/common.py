"""Shared experiment harness.

Every figure/table of the paper has a driver in this package. Drivers
share an :class:`ExperimentContext` that memoises synthesised traces and
simulation runs, because several figures reuse the same design points
(e.g. the cpc=8 naive-sharing run feeds Figs. 7, 8 and 11).

The context executes through the campaign layer
(:mod:`repro.campaign`): drivers declare their full design-point set up
front via :meth:`ExperimentContext.ensure`, which batches the missing
runs — across worker processes when ``jobs > 1`` — and consults the
persistent result store when ``cache_dir`` is set, so repeated
regenerations only simulate what they have never seen.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field
from pathlib import Path

from repro.acmp.config import AcmpConfig
from repro.acmp.results import SimulationResult
from repro.acmp.simulator import simulate
from repro.campaign.runner import ProgressHook, run_specs
from repro.campaign.spec import RunSpec
from repro.campaign.store import ResultStore
from repro.errors import ConfigurationError
from repro.trace.stream import TraceSet
from repro.trace.synthesis import synthesize
from repro.workloads.suites import ALL_BENCHMARKS, get_benchmark


@dataclass
class ExperimentContext:
    """Run parameters plus trace/result memoisation.

    Attributes:
        scale: per-thread instruction budget multiplier (1.0 reproduces
            the calibrated defaults; smaller values trade resolution for
            speed in tests and benchmarks).
        benchmarks: the benchmark names to evaluate (defaults to all 24).
        seed: trace-synthesis seed.
        jobs: worker processes for batched simulation (1 = in-process).
        cache_dir: directory of the persistent result store; None keeps
            results in memory only.
        cycle_skip: kernel fast path (bit-identical results; off only
            for engine cross-checks).
        progress: optional per-completed-run callback for batched runs.
    """

    scale: float = 1.0
    benchmarks: list[str] = field(
        default_factory=lambda: [model.name for model in ALL_BENCHMARKS]
    )
    seed: int = 0
    warm_l2: bool = True
    jobs: int = 1
    cache_dir: str | Path | None = None
    cycle_skip: bool = True
    progress: ProgressHook | None = None
    _traces: dict[str, TraceSet] = field(default_factory=dict, repr=False)
    _results: dict[tuple[str, str], SimulationResult] = field(
        default_factory=dict, repr=False
    )
    _digests: dict[tuple[str, str], str] = field(
        default_factory=dict, repr=False
    )
    _store: ResultStore | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.cache_dir is not None:
            self._store = ResultStore(self.cache_dir)

    def traces_for(self, name: str, thread_count: int = 9) -> TraceSet:
        """Synthesise (and memoise) a benchmark's trace set.

        Defaults to the paper's 9 threads (1 master + 8 workers); runs
        for other core counts synthesise their own matching set, the
        same rule the campaign workers apply.
        """
        key = name if thread_count == 9 else f"{name}@{thread_count}"
        if key not in self._traces:
            model = get_benchmark(name)
            self._traces[key] = synthesize(
                model, thread_count=thread_count, scale=self.scale, seed=self.seed
            )
        return self._traces[key]

    def spec_for(self, name: str, config: AcmpConfig) -> RunSpec:
        """The campaign work unit for one benchmark on one design point."""
        return RunSpec(
            benchmark=name,
            config=config,
            seed=self.seed,
            scale=self.scale,
            warm_l2=self.warm_l2,
            cycle_skip=self.cycle_skip,
        )

    def ensure(self, pairs: Iterable[tuple[str, AcmpConfig]]) -> None:
        """Simulate every missing (benchmark, design point) pair.

        Drivers call this with their full design-point set before
        reading individual results, so the campaign runner can batch
        the outstanding work across ``jobs`` processes and the result
        store instead of simulating lazily one run at a time.
        """
        specs: list[RunSpec] = []
        seen: set[tuple[str, str]] = set()
        for name, config in pairs:
            key = (name, config.label())
            spec = self.spec_for(name, config)
            # Results are memoised by label: refuse two different
            # machines behind one label rather than serving whichever
            # was simulated first.
            digest = spec.config_digest()
            known = self._digests.setdefault(key, digest)
            if known != digest:
                raise ConfigurationError(
                    f"two design points for benchmark {name!r} share the "
                    f"label {config.label()!r} but differ in "
                    f"configuration; give them distinguishable labels"
                )
            if key in self._results or key in seen:
                continue
            seen.add(key)
            specs.append(spec)
        if not specs:
            return
        if self.jobs <= 1 and self._store is None:
            # In-process path: reuse the memoised trace sets directly.
            # Trace shape follows the design point's core count, exactly
            # as campaign workers synthesise theirs, so results cannot
            # depend on the execution mode.
            for spec in specs:
                self._results[(spec.benchmark, spec.config.label())] = simulate(
                    spec.config,
                    self.traces_for(
                        spec.benchmark, thread_count=spec.config.core_count
                    ),
                    warm_l2=self.warm_l2,
                    cycle_skip=self.cycle_skip,
                )
            return
        report = run_specs(
            specs,
            jobs=self.jobs,
            store=self._store,
            progress=self.progress,
            name="experiments",
        )
        for (benchmark, label, _seed, _scale), result in report.results.items():
            self._results[(benchmark, label)] = result

    def run(self, name: str, config: AcmpConfig) -> SimulationResult:
        """Simulate (and memoise) one benchmark on one design point."""
        # Always route through ensure: on a memo hit it only performs
        # the label/digest consistency check.
        self.ensure([(name, config)])
        return self._results[(name, config.label())]


@dataclass
class ExperimentResult:
    """Uniform output of one experiment driver."""

    experiment_id: str
    title: str
    headers: list[str]
    rows: list[list[object]]
    rendered: str
    #: free-form numbers downstream assertions and EXPERIMENTS.md use
    summary: dict[str, float] = field(default_factory=dict)

    def __str__(self) -> str:
        return f"== {self.experiment_id}: {self.title} ==\n{self.rendered}"
