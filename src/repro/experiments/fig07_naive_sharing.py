"""Fig. 7: naive I-cache sharing — execution time for cpc in {2, 4, 8}.

A 32 KB I-cache shared among worker cores with four line buffers and a
single bus, normalised to the private-I-cache baseline. Shape checks:
slowdown grows with the sharing degree; the worst benchmark (UA in the
paper, +18 %) degrades markedly at cpc = 8 while most codes stay near 1.0.

Machine-parametric: the sweep is built from the context's machine model
(``--machine``), so the same figure measures naive sharing on the
ACMP's worker cluster or per-core-vs-banked front-ends on a symmetric
CMP.
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.experiments.common import (
    ExperimentContext,
    ExperimentResult,
    attach_sampling_errors,
    attach_seed_intervals,
)

EXPERIMENT_ID = "fig07"
TITLE = "Naive sharing: normalized execution time (32KB shared, 4 LB, single bus)"

CPC_LEVELS = (2, 4, 8)


def design_points(ctx: ExperimentContext) -> list[tuple[str, object]]:
    """Every (benchmark, config) pair this figure needs."""
    configs = [ctx.model.baseline_config()] + [
        ctx.model.shared_config(
            cores_per_cache=cpc, icache_kb=32, bus_count=1, line_buffers=4
        )
        for cpc in CPC_LEVELS
    ]
    return [(name, config) for name in ctx.benchmarks for config in configs]


def run(ctx: ExperimentContext | None = None) -> ExperimentResult:
    ctx = ctx or ExperimentContext()
    ctx.ensure(design_points(ctx))
    headers = ["benchmark"] + [f"cpc={cpc}" for cpc in CPC_LEVELS]
    rows: list[list[object]] = []
    worst: tuple[str, float] = ("", 0.0)
    means = {cpc: [] for cpc in CPC_LEVELS}
    for name in ctx.benchmarks:
        base = ctx.run(name, ctx.model.baseline_config())
        row: list[object] = [name]
        for cpc in CPC_LEVELS:
            config = ctx.model.shared_config(
                cores_per_cache=cpc, icache_kb=32, bus_count=1, line_buffers=4
            )
            shared = ctx.run(name, config)
            ratio = shared.cycles / base.cycles
            row.append(ratio)
            means[cpc].append(ratio)
            if cpc == 8 and ratio > worst[1]:
                worst = (name, ratio)
        rows.append(row)
    rows.append(
        ["amean"] + [sum(means[cpc]) / len(means[cpc]) for cpc in CPC_LEVELS]
    )
    rendered = format_table(headers, rows)
    rendered += (
        f"\nworst cpc=8 slowdown: {worst[0]} at {worst[1]:.3f} "
        f"(paper: UA at ~1.18)"
    )
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=headers,
        rows=rows,
        rendered=rendered,
        summary={
            "worst_cpc8_ratio": worst[1],
            "mean_cpc8_ratio": sum(means[8]) / len(means[8]),
            "mean_cpc2_ratio": sum(means[2]) / len(means[2]),
        },
    )
    result = attach_seed_intervals(
        ctx, run, result, ('mean_cpc8_ratio', 'mean_cpc2_ratio', 'worst_cpc8_ratio')
    )
    return attach_sampling_errors(ctx, result, design_points(ctx))
