"""Fig. 13: sharing the I-cache with the master core (Section VI-E).

Compares the all-shared design (master + workers behind one 32 KB shared
I-cache, double bus) against the worker-shared design (same cache shared
only by workers, master private), as a function of each benchmark's serial
code fraction. Shape checks: the time ratio grows with the serial
fraction (~1 % degradation per 5 % serial code); benchmarks with high
serial code locality (CoMD) or long serial basic blocks (nab, CoEVP)
resist the trend; with only a single bus, the bus-saturated codes
(EP, FT, UA) degrade further (Group 3).

Machine-parametric: the sweep is built from the context's machine model
(``--machine``). On machines without a private master front-end (the
symmetric CMP), ``all_shared_config`` coincides with the fully-banked
``shared_config``, so the ratios are 1.0 by construction — the figure
then simply confirms that no master-sharing penalty exists to measure.
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.experiments.common import (
    ExperimentContext,
    ExperimentResult,
    attach_sampling_errors,
    attach_seed_intervals,
)
from repro.workloads.suites import get_benchmark

EXPERIMENT_ID = "fig13"
TITLE = "All-shared vs worker-shared execution time ratio vs serial fraction"

GROUP3_CODES = ("EP", "FT", "UA")


def design_points(ctx: ExperimentContext) -> list[tuple[str, object]]:
    """Every (benchmark, config) pair this figure needs."""
    configs = [
        ctx.model.shared_config(
            cores_per_cache=8, icache_kb=32, bus_count=2, line_buffers=4
        ),
        ctx.model.all_shared_config(icache_kb=32, bus_count=2),
        ctx.model.all_shared_config(icache_kb=32, bus_count=1),
        ctx.model.shared_config(
            cores_per_cache=8, icache_kb=32, bus_count=1, line_buffers=4
        ),
    ]
    return [(name, config) for name in ctx.benchmarks for config in configs]


def run(ctx: ExperimentContext | None = None) -> ExperimentResult:
    ctx = ctx or ExperimentContext()
    ctx.ensure(design_points(ctx))
    headers = [
        "benchmark",
        "serial %",
        "ratio (double bus)",
        "ratio (single bus)",
    ]
    rows: list[list[object]] = []
    by_serial: list[tuple[float, float]] = []
    group3_single: list[float] = []
    for name in ctx.benchmarks:
        model = get_benchmark(name)
        worker_shared = ctx.run(
            name,
            ctx.model.shared_config(
                cores_per_cache=8, icache_kb=32, bus_count=2, line_buffers=4
            ),
        )
        all_shared_double = ctx.run(
            name, ctx.model.all_shared_config(icache_kb=32, bus_count=2)
        )
        all_shared_single = ctx.run(
            name, ctx.model.all_shared_config(icache_kb=32, bus_count=1)
        )
        worker_single = ctx.run(
            name,
            ctx.model.shared_config(
                cores_per_cache=8, icache_kb=32, bus_count=1, line_buffers=4
            ),
        )
        ratio_double = all_shared_double.cycles / worker_shared.cycles
        ratio_single = all_shared_single.cycles / worker_single.cycles
        serial_pct = model.serial_fraction * 100
        rows.append([name, serial_pct, ratio_double, ratio_single])
        by_serial.append((serial_pct, ratio_double))
        if name in GROUP3_CODES:
            group3_single.append(ratio_single)
    rows.sort(key=lambda row: row[1])
    rendered = format_table(headers, rows)

    # Degradation trend: compare low-serial vs high-serial halves.
    # A single-benchmark run has no halves to compare: both means
    # collapse to that one ratio (trend delta 0) instead of dividing
    # by zero.
    by_serial.sort()
    half = len(by_serial) // 2
    if half:
        low_mean = sum(r for _, r in by_serial[:half]) / half
        high_mean = sum(r for _, r in by_serial[half:]) / (
            len(by_serial) - half
        )
    else:
        low_mean = high_mean = by_serial[0][1]
    mean_group3 = (
        sum(group3_single) / len(group3_single) if group3_single else 0.0
    )
    rendered += (
        f"\nmean ratio, low-serial half: {low_mean:.3f}; high-serial half: "
        f"{high_mean:.3f} (paper: degradation grows with serial fraction)"
        f"\nGroup 3 (EP/FT/UA) mean ratio with single bus: {mean_group3:.3f} "
        f"(paper: > 1 due to bus congestion in parallel code)"
    )
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=headers,
        rows=rows,
        rendered=rendered,
        summary={
            "low_serial_mean_ratio": low_mean,
            "high_serial_mean_ratio": high_mean,
            "trend_delta": high_mean - low_mean,
            "group3_single_bus_mean_ratio": mean_group3,
        },
    )
    result = attach_seed_intervals(
        ctx, run, result, ('trend_delta', 'group3_single_bus_mean_ratio')
    )
    return attach_sampling_errors(ctx, result, design_points(ctx))
