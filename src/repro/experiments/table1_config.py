"""Table I: configuration parameters of the simulated ACMP.

Prints the configuration table and verifies the library defaults match the
paper's values.
"""

from __future__ import annotations

from repro.acmp.config import AcmpConfig
from repro.analysis.report import format_table
from repro.experiments.common import ExperimentContext, ExperimentResult

EXPERIMENT_ID = "table1"
TITLE = "Configuration parameters for the simulated ACMP (Table I)"


def run(ctx: ExperimentContext | None = None) -> ExperimentResult:
    config = AcmpConfig()
    headers = ["parameter", "value", "paper value"]
    rows: list[list[object]] = [
        ["ACMP", f"1 master + {config.worker_count} workers", "1 master + 8 workers"],
        ["cores-per-cache (cpc)", "[1, 2, 4, 8]", "[1, 2, 4, 8]"],
        [
            "I-cache",
            f"{config.worker_icache_bytes // 1024}KB, {config.icache_ways}-way, "
            f"{config.icache_latency} cycle, {config.icache_line_bytes}B lines",
            "32KB, 8-way, 1 cycle, 64B lines",
        ],
        ["line buffers", "[2, 4, 8], 64B wide", "[2, 4, 8], 64B wide"],
        [
            "I-interconnect",
            f"single/double bus, {config.bus_latency} cycles + contention, "
            f"{config.bus_width_bytes}B, {config.arbitration}",
            "single/double bus, 2 cycles + contention, 32B, round-robin",
        ],
        [
            "fetch predictor",
            f"{config.gshare_bytes // 1024}KB gshare + "
            f"{config.loop_predictor_entries}-entry loop predictor",
            "16KB gshare + 256-entry loop predictor",
        ],
        [
            "L2 cache",
            f"{config.l2_bytes // 1024 // 1024}MB, {config.l2_ways}-way, "
            f"{config.l2_latency} cycles, 64B lines",
            "1MB, 32-way, 20 cycles, 64B lines",
        ],
        [
            "L2-DRAM bus",
            f"{config.l2_bus_latency} cycles + contention, "
            f"{config.l2_bus_width_bytes}B",
            "4 cycles + contention, 32B",
        ],
        ["DRAM", "unlimited, DDR3-1600 timing", "unlimited, DDR3-1600 timing"],
    ]
    rendered = format_table(headers, rows)
    matches = float(all(str(row[1]).strip() == str(row[2]).strip() for row in rows))
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=headers,
        rows=rows,
        rendered=rendered,
        summary={"all_match": matches},
    )
