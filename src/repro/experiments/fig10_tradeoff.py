"""Fig. 10: more line buffers vs more interconnect bandwidth (cpc = 8).

A single 16 KB I-cache shared by all eight workers, in three variants:
naive (4 LB, single bus), more line buffers (8 LB, single bus), and more
bandwidth (4 LB, double bus); all normalised to the private baseline.
Shape checks: the double bus recovers (nearly) all of the naive-sharing
loss and beats adding line buffers; CoEVP gains performance outright.

Machine-parametric: the sweep is built from the context's machine model
(``--machine``), so the same trade-off is measured on the ACMP's worker
cluster or on a symmetric CMP's banked front-ends.
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.experiments.common import (
    ExperimentContext,
    ExperimentResult,
    attach_sampling_errors,
    attach_seed_intervals,
)

EXPERIMENT_ID = "fig10"
TITLE = "Line buffers vs bus bandwidth at cpc=8, 16KB shared I-cache"

VARIANTS = (
    ("4 LB, single bus", dict(line_buffers=4, bus_count=1)),
    ("8 LB, single bus", dict(line_buffers=8, bus_count=1)),
    ("4 LB, double bus", dict(line_buffers=4, bus_count=2)),
)


def design_points(ctx: ExperimentContext) -> list[tuple[str, object]]:
    """Every (benchmark, config) pair this figure needs."""
    configs = [ctx.model.baseline_config()] + [
        ctx.model.shared_config(cores_per_cache=8, icache_kb=16, **overrides)
        for _, overrides in VARIANTS
    ]
    return [(name, config) for name in ctx.benchmarks for config in configs]


def run(ctx: ExperimentContext | None = None) -> ExperimentResult:
    ctx = ctx or ExperimentContext()
    ctx.ensure(design_points(ctx))
    headers = ["benchmark"] + [label for label, _ in VARIANTS]
    rows: list[list[object]] = []
    means = {label: [] for label, _ in VARIANTS}
    coevp_double = 1.0
    for name in ctx.benchmarks:
        base = ctx.run(name, ctx.model.baseline_config())
        row: list[object] = [name]
        for label, overrides in VARIANTS:
            config = ctx.model.shared_config(
                cores_per_cache=8, icache_kb=16, **overrides
            )
            ratio = ctx.run(name, config).cycles / base.cycles
            row.append(ratio)
            means[label].append(ratio)
            if name == "CoEVP" and label == "4 LB, double bus":
                coevp_double = ratio
        rows.append(row)
    rows.append(
        ["amean"] + [sum(means[label]) / len(means[label]) for label, _ in VARIANTS]
    )
    rendered = format_table(headers, rows)
    mean_double = sum(means["4 LB, double bus"]) / len(means["4 LB, double bus"])
    rendered += (
        f"\nmean with double bus: {mean_double:.3f} (paper: ~1.00); "
        f"CoEVP with double bus: {coevp_double:.3f} (paper: ~0.98)"
    )
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=headers,
        rows=rows,
        rendered=rendered,
        summary={
            "mean_naive": sum(means["4 LB, single bus"])
            / len(means["4 LB, single bus"]),
            "mean_more_lb": sum(means["8 LB, single bus"])
            / len(means["8 LB, single bus"]),
            "mean_double_bus": mean_double,
            "coevp_double_bus": coevp_double,
        },
    )
    result = attach_seed_intervals(
        ctx, run, result, ('mean_naive', 'mean_more_lb', 'mean_double_bus')
    )
    return attach_sampling_errors(ctx, result, design_points(ctx))
