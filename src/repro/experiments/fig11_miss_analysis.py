"""Fig. 11: worker I-cache misses, shared (32 KB and 16 KB) vs private.

MPKI of the I-cache(s) serving worker cores with cpc = 8, in both shared
sizes, normalised to the private-32 KB baseline, plus the absolute
baseline MPKI values the paper prints above the bars. Shape checks:
sharing cuts misses by ~50 % on average (up to ~90 %); even the 16 KB
shared cache beats 8x32 KB private; botsalgn/smithwa show extra capacity
misses at 16 KB; CoEVP's absolute baseline MPKI is the only one above 1.

Machine-parametric: the sweep is built from the context's machine model
(``--machine``), like fig07-fig10.
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.experiments.common import (
    ExperimentContext,
    ExperimentResult,
    attach_sampling_errors,
    attach_seed_intervals,
)

EXPERIMENT_ID = "fig11"
TITLE = "Worker I-cache MPKI, shared vs private (cpc=8)"


def design_points(ctx: ExperimentContext) -> list[tuple[str, object]]:
    """Every (benchmark, config) pair this figure needs."""
    configs = [
        ctx.model.baseline_config(),
        ctx.model.shared_config(
            cores_per_cache=8, icache_kb=32, bus_count=2, line_buffers=4
        ),
        ctx.model.shared_config(
            cores_per_cache=8, icache_kb=16, bus_count=2, line_buffers=4
        ),
    ]
    return [(name, config) for name in ctx.benchmarks for config in configs]


def run(ctx: ExperimentContext | None = None) -> ExperimentResult:
    ctx = ctx or ExperimentContext()
    ctx.ensure(design_points(ctx))
    headers = [
        "benchmark",
        "private MPKI",
        "32KB shared [%]",
        "16KB shared [%]",
    ]
    rows: list[list[object]] = []
    ratios_32: list[float] = []
    ratios_16: list[float] = []
    for name in ctx.benchmarks:
        base = ctx.run(name, ctx.model.baseline_config())
        shared_32 = ctx.run(
            name,
            ctx.model.shared_config(
                cores_per_cache=8, icache_kb=32, bus_count=2, line_buffers=4
            ),
        )
        shared_16 = ctx.run(
            name,
            ctx.model.shared_config(
                cores_per_cache=8, icache_kb=16, bus_count=2, line_buffers=4
            ),
        )
        base_mpki = base.worker_icache_mpki()
        if base_mpki > 0:
            ratio_32 = shared_32.worker_icache_mpki() / base_mpki * 100
            ratio_16 = shared_16.worker_icache_mpki() / base_mpki * 100
        else:
            ratio_32 = ratio_16 = 0.0
        ratios_32.append(ratio_32)
        ratios_16.append(ratio_16)
        rows.append([name, base_mpki, ratio_32, ratio_16])
    mean_32 = sum(ratios_32) / len(ratios_32)
    mean_16 = sum(ratios_16) / len(ratios_16)
    rendered = format_table(headers, rows, float_format="{:.2f}")
    rendered += (
        f"\nmean shared/private miss ratio: 32KB {mean_32:.0f}%, "
        f"16KB {mean_16:.0f}% (paper: ~50% mean, down to ~10%)"
    )
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=headers,
        rows=rows,
        rendered=rendered,
        summary={
            "mean_ratio_32kb_percent": mean_32,
            "mean_ratio_16kb_percent": mean_16,
            "min_ratio_32kb_percent": min(r for r in ratios_32 if r > 0)
            if any(r > 0 for r in ratios_32)
            else 0.0,
        },
    )
    result = attach_seed_intervals(
        ctx, run, result, ('mean_ratio_32kb_percent', 'mean_ratio_16kb_percent')
    )
    return attach_sampling_errors(ctx, result, design_points(ctx))
