"""Fig. 9: I-cache access ratio for 2, 4 and 8 line buffers.

Access ratio = lines fetched from the I-cache / total fetch-side line
requests, measured per benchmark on the baseline (private I-caches) so
the line-buffer effect is isolated from bus behaviour. Shape checks:
short-basic-block codes (CG, IS, botsalgn, botsspar, CoSP) have low
ratios; long-basic-block codes (BT, LU, ilbdc, LULESH) sit near 100 %;
more line buffers lower the ratio.

Machine-parametric: the baseline is built from the context's machine
model (``--machine``), so the split can be measured on the ACMP's
workers or a symmetric CMP's uniform cores.
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.experiments.common import (
    ExperimentContext,
    ExperimentResult,
    attach_sampling_errors,
    attach_seed_intervals,
)

EXPERIMENT_ID = "fig09"
TITLE = "I-cache access ratio [%] for 2/4/8 line buffers"

LINE_BUFFER_COUNTS = (2, 4, 8)
LOW_RATIO_CODES = ("CG", "IS", "botsalgn", "botsspar", "CoSP")
HIGH_RATIO_CODES = ("BT", "LU", "ilbdc", "LULESH")


def design_points(ctx: ExperimentContext) -> list[tuple[str, object]]:
    """Every (benchmark, config) pair this figure needs."""
    return [
        (name, ctx.model.baseline_config(line_buffers=count))
        for name in ctx.benchmarks
        for count in LINE_BUFFER_COUNTS
    ]


def run(ctx: ExperimentContext | None = None) -> ExperimentResult:
    ctx = ctx or ExperimentContext()
    ctx.ensure(design_points(ctx))
    headers = ["benchmark"] + [f"{n} LB" for n in LINE_BUFFER_COUNTS]
    rows: list[list[object]] = []
    ratios_at_4: dict[str, float] = {}
    for name in ctx.benchmarks:
        row: list[object] = [name]
        for count in LINE_BUFFER_COUNTS:
            result = ctx.run(name, ctx.model.baseline_config(line_buffers=count))
            ratio = result.worker_access_ratio() * 100
            row.append(ratio)
            if count == 4:
                ratios_at_4[name] = ratio
        rows.append(row)
    rendered = format_table(headers, rows, float_format="{:.1f}")
    low = [ratios_at_4[n] for n in LOW_RATIO_CODES if n in ratios_at_4]
    high = [ratios_at_4[n] for n in HIGH_RATIO_CODES if n in ratios_at_4]
    if low and high:
        rendered += (
            f"\nmean 4-LB ratio: tight-loop codes {sum(low) / len(low):.1f}% "
            f"vs large-body codes {sum(high) / len(high):.1f}% "
            f"(paper: low vs ~100%)"
        )
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=headers,
        rows=rows,
        rendered=rendered,
        summary={
            "mean_low_ratio_at_4lb": sum(low) / len(low) if low else 0.0,
            "mean_high_ratio_at_4lb": sum(high) / len(high) if high else 0.0,
        },
    )
    result = attach_seed_intervals(ctx, run, result, ('mean_low_ratio_at_4lb', 'mean_high_ratio_at_4lb'))
    return attach_sampling_errors(ctx, result, design_points(ctx))
