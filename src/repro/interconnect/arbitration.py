"""Bus arbitration policies.

Table I specifies round-robin arbitration for the I-interconnect. The
paper's conclusion notes that "the arbitration policy on an I-bus becomes
the fetching policy" (Section VII) and suggests evaluating SMT-style fetch
policies; the extra arbiters here support that ablation.
"""

from __future__ import annotations

import abc
from collections.abc import Callable, Sequence

from repro.errors import ConfigurationError, SimulationError
from repro.utils import require_positive


class Arbiter(abc.ABC):
    """Chooses one requester among the candidates competing this cycle."""

    def __init__(self, requester_count: int) -> None:
        require_positive(requester_count, "requester_count")
        self.requester_count = requester_count

    @abc.abstractmethod
    def select(self, candidates: Sequence[int]) -> int:
        """Pick the winning requester id from a non-empty candidate list."""

    def _check(self, candidates: Sequence[int]) -> None:
        if not candidates:
            raise SimulationError("arbiter invoked with no candidates")
        for candidate in candidates:
            if not (0 <= candidate < self.requester_count):
                raise SimulationError(
                    f"candidate {candidate} outside [0, {self.requester_count})"
                )


class RoundRobinArbiter(Arbiter):
    """Fair rotation: the winner becomes lowest priority (Table I policy)."""

    def __init__(self, requester_count: int) -> None:
        super().__init__(requester_count)
        self._next = 0

    def select(self, candidates: Sequence[int]) -> int:
        self._check(candidates)
        eligible = set(candidates)
        for offset in range(self.requester_count):
            candidate = (self._next + offset) % self.requester_count
            if candidate in eligible:
                self._next = (candidate + 1) % self.requester_count
                return candidate
        raise SimulationError("round-robin arbiter found no eligible candidate")


class FixedPriorityArbiter(Arbiter):
    """Always favours the lowest requester id (unfair; starves high ids)."""

    def select(self, candidates: Sequence[int]) -> int:
        self._check(candidates)
        return min(candidates)


class LeastRecentlyGrantedArbiter(Arbiter):
    """Grants the requester that has waited longest since its last grant."""

    def __init__(self, requester_count: int) -> None:
        super().__init__(requester_count)
        self._last_grant = [-1] * requester_count

    def select(self, candidates: Sequence[int]) -> int:
        self._check(candidates)
        winner = min(candidates, key=lambda rid: (self._last_grant[rid], rid))
        self._last_grant[winner] = max(self._last_grant) + 1
        return winner


class WeightedArbiter(Arbiter):
    """SMT-ICOUNT-style fetch policy: favours the requester whose core is
    most starved, as reported by a caller-provided urgency function.

    The urgency callback returns a number per requester; the highest value
    wins (ties broken round-robin)."""

    def __init__(
        self, requester_count: int, urgency: Callable[[int], float]
    ) -> None:
        super().__init__(requester_count)
        if urgency is None:
            raise ConfigurationError("WeightedArbiter requires an urgency callback")
        self._urgency = urgency
        self._rotation = RoundRobinArbiter(requester_count)

    def select(self, candidates: Sequence[int]) -> int:
        self._check(candidates)
        best = max(self._urgency(candidate) for candidate in candidates)
        top = [c for c in candidates if self._urgency(c) == best]
        if len(top) == 1:
            return top[0]
        return self._rotation.select(top)


_ARBITERS: dict[str, type[Arbiter]] = {
    "round-robin": RoundRobinArbiter,
    "fixed-priority": FixedPriorityArbiter,
    "least-recently-granted": LeastRecentlyGrantedArbiter,
}


def make_arbiter(name: str, requester_count: int) -> Arbiter:
    """Build a standard arbiter by name (weighted arbiters need a callback)."""
    try:
        factory = _ARBITERS[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown arbitration policy {name!r}; expected one of {sorted(_ARBITERS)}"
        ) from None
    return factory(requester_count)
