"""Multi-bus interconnect: one bus per cache bank (Section VI-B).

"Instead of a single bus, we use a shared multi-banked I-cache so that each
bank now has its own bus connected to all worker cores" — requests for even
cache lines route through bus 0, odd lines through bus 1 (for two banks).
Doubling the buses halves the number of cores contending per bus at a 4x
interconnect area cost (Section VI-D), the trade-off of Figs. 10 and 12.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.interconnect.arbitration import Arbiter
from repro.interconnect.bus import Bus, BusRequest
from repro.utils import log2_int, require_power_of_two


class MultiBus:
    """A bank-interleaved set of buses presenting a single request API."""

    def __init__(
        self,
        requester_count: int,
        bus_count: int,
        width_bytes: int = 32,
        latency: int = 2,
        line_bytes: int = 64,
        arbiter_factory: Callable[[int], Arbiter] | None = None,
        name: str = "i-interconnect",
    ) -> None:
        require_power_of_two(bus_count, "bus_count")
        require_power_of_two(line_bytes, "line_bytes")
        self.name = name
        self.requester_count = requester_count
        self.line_bytes = line_bytes
        self._line_shift = log2_int(line_bytes)
        self._bank_mask = bus_count - 1
        self.buses = [
            Bus(
                requester_count,
                width_bytes=width_bytes,
                latency=latency,
                arbiter=arbiter_factory(requester_count) if arbiter_factory else None,
                name=f"{name}[{index}]",
            )
            for index in range(bus_count)
        ]

    @property
    def bus_count(self) -> int:
        return len(self.buses)

    @property
    def latency(self) -> int:
        return self.buses[0].latency

    def bank_of(self, address: int) -> int:
        """Bank (bus) index for an address: line-address interleaving."""
        return (address >> self._line_shift) & self._bank_mask

    def request(
        self,
        requester: int,
        address: int,
        now: int,
        payload_bytes: int = 64,
        meta: object = None,
    ) -> BusRequest:
        bus = self.buses[self.bank_of(address)]
        return bus.request(requester, address, now, payload_bytes, meta)

    def step(self, now: int) -> list[BusRequest]:
        """Advance every bus one cycle; return all grants of this cycle."""
        grants = []
        for bus in self.buses:
            granted = bus.step(now)
            if granted is not None:
                grants.append(granted)
        return grants

    def flush_requester(self, requester: int) -> int:
        return sum(bus.flush_requester(requester) for bus in self.buses)

    def idle_at(self, cycle: int) -> bool:
        """True when stepping every bus at ``cycle`` is provably a no-op."""
        return all(bus.idle_at(cycle) for bus in self.buses)

    def grant_horizon(self, cycle: int) -> int | None:
        """Earliest cycle >= ``cycle`` at which any bus could grant.

        ``None`` when no bus has a queued request: in-flight transfers
        may still be draining, but their per-cycle busy accounting is
        recoverable in one step (:meth:`settle_busy`), so nothing
        observable happens until a new request arrives.
        """
        horizon: int | None = None
        for bus in self.buses:
            candidate = bus.grant_horizon(cycle)
            if candidate is not None and (horizon is None or candidate < horizon):
                horizon = candidate
        return horizon

    def settle_busy(self, upto: int) -> int:
        """Batch-charge every bus's elided busy cycles up to ``upto``."""
        return sum(bus.settle_busy(upto) for bus in self.buses)

    @property
    def pending_requests(self) -> int:
        return sum(bus.pending_requests for bus in self.buses)

    def total_transactions(self) -> int:
        return sum(bus.stats.transactions for bus in self.buses)

    def total_wait_cycles(self) -> int:
        return sum(bus.stats.wait_cycles for bus in self.buses)
