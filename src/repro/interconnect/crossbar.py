"""Crossbar interconnect for the interconnect-topology ablation.

A full crossbar gives every core a dedicated path to every cache bank;
contention only occurs when two cores target the same bank in the same
cycle. Functionally this is the multi-bus with per-bank arbitration, but
its area grows quadratically with the bank count (Kumar et al. [27], cited
in Section IV-B), which is why the paper prefers buses; the power model
(:mod:`repro.power.bus_area`) reflects that difference.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.interconnect.arbitration import Arbiter
from repro.interconnect.multibus import MultiBus


class Crossbar(MultiBus):
    """Crossbar switch: per-bank arbitration, point-to-point latency.

    The timing model matches a multi-bus with the same port count; the
    class exists so systems can be configured with a crossbar and priced
    with the quadratic-area model in the ablation benches.
    """

    def __init__(
        self,
        requester_count: int,
        bank_count: int,
        width_bytes: int = 32,
        latency: int = 1,
        line_bytes: int = 64,
        arbiter_factory: Callable[[int], Arbiter] | None = None,
        name: str = "i-crossbar",
    ) -> None:
        super().__init__(
            requester_count,
            bank_count,
            width_bytes=width_bytes,
            latency=latency,
            line_bytes=line_bytes,
            arbiter_factory=arbiter_factory,
            name=name,
        )
        self.is_crossbar = True
