"""Interconnect substrate: arbiters, buses, multi-bus, crossbar."""

from repro.interconnect.arbitration import (
    Arbiter,
    FixedPriorityArbiter,
    LeastRecentlyGrantedArbiter,
    RoundRobinArbiter,
    WeightedArbiter,
    make_arbiter,
)
from repro.interconnect.bus import Bus, BusRequest, BusStats
from repro.interconnect.crossbar import Crossbar
from repro.interconnect.multibus import MultiBus

__all__ = [
    "Arbiter",
    "FixedPriorityArbiter",
    "LeastRecentlyGrantedArbiter",
    "RoundRobinArbiter",
    "WeightedArbiter",
    "make_arbiter",
    "Bus",
    "BusRequest",
    "BusStats",
    "Crossbar",
    "MultiBus",
]
