"""Cycle-stepped shared bus (Table I: 32 B wide, 2-cycle latency + contention).

The bus carries cache-line transactions between requesters (core
front-ends) and a cache. One transaction occupies the bus for
``ceil(payload / width)`` cycles — two cycles for a 64 B line over a 32 B
bus — during which no other requester is granted; the time a request spends
queued before its grant is the paper's "contention" term.

The same class models the L2-DRAM bus (Table I: 32 B wide, 4-cycle
latency + contention) shared by all L2 caches on the miss path.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.interconnect.arbitration import Arbiter, RoundRobinArbiter
from repro.utils import require_positive


@dataclass(slots=True)
class BusRequest:
    """One queued transaction."""

    requester: int
    address: int
    issued_at: int
    payload_bytes: int
    meta: object = None
    granted_at: int = -1

    @property
    def wait_cycles(self) -> int:
        if self.granted_at < 0:
            raise SimulationError("wait_cycles read before grant")
        return self.granted_at - self.issued_at


@dataclass
class BusStats:
    transactions: int = 0
    busy_cycles: int = 0
    wait_cycles: int = 0
    per_requester_transactions: dict[int, int] = field(default_factory=dict)
    per_requester_wait: dict[int, int] = field(default_factory=dict)

    def utilization(self, elapsed_cycles: int) -> float:
        if elapsed_cycles <= 0:
            return 0.0
        return self.busy_cycles / elapsed_cycles

    @property
    def mean_wait(self) -> float:
        if self.transactions == 0:
            return 0.0
        return self.wait_cycles / self.transactions


class Bus:
    """A single shared bus with pluggable arbitration.

    Args:
        requester_count: number of attached requesters.
        width_bytes: datapath width; with 64 B lines and the paper's 32 B
            width every line transfer occupies the bus for 2 cycles.
        latency: pipeline latency a granted transaction experiences before
            it reaches the far side (2 cycles for the I-interconnect,
            4 for the L2-DRAM bus).
        arbiter: arbitration policy; defaults to round-robin (Table I).
    """

    def __init__(
        self,
        requester_count: int,
        width_bytes: int = 32,
        latency: int = 2,
        arbiter: Arbiter | None = None,
        name: str = "bus",
    ) -> None:
        require_positive(requester_count, "requester_count")
        require_positive(width_bytes, "width_bytes")
        if latency < 0:
            raise SimulationError(f"latency must be non-negative, got {latency}")
        self.name = name
        self.requester_count = requester_count
        self.width_bytes = width_bytes
        self.latency = latency
        self._arbiter = arbiter if arbiter is not None else RoundRobinArbiter(requester_count)
        self._queues: list[deque[BusRequest]] = [deque() for _ in range(requester_count)]
        self._busy_until = 0
        #: Busy cycles are charged up to (exclusive) this cycle; live
        #: steps settle one cycle at a time, a sleeping interconnect
        #: component settles the whole elided window on wake-up.
        self._busy_accounted_to = 0
        self.stats = BusStats()

    def transfer_cycles(self, payload_bytes: int) -> int:
        """Bus occupancy of one transaction."""
        return max(1, math.ceil(payload_bytes / self.width_bytes))

    def request(
        self,
        requester: int,
        address: int,
        now: int,
        payload_bytes: int = 64,
        meta: object = None,
    ) -> BusRequest:
        """Queue a transaction; it competes for grants in later cycles."""
        if not (0 <= requester < self.requester_count):
            raise SimulationError(
                f"requester {requester} outside [0, {self.requester_count})"
            )
        req = BusRequest(
            requester=requester,
            address=address,
            issued_at=now,
            payload_bytes=payload_bytes,
            meta=meta,
        )
        self._queues[requester].append(req)
        return req

    @property
    def pending_requests(self) -> int:
        return sum(len(queue) for queue in self._queues)

    def busy(self, now: int) -> bool:
        return now < self._busy_until

    def idle_at(self, cycle: int) -> bool:
        """True when stepping this bus at ``cycle`` is provably a no-op.

        Used by the cycle-skipping fast path: an idle bus grants nothing
        and accrues no busy/wait statistics, so skipping its step cannot
        change results. A queued request or an in-flight transfer (which
        counts busy cycles every step) vetoes the skip.
        """
        return cycle >= self._busy_until and self.pending_requests == 0

    def grant_horizon(self, cycle: int) -> int | None:
        """Earliest cycle >= ``cycle`` at which a grant could happen.

        ``None`` when no request is queued (only an in-flight transfer,
        if any, keeps the bus busy; its per-cycle busy accounting is
        recoverable in one step via :meth:`settle_busy`, so stepping the
        bus before the next request arrives is a provable no-op).
        """
        if self.pending_requests == 0:
            return None
        return max(cycle, self._busy_until)

    def settle_busy(self, upto: int) -> int:
        """Charge the busy cycles of ``[accounted, min(upto, busy_end))``.

        Returns the number of cycles charged, so a sleeping interconnect
        component can report how many per-cycle steps it batched away.
        A stepped run reaches the identical total one cycle at a time.
        """
        end = min(upto, self._busy_until)
        charged = end - self._busy_accounted_to
        if charged <= 0:
            return 0
        self.stats.busy_cycles += charged
        self._busy_accounted_to = end
        return charged

    def step(self, now: int) -> BusRequest | None:
        """Advance one cycle; return the request granted this cycle, if any.

        The caller delivers the granted request to the cache side after the
        bus ``latency``.
        """
        if now < self._busy_until:
            self.settle_busy(now + 1)
            return None
        candidates = [
            requester
            for requester, queue in enumerate(self._queues)
            if queue and queue[0].issued_at <= now
        ]
        if not candidates:
            return None
        winner = self._arbiter.select(candidates)
        request = self._queues[winner].popleft()
        request.granted_at = now
        occupancy = self.transfer_cycles(request.payload_bytes)
        self._busy_until = now + occupancy
        self._busy_accounted_to = now
        self.settle_busy(now + 1)  # the grant cycle itself counts busy
        self.stats.transactions += 1
        wait = request.wait_cycles
        self.stats.wait_cycles += wait
        per_tx = self.stats.per_requester_transactions
        per_tx[winner] = per_tx.get(winner, 0) + 1
        per_wait = self.stats.per_requester_wait
        per_wait[winner] = per_wait.get(winner, 0) + wait
        return request

    def flush_requester(self, requester: int) -> int:
        """Drop queued (not yet granted) requests of one requester.

        Used on branch-misprediction redirects. Returns the drop count.
        """
        queue = self._queues[requester]
        dropped = len(queue)
        queue.clear()
        return dropped
