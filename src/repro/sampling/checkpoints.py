"""Persistent warm-state checkpoints for sampled simulation.

Functional warming dominates sampled-run cost, and without persistence
every design point of a campaign re-walks the same trace prefix from
cold. This module amortizes that cost across whole campaigns: a
:class:`CheckpointStore` living beside the campaign's ``ResultStore``
persists the warm state entering every measurement interval, keyed by
everything the state is actually a function of —

* the trace prefix: ``(benchmark, threads, seed, scale)`` plus a
  content fingerprint of the synthesized records (stale traces can
  never masquerade as fresh ones), and the sampling plan + interval
  ordinal that select the prefix boundary;
* the structural *shape* of the warm structures
  (:func:`repro.machine.system.warm_shape_digest`) — and nothing else.
  Warm state is independent of timing parameters, so a whole timing
  sweep (bus counts, latencies, arbitration policies) shares one set of
  checkpoints per trace prefix;
* the machine model and the ``warm_l2`` mode (a pre-filled L2 is part
  of the functional state).

Layout::

    <root>/
      <machine>/
        <benchmark>/
          seed<seed>__scale<scale>__t<threads>/
            <trace-fingerprint>/
              <plan>__<warm|cold>__<shape>/
                detail<k>.json      # state entering detail interval k

Unlike the ``ResultStore``, the checkpoint store is a pure cache:
``get`` answers ``None`` for anything it cannot fully verify (corrupt
JSON, mismatched identity fields), never an error — the caller warms
from the trace instead, and a later ``put`` self-heals the entry.
Writes use the same mkstemp-then-rename discipline as
``ResultStore.put``, so concurrent shard hosts can share one tree.

Payloads hold a *sparse* encoding of :class:`WarmState`
(:func:`encode_state` / :func:`decode_state`): the dense tables are
dominated by default values (weakly-taken gshare counters, invalid
cache ways), and storing only the non-default cells keeps a snapshot at
a few tens of KB instead of megabytes.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path

from repro.campaign.store import _UMASK, _format_scale, _sanitize
from repro.errors import ConfigurationError
from repro.machine.warm import WarmState
from repro.obs.recorder import metrics_registry as _active_metrics

__all__ = [
    "CheckpointKey",
    "CheckpointStore",
    "Checkpointing",
    "decode_state",
    "encode_state",
    "trace_fingerprint",
]

#: gshare counters initialize to 2 (weakly taken); every other value is
#: a non-default cell worth storing.
_NON_DEFAULT_COUNTER = re.compile(rb"[^\x02]")


# -- trace fingerprints ----------------------------------------------------

# The digest moved to the trace layer so the on-disk codec can stamp
# manifests without importing sampling; re-exported here because every
# existing checkpoint-key call site imports it from this module.
from repro.trace.fingerprint import trace_fingerprint  # noqa: E402, F401


# -- sparse warm-state codec -----------------------------------------------


def _encode_gshare(state: dict) -> dict:
    counters = state["counters"]
    packed = bytes(counters)
    return {
        "entries": len(counters),
        "history": state["history"],
        "counters": [
            [match.start(), packed[match.start()]]
            for match in _NON_DEFAULT_COUNTER.finditer(packed)
        ],
    }


def _decode_gshare(payload: dict) -> dict:
    counters = [2] * int(payload["entries"])
    for index, value in payload["counters"]:
        counters[index] = value
    return {"counters": counters, "history": int(payload["history"])}


def _encode_loop(state: dict) -> dict:
    tags = state["tags"]
    trips = state["trips"]
    currents = state["currents"]
    confidences = state["confidences"]
    return {
        "entries": len(tags),
        "rows": [
            [index, tags[index], trips[index], currents[index],
             confidences[index]]
            for index in range(len(tags))
            if tags[index] != -1
        ],
    }


def _decode_loop(payload: dict) -> dict:
    entries = int(payload["entries"])
    tags = [-1] * entries
    trips = [0] * entries
    currents = [0] * entries
    confidences = [0] * entries
    for index, tag, trip, current, confidence in payload["rows"]:
        tags[index] = tag
        trips[index] = trip
        currents[index] = current
        confidences[index] = confidence
    return {
        "tags": tags,
        "trips": trips,
        "currents": currents,
        "confidences": confidences,
    }


def _encode_btb(state: dict) -> dict:
    tags = state["tags"]
    targets = state["targets"]
    return {
        "entries": len(tags),
        "rows": [
            [index, tags[index], targets[index]]
            for index in range(len(tags))
            if tags[index] != -1
        ],
    }


def _decode_btb(payload: dict) -> dict:
    entries = int(payload["entries"])
    tags = [-1] * entries
    targets = [0] * entries
    for index, tag, target in payload["rows"]:
        tags[index] = tag
        targets[index] = target
    return {"tags": tags, "targets": targets}


def _encode_policy(state) -> dict:
    if state is None:
        return {"kind": "none"}
    if all(isinstance(entry, int) for entry in state):
        # FIFO-style dense int vector.
        return {"kind": "dense", "data": list(state)}
    # LRU/PLRU-style per-set lists (None marks an untouched set).
    return {
        "kind": "sparse",
        "sets": len(state),
        "data": [
            [index, list(entry)]
            for index, entry in enumerate(state)
            if entry is not None
        ],
    }


def _decode_policy(payload: dict):
    kind = payload["kind"]
    if kind == "none":
        return None
    if kind == "dense":
        return list(payload["data"])
    order: list[list[int] | None] = [None] * int(payload["sets"])
    for index, entry in payload["data"]:
        order[index] = list(entry)
    return order


def _encode_cache(state: dict) -> dict:
    tags = state["tags"]
    return {
        "sets": len(tags),
        "ways": len(tags[0]) if tags else 0,
        "lines": [
            [set_index, way, line]
            for set_index, row in enumerate(tags)
            for way, line in enumerate(row)
            if line is not None
        ],
        "policy": _encode_policy(state["policy"]),
        "seen": sorted(state["seen"]),
    }


def _decode_cache(payload: dict) -> dict:
    sets = int(payload["sets"])
    ways = int(payload["ways"])
    tags: list[list[int | None]] = [[None] * ways for _ in range(sets)]
    for set_index, way, line in payload["lines"]:
        tags[set_index][way] = line
    return {
        "tags": tags,
        "policy": _decode_policy(payload["policy"]),
        "seen": set(payload["seen"]),
    }


def _encode_line_buffers(state: dict) -> dict:
    return {
        "clock": state["clock"],
        "entries": [list(entry) for entry in state["entries"]],
    }


def _encode_itlb(state: dict) -> dict:
    return {
        "clock": state["clock"],
        "pages": [list(page) for page in state["pages"]],
        "seen": sorted(state["seen"]),
    }


def _decode_itlb(payload: dict) -> dict:
    return {
        "clock": int(payload["clock"]),
        "pages": [list(page) for page in payload["pages"]],
        "seen": set(payload["seen"]),
    }


def encode_state(state: WarmState) -> dict:
    """Sparse, JSON-ready encoding of a :class:`WarmState`.

    A pure read: the snapshot (and any system sharing its storage) is
    untouched, so the sampled simulator encodes mid-run without copying
    the dense tables first.
    """
    return {
        "machine": state.machine,
        "config_label": state.config_label,
        "shape": state.shape,
        "cores": [
            {
                "line_buffers": _encode_line_buffers(core["line_buffers"]),
                "predictor": core["predictor"],
                "itlb": core["itlb"],
            }
            for core in state.cores
        ],
        "predictors": [
            {
                "direction": _encode_gshare(predictor["direction"]),
                "loop": _encode_loop(predictor["loop"]),
                "btb": _encode_btb(predictor["btb"]),
            }
            for predictor in state.predictors
        ],
        "itlbs": [_encode_itlb(itlb) for itlb in state.itlbs],
        "groups": [
            {
                "icache": _encode_cache(group["icache"]),
                "l2": _encode_cache(group["l2"]),
            }
            for group in state.groups
        ],
    }


def decode_state(payload: dict) -> WarmState:
    """Rebuild a :class:`WarmState` with fresh dense storage.

    The inverse of :func:`encode_state`; every decode owns independent
    tables, so restoring the result never couples two systems.
    """
    try:
        return WarmState(
            machine=payload["machine"],
            config_label=payload["config_label"],
            shape=payload.get("shape", ""),
            cores=[
                {
                    "line_buffers": _encode_line_buffers(
                        core["line_buffers"]
                    ),
                    "predictor": core["predictor"],
                    "itlb": core["itlb"],
                }
                for core in payload["cores"]
            ],
            predictors=[
                {
                    "direction": _decode_gshare(predictor["direction"]),
                    "loop": _decode_loop(predictor["loop"]),
                    "btb": _decode_btb(predictor["btb"]),
                }
                for predictor in payload["predictors"]
            ],
            itlbs=[_decode_itlb(itlb) for itlb in payload["itlbs"]],
            groups=[
                {
                    "icache": _decode_cache(group["icache"]),
                    "l2": _decode_cache(group["l2"]),
                }
                for group in payload["groups"]
            ],
        )
    except (KeyError, TypeError, ValueError, IndexError) as exc:
        raise ConfigurationError(
            f"malformed checkpoint payload: {exc}"
        ) from exc


# -- the on-disk store -----------------------------------------------------


@dataclass(frozen=True)
class CheckpointKey:
    """Everything the warm state entering an interval is a function of."""

    machine: str
    benchmark: str
    seed: int
    scale: float
    threads: int
    fingerprint: str
    plan: str
    warm_l2: bool
    shape: str

    def directory(self) -> Path:
        mode = "warm" if self.warm_l2 else "cold"
        return (
            Path(_sanitize(self.machine))
            / _sanitize(self.benchmark)
            / (
                f"seed{self.seed}__scale{_format_scale(self.scale)}"
                f"__t{self.threads}"
            )
            / _sanitize(self.fingerprint)
            / f"{_sanitize(self.plan)}__{mode}__{_sanitize(self.shape)}"
        )

    def header(self) -> dict:
        return {
            "machine": self.machine,
            "benchmark": self.benchmark,
            "seed": self.seed,
            "scale": self.scale,
            "threads": self.threads,
            "fingerprint": self.fingerprint,
            "plan": self.plan,
            "warm_l2": self.warm_l2,
            "shape": self.shape,
        }


class CheckpointStore:
    """Directory-backed store of per-interval warm-state checkpoints.

    A pure cache over re-derivable state: reads verify the full identity
    header and answer ``None`` on any mismatch or corruption (the caller
    re-warms and re-puts), so a damaged tree degrades to cold warming,
    never to wrong results.
    """

    #: Subdirectory name used when co-locating with a ``ResultStore``.
    SUBDIR = "checkpoints"

    #: Parsed payloads kept in memory (a campaign worker re-reads the
    #: same checkpoints for every design point of a timing sweep).
    _CACHE_LIMIT = 64

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self._parsed: dict[Path, tuple[tuple[int, int], dict]] = {}
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except (FileExistsError, NotADirectoryError) as exc:
            raise ConfigurationError(
                f"checkpoint store root {self.root} is not a usable "
                f"directory: {exc}"
            ) from exc

    def path_for(self, key: CheckpointKey, detail_index: int) -> Path:
        return self.root / key.directory() / f"detail{detail_index}.json"

    def _read(self, path: Path) -> dict | None:
        """Parse one checkpoint file, memoising by (mtime, size).

        JSON parsing dominates a checkpoint-hit run; the memo hands the
        same parsed payload back for every design point sharing the
        entry. Returned payloads are therefore shared and must be
        treated read-only — :func:`decode_state` builds fresh storage
        and never mutates its input.
        """
        try:
            stat = path.stat()
        except OSError:
            self._parsed.pop(path, None)
            return None
        stamp = (stat.st_mtime_ns, stat.st_size)
        cached = self._parsed.get(path)
        if cached is not None and cached[0] == stamp:
            return cached[1]
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        if not isinstance(payload, dict):
            return None
        if len(self._parsed) >= self._CACHE_LIMIT:
            self._parsed.clear()
        self._parsed[path] = (stamp, payload)
        return payload

    def get(self, key: CheckpointKey, detail_index: int) -> dict | None:
        """The encoded warm state entering detail interval
        ``detail_index``, or ``None`` when absent or unverifiable.

        The payload is shared with the store's in-memory parse memo:
        treat it as read-only.
        """
        registry = _active_metrics()
        if registry is None:
            return self._get(key, detail_index)
        started = time.perf_counter()
        state = self._get(key, detail_index)
        registry.histogram("store.checkpoint.get_s").observe(
            time.perf_counter() - started
        )
        registry.counter(
            "store.checkpoint.requests",
            outcome="hit" if state is not None else "miss",
        ).inc()
        return state

    def _get(self, key: CheckpointKey, detail_index: int) -> dict | None:
        path = self.path_for(key, detail_index)
        payload = self._read(path)
        if payload is None:
            return None
        header = key.header()
        stored = payload.get("key")
        if not isinstance(stored, dict):
            return None
        for field_name, expected in header.items():
            if stored.get(field_name) != expected:
                return None
        if payload.get("detail") != detail_index:
            return None
        state = payload.get("state")
        return state if isinstance(state, dict) else None

    def put(
        self,
        key: CheckpointKey,
        detail_index: int,
        state: dict,
        config_label: str = "",
    ) -> Path:
        """Persist one encoded warm state; returns the written path.

        Same write discipline as ``ResultStore.put``: a uniquely-named
        tmp file in the final directory, atomically renamed, so
        concurrent writers (shard hosts warming the same prefix) cannot
        interleave half-written payloads.
        """
        registry = _active_metrics()
        started = time.perf_counter() if registry is not None else 0.0
        path = self.path_for(key, detail_index)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "key": key.header(),
            "detail": detail_index,
            "config_label": config_label,
            "state": state,
        }
        fd, tmp_name = tempfile.mkstemp(
            prefix=path.stem + ".", suffix=".tmp", dir=path.parent
        )
        tmp = Path(tmp_name)
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(json.dumps(payload) + "\n")
            os.chmod(tmp, 0o666 & ~_UMASK)
            tmp.replace(path)  # atomic within one filesystem
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
        try:
            stat = path.stat()
            if len(self._parsed) >= self._CACHE_LIMIT:
                self._parsed.clear()
            self._parsed[path] = ((stat.st_mtime_ns, stat.st_size), payload)
        except OSError:  # pragma: no cover - a concurrent gc raced us
            pass
        if registry is not None:
            registry.histogram("store.checkpoint.put_s").observe(
                time.perf_counter() - started
            )
        return path

    # -- maintenance -------------------------------------------------------

    def entry_paths(self) -> list[Path]:
        return sorted(self.root.glob("*/*/*/*/*/detail*.json"))

    def __len__(self) -> int:
        return len(self.entry_paths())

    def total_bytes(self) -> int:
        total = 0
        for path in self.entry_paths():
            try:
                total += path.stat().st_size
            except OSError:
                continue
        return total

    def gc(self, dry_run: bool = False) -> list[Path]:
        """Drop checkpoints that can no longer be served.

        A checkpoint is collectable when its payload is not valid JSON,
        its identity header no longer parses (unknown machine model,
        unparseable plan spec), or its trace fingerprint is stale — the
        synthesizer for its ``(benchmark, threads, seed, scale)`` now
        produces different records, so the stored state describes a
        trace that no longer exists. Fingerprints are re-derived once
        per distinct trace identity; identities whose synthesis fails
        (retired benchmark names) are collected too. Returns the victim
        paths; ``dry_run`` only reports them. Empty key directories
        left behind are pruned as well.
        """
        from repro.machine.model import model_names
        from repro.sampling.plan import resolve_plan
        from repro.trace.synthesis import synthesize_benchmark

        known_machines = set(model_names())
        current: dict[tuple, str | None] = {}

        def current_fingerprint(identity: tuple) -> str | None:
            if identity not in current:
                benchmark, threads, seed, scale = identity
                try:
                    traces = synthesize_benchmark(
                        benchmark,
                        thread_count=threads,
                        scale=scale,
                        seed=seed,
                    )
                    current[identity] = trace_fingerprint(traces)
                except Exception:
                    current[identity] = None
            return current[identity]

        victims: list[Path] = []
        for path in self.entry_paths():
            try:
                payload = json.loads(path.read_text())
                header = payload["key"]
                machine = str(header["machine"])
                benchmark = str(header["benchmark"])
                seed = int(header["seed"])
                scale = float(header["scale"])
                threads = int(header["threads"])
                fingerprint = str(header["fingerprint"])
                plan = str(header["plan"])
            except (OSError, json.JSONDecodeError, KeyError, TypeError,
                    ValueError):
                victims.append(path)
                continue
            parseable = machine in known_machines
            if parseable:
                try:
                    resolve_plan(plan)
                except ConfigurationError:
                    parseable = False
            if not parseable:
                victims.append(path)
                continue
            expected = current_fingerprint((benchmark, threads, seed, scale))
            if expected is None or expected != fingerprint:
                victims.append(path)
        if not dry_run:
            for path in victims:
                path.unlink(missing_ok=True)
            # Prune now-empty key directories bottom-up.
            directories = sorted(
                (p for p in self.root.rglob("*") if p.is_dir()),
                key=lambda p: len(p.parts),
                reverse=True,
            )
            for directory in directories:
                try:
                    directory.rmdir()  # fails (kept) unless empty
                except OSError:
                    pass
        return victims


@dataclass(frozen=True)
class Checkpointing:
    """Checkpoint policy for one sampled run.

    Attributes:
        store: the checkpoint tree to read/write.
        seed: trace synthesis seed of the run (a key component the
            trace set itself does not carry).
        scale: trace scale of the run (same reason).
        refresh: when True, ignore existing entries (every interval
            warms from the trace) but still write fresh ones — the
            ``--checkpoints refresh`` recovery mode.
    """

    store: CheckpointStore
    seed: int = 0
    scale: float = 1.0
    refresh: bool = False
