"""Interval-sampled simulation with warm-state checkpoints.

Detailed-simulate only systematic measurement intervals, carry warmed
microarchitectural state between them (pure functional warming over
skipped spans, persisted across runs by a checkpoint store), and
extrapolate full-run results with per-metric sampling-error estimates.
See README "Sampled simulation" / "Warm-checkpoint store" for the
user-facing knobs and :mod:`repro.sampling.plan` /
:mod:`repro.sampling.slicer` / :mod:`repro.sampling.simulator` /
:mod:`repro.sampling.checkpoints` for the layers.
"""

from repro.sampling.checkpoints import (
    CheckpointKey,
    Checkpointing,
    CheckpointStore,
    trace_fingerprint,
)
from repro.sampling.plan import SamplingPlan, resolve_plan, sampling_modes
from repro.sampling.simulator import SampledSimulator, simulate_sampled
from repro.sampling.slicer import (
    Interval,
    IntervalKind,
    interval_traceset,
    slice_traces,
)
from repro.sampling.warmer import BatchedWarmer

__all__ = [
    "BatchedWarmer",
    "CheckpointKey",
    "Checkpointing",
    "CheckpointStore",
    "Interval",
    "IntervalKind",
    "SampledSimulator",
    "SamplingPlan",
    "interval_traceset",
    "resolve_plan",
    "sampling_modes",
    "simulate_sampled",
    "slice_traces",
    "trace_fingerprint",
]
