"""Interval-sampled simulation with warm-state checkpoints.

Detailed-simulate only systematic measurement intervals, carry warmed
microarchitectural state between them (functional warming over skipped
spans), and extrapolate full-run results with per-metric sampling-error
estimates. See README "Sampled simulation" for the user-facing knobs
and :mod:`repro.sampling.plan` / :mod:`repro.sampling.slicer` /
:mod:`repro.sampling.simulator` for the three layers.
"""

from repro.sampling.plan import SamplingPlan, resolve_plan, sampling_modes
from repro.sampling.simulator import SampledSimulator, simulate_sampled
from repro.sampling.slicer import (
    Interval,
    IntervalKind,
    interval_traceset,
    slice_traces,
)

__all__ = [
    "Interval",
    "IntervalKind",
    "SampledSimulator",
    "SamplingPlan",
    "interval_traceset",
    "resolve_plan",
    "sampling_modes",
    "simulate_sampled",
    "slice_traces",
]
