"""Batched functional warming: the scalar trace walk, vectorized.

Functional warming is pure bookkeeping — no cycles pass, no results are
read — so its cost is entirely Python dispatch: per walked line, the
scalar walk (`repro.sampling.simulator._warm_interval`) pays an iTLB
method call, a line-buffer probe with per-entry attribute access, and on
misses a cache access that threads through policy objects and stats
counters. :class:`BatchedWarmer` flattens all of that into one tight
loop over each thread's span with every table bound to a local:

* line buffers become two flat lists (lines, last-use clocks) written
  back once per span;
* the gshare/loop/BTB updates are inlined (prediction *reads* touch only
  stats counters, which are not warm state, so the warmer skips them
  entirely and replicates just the state-mutating updates);
* L1I/L2 accesses operate on the tag rows and LRU order lists directly,
  with non-LRU policies falling back to their policy-object methods;
* stats counters are not maintained — except the compulsory-miss
  classifier sets (lines/pages ever seen), which are warm state.

Bit-identity with the scalar walk is a contract, enforced by tests: the
first-minimum victim tie-breaks, clock-bump counts and dict insertion
orders all replicate the scalar structures exactly. The warmer wraps a
*real* warming :class:`~repro.machine.system.System` (holding only
references to its structures and re-reading the inner tables each span,
so a ``restore_warm_state`` — which adopts new storage — never leaves
the warmer stale), which keeps capture/restore and every policy variant
working without a parallel implementation.
"""

from __future__ import annotations

from typing import NamedTuple

from repro import kernels
from repro.branch.gshare import GsharePredictor
from repro.cache.replacement import LruPolicy
from repro.machine.system import System
from repro.sampling.slicer import Interval
from repro.trace.records import BasicBlockRecord, BranchKind
from repro.trace.stream import TraceSet

__all__ = ["BatchedWarmer"]

#: Compiled per-block line walk (lb/L1/L2), or None on the pure-Python
#: backend — the span walk below then keeps its original inline loop.
#: Only engaged for LRU L1s; the walk itself requires an LRU L2, which
#: the instruction-side hierarchy always uses.
_native_warm = kernels.warm_lines if kernels.NATIVE else None

#: Compiled whole-span walk (iTLB + lb/L1/L2 + branch structures in one
#: call over the flat span encoding), or None on the pure-Python
#: backend. Engaged per core when the structures match the kernel's
#: fast path exactly (LRU L1, stock gshare); other cores fall back to
#: the per-block walk below.
_native_span = kernels.warm_span if kernels.NATIVE else None

_CONDITIONAL = BranchKind.CONDITIONAL
_INDIRECT = BranchKind.INDIRECT


class _CoreShape(NamedTuple):
    """Construction-time constants of one core's warm structures.

    Geometry — masks, shifts, way counts, iTLB capacity — is fixed when
    the structures are built; warm-state restores adopt new *tables*,
    never new shapes, so these are captured once per core instead of
    being re-read on every span (the tables themselves still are).
    """

    g_mask: int
    g_shift: int
    lp_mask: int
    lp_shift: int
    b_mask: int
    b_shift: int
    t_shift: int
    t_capacity: int
    l1_ways: int
    l1_shift: int
    l1_set_mask: int
    l2_ways: int
    l2_shift: int
    l2_set_mask: int


class _SpanEncoding:
    """One thread's records flattened to parallel span columns.

    Per basic block: the first line address and line count of its fetch
    walk, and its terminating branch as (kind, key, target, taken) with
    kind 0 = trains nothing, 1 = conditional, 2 = indirect. ``prefix``
    maps a record index to the number of encoded blocks before it, so a
    record span ``[start, end)`` becomes the block range
    ``[prefix[start], prefix[end])``. ``source`` keeps the records list
    alive so an identity check can never alias a recycled id.
    """

    __slots__ = (
        "source",
        "length",
        "prefix",
        "starts",
        "counts",
        "kinds",
        "keys",
        "targets",
        "takens",
    )

    def __init__(self, records, line_bytes: int) -> None:
        self.source = records
        self.length = len(records)
        prefix = [0] * (self.length + 1)
        self.starts = starts = []
        self.counts = counts = []
        self.kinds = kinds = []
        self.keys = keys = []
        self.targets = targets = []
        self.takens = takens = []
        line_mask = -line_bytes
        blocks = 0
        for index, record in enumerate(records):
            prefix[index] = blocks
            if type(record) is not BasicBlockRecord:
                continue
            blocks += 1
            start_line = record.address & line_mask
            span = record.end_address - start_line
            starts.append(start_line)
            counts.append(
                (span + line_bytes - 1) // line_bytes if span > 0 else 0
            )
            kind = 0
            key = 0
            target = 0
            taken = 0
            branch = record.branch
            if branch is not None:
                branch_kind = branch.kind
                if branch_kind is _CONDITIONAL:
                    kind = 1
                    key = record.branch_address
                    taken = 1 if branch.taken else 0
                elif branch_kind is _INDIRECT:
                    kind = 2
                    key = record.branch_address
                    target = branch.target
            kinds.append(kind)
            keys.append(key)
            targets.append(target)
            takens.append(taken)
        prefix[self.length] = blocks
        self.prefix = prefix


class BatchedWarmer:
    """Walks intervals through a warming system's warm structures."""

    def __init__(self, system: System, traces: TraceSet) -> None:
        self.system = system
        self.traces = traces
        self._line_bytes = system.config.icache_line_bytes
        # Observability (construction-time grab; None when disabled).
        from repro.obs.recorder import metrics_registry

        self._metrics = metrics_registry()
        hardware_by_group = {
            id(hardware.group): hardware
            for hardware in system.group_hardware
        }
        #: Per-core structure tuples. Only the *objects* are cached —
        #: their inner tables are re-read every span, because restores
        #: adopt snapshot storage and would strand deeper references.
        self._contexts = []
        #: Per-core :class:`_CoreShape`, or None when the core's
        #: structures do not match the compiled span walk (non-LRU L1,
        #: subclassed direction predictor) and must take the per-block
        #: fallback.
        self._shapes = []
        #: Per-core :class:`_SpanEncoding` cache, built lazily on the
        #: first compiled span walk and rebuilt when the thread's
        #: records list is replaced or resized.
        self._encodings = []
        for core in system.cores:
            frontend = core.frontend
            hardware = hardware_by_group[id(core.cache_group)]
            predictor = frontend.predictor
            itlb = frontend.itlb
            l1 = hardware.cache
            l2 = hardware.hierarchy.l2
            self._contexts.append(
                (frontend.line_buffers, predictor, itlb, l1, l2)
            )
            direction = predictor.direction
            # Strict type checks, like the inline fallback below: a
            # subclass overriding update() must take the method-call
            # path to keep bit-identity with the scalar walk.
            if (
                type(direction) is GsharePredictor
                and type(l1._policy) is LruPolicy
            ):
                loop = predictor.loop
                btb = predictor.btb
                self._shapes.append(
                    _CoreShape(
                        g_mask=direction._mask,
                        g_shift=direction._index_shift,
                        lp_mask=loop._mask,
                        lp_shift=loop._index_shift,
                        b_mask=btb._mask,
                        b_shift=btb._index_shift,
                        t_shift=itlb._page_shift if itlb is not None else 0,
                        t_capacity=itlb.entries if itlb is not None else 0,
                        l1_ways=l1.ways,
                        l1_shift=l1._line_shift,
                        l1_set_mask=l1._set_mask,
                        l2_ways=l2.ways,
                        l2_shift=l2._line_shift,
                        l2_set_mask=l2._set_mask,
                    )
                )
            else:
                self._shapes.append(None)
            self._encodings.append(None)

    def warm_interval(self, interval: Interval) -> int:
        """Functionally warm one interval; returns basic blocks walked."""
        blocks = 0
        for core_id, context in enumerate(self._contexts):
            start, end = interval.spans[core_id]
            if start == end:
                continue
            blocks += self._walk_span(
                core_id,
                context,
                self.traces.threads[core_id].records,
                start,
                end,
            )
        if self._metrics is not None:
            from repro.kernels import backend_name

            labels = {
                "machine": self.system.machine_name,
                "kernel_backend": backend_name(),
            }
            self._metrics.counter("warming.intervals", **labels).inc()
            self._metrics.counter("warming.blocks", **labels).inc(blocks)
        return blocks

    def _walk_span(self, core_id, context, records, start, end) -> int:
        shape = self._shapes[core_id]
        if _native_span is not None and shape is not None:
            return self._walk_span_native(
                core_id, context, shape, records, start, end
            )
        return self._walk_span_py(context, records, start, end)

    def _span_encoding(self, core_id, records) -> _SpanEncoding:
        """The cached flat encoding of one thread's records.

        Rebuilt when the thread's records list was replaced or resized;
        the ``source`` reference keeps the identity check sound (a
        collected list's id can be recycled, a referenced one's never).
        """
        encoding = self._encodings[core_id]
        if (
            encoding is None
            or encoding.source is not records
            or encoding.length != len(records)
        ):
            encoding = _SpanEncoding(records, self._line_bytes)
            self._encodings[core_id] = encoding
        return encoding

    def _walk_span_native(
        self, core_id, context, shape, records, start, end
    ) -> int:
        """Warm one span in a single compiled call over the encoding."""
        encoding = self._span_encoding(core_id, records)
        prefix = encoding.prefix
        bstart = prefix[start]
        bend = prefix[end]
        if bstart == bend:
            return 0
        buffers, predictor, itlb, l1, l2 = context
        lb_entries = buffers._entries
        lb_lines = [entry.line for entry in lb_entries]
        lb_uses = [entry.last_use for entry in lb_entries]
        direction = predictor.direction
        loop = predictor.loop
        btb = predictor.btb
        if itlb is not None:
            t_map = itlb._translations
            t_seen = itlb._seen_pages
            t_clock = itlb._clock
        else:
            t_map = None
            t_seen = None
            t_clock = 0
        lb_clock, g_history, t_clock = _native_span(
            bstart,
            bend,
            self._line_bytes,
            encoding.starts,
            encoding.counts,
            encoding.kinds,
            encoding.keys,
            encoding.targets,
            encoding.takens,
            lb_lines,
            lb_uses,
            buffers._clock,
            l1._tags,
            l1._policy._order,
            shape.l1_ways,
            shape.l1_shift,
            shape.l1_set_mask,
            l1.stats._seen_lines,
            l2._tags,
            l2._policy._order,
            shape.l2_ways,
            shape.l2_shift,
            shape.l2_set_mask,
            l2.stats._seen_lines,
            direction._counters,
            direction._history,
            shape.g_mask,
            shape.g_shift,
            loop._tags,
            loop._trips,
            loop._currents,
            loop._confidences,
            shape.lp_mask,
            shape.lp_shift,
            btb._tags,
            btb._targets,
            shape.b_mask,
            shape.b_shift,
            t_map,
            t_seen,
            t_clock,
            shape.t_shift,
            shape.t_capacity,
        )
        for slot, entry in enumerate(lb_entries):
            entry.line = lb_lines[slot]
            entry.last_use = lb_uses[slot]
        buffers._clock = lb_clock
        direction._history = g_history
        if itlb is not None:
            itlb._clock = t_clock
        return bend - bstart

    def _walk_span_py(self, context, records, start, end) -> int:
        buffers, predictor, itlb, l1, l2 = context
        line_bytes = self._line_bytes
        line_mask = -line_bytes  # ~(line_bytes - 1) for powers of two

        # Line buffers: flatten to parallel lists, write back at the end.
        lb_entries = buffers._entries
        lb_lines = [entry.line for entry in lb_entries]
        lb_uses = [entry.last_use for entry in lb_entries]
        lb_clock = buffers._clock
        lb_range = range(len(lb_entries))
        lb_uses_get = lb_uses.__getitem__

        # Branch structures. Prediction reads only move stats counters
        # (not warm state); the inlined updates below replicate exactly
        # the state mutations of FetchPredictor.resolve.
        direction = predictor.direction
        # Strict type checks: a subclass overriding update() must take
        # the method-call path to keep bit-identity with the scalar walk.
        inline_gshare = type(direction) is GsharePredictor
        if inline_gshare:
            g_counters = direction._counters
            g_mask = direction._mask
            g_history = direction._history
            g_shift = direction._index_shift
        loop = predictor.loop
        lp_tags = loop._tags
        lp_trips = loop._trips
        lp_currents = loop._currents
        lp_conf = loop._confidences
        lp_mask = loop._mask
        lp_shift = loop._index_shift
        btb = predictor.btb
        b_tags = btb._tags
        b_targets = btb._targets
        b_mask = btb._mask
        b_shift = btb._index_shift

        have_itlb = itlb is not None
        if have_itlb:
            t_map = itlb._translations
            t_map_get = t_map.__getitem__
            t_seen = itlb._seen_pages
            t_clock = itlb._clock
            t_shift = itlb._page_shift
            t_capacity = itlb.entries

        # L1I: inline the LRU fast path, fall back to the policy object
        # for fifo/plru/random. The instruction-side L2 is always LRU.
        l1_tags = l1._tags
        l1_policy = l1._policy
        l1_shift = l1._line_shift
        l1_set_mask = l1._set_mask
        l1_seen = l1.stats._seen_lines
        l1_ways = l1.ways
        l1_lru = type(l1_policy) is LruPolicy
        l1_order = l1_policy._order if l1_lru else None
        l2_tags = l2._tags
        l2_order = l2._policy._order
        l2_shift = l2._line_shift
        l2_set_mask = l2._set_mask
        l2_seen = l2.stats._seen_lines
        l2_ways = l2.ways

        # Compiled fast path: the lb/L1/L2 line walk of each block runs
        # in one native call. The iTLB walk (independent clocks and
        # tables, so per-structure ordering is preserved) and the branch
        # updates stay in this loop either way.
        native_warm = _native_warm if l1_lru else None

        blocks = 0
        for record in records[start:end]:
            if type(record) is not BasicBlockRecord:
                continue
            blocks += 1
            line = record.address & line_mask
            end_address = record.end_address
            if native_warm is not None:
                if have_itlb:
                    while line < end_address:
                        page = line >> t_shift
                        t_clock += 1
                        if page in t_map:
                            t_map[page] = t_clock
                        else:
                            t_seen.add(page)
                            if len(t_map) >= t_capacity:
                                del t_map[min(t_map, key=t_map_get)]
                            t_map[page] = t_clock
                        line += line_bytes
                    line = record.address & line_mask
                lb_clock = native_warm(
                    line,
                    end_address,
                    line_bytes,
                    lb_lines,
                    lb_uses,
                    lb_clock,
                    l1_tags,
                    l1_order,
                    l1_ways,
                    l1_shift,
                    l1_set_mask,
                    l1_seen,
                    l2_tags,
                    l2_order,
                    l2_ways,
                    l2_shift,
                    l2_set_mask,
                    l2_seen,
                )
                line = end_address
            while line < end_address:
                if have_itlb:
                    page = line >> t_shift
                    t_clock += 1
                    if page in t_map:
                        t_map[page] = t_clock
                    else:
                        t_seen.add(page)
                        if len(t_map) >= t_capacity:
                            del t_map[min(t_map, key=t_map_get)]
                        t_map[page] = t_clock
                lb_clock += 1
                for slot in lb_range:
                    if lb_lines[slot] == line:
                        lb_uses[slot] = lb_clock
                        break
                else:
                    # Buffer miss: allocate the first least-recently-used
                    # slot (nothing is ever pending during warming), then
                    # access L1, and L2 on an L1 miss.
                    victim = min(lb_range, key=lb_uses_get)
                    lb_clock += 1
                    lb_lines[victim] = line
                    lb_uses[victim] = lb_clock
                    set_index = (line >> l1_shift) & l1_set_mask
                    row = l1_tags[set_index]
                    try:
                        way = row.index(line)
                        hit = True
                    except ValueError:
                        hit = False
                    if hit:
                        if l1_lru:
                            order = l1_order[set_index]
                            if order is None:
                                order = list(range(l1_ways))
                                l1_order[set_index] = order
                            order.remove(way)
                            order.append(way)
                        else:
                            l1_policy.on_access(set_index, way)
                    else:
                        try:
                            way = row.index(None)
                        except ValueError:
                            if l1_lru:
                                order = l1_order[set_index]
                                if order is None:
                                    order = list(range(l1_ways))
                                    l1_order[set_index] = order
                                way = order[0]
                            else:
                                way = l1_policy.victim(set_index)
                        row[way] = line
                        if l1_lru:
                            order = l1_order[set_index]
                            if order is None:
                                order = list(range(l1_ways))
                                l1_order[set_index] = order
                            order.remove(way)
                            order.append(way)
                        else:
                            l1_policy.on_fill(set_index, way)
                        l1_seen.add(line)
                        # L1 miss: walk the line through the L2 (LRU).
                        l2_set = (line >> l2_shift) & l2_set_mask
                        l2_row = l2_tags[l2_set]
                        try:
                            l2_way = l2_row.index(line)
                            l2_hit = True
                        except ValueError:
                            l2_hit = False
                        if not l2_hit:
                            try:
                                l2_way = l2_row.index(None)
                            except ValueError:
                                order = l2_order[l2_set]
                                if order is None:
                                    order = list(range(l2_ways))
                                    l2_order[l2_set] = order
                                l2_way = order[0]
                            l2_row[l2_way] = line
                            l2_seen.add(line)
                        order = l2_order[l2_set]
                        if order is None:
                            order = list(range(l2_ways))
                            l2_order[l2_set] = order
                        order.remove(l2_way)
                        order.append(l2_way)
                line += line_bytes
            branch = record.branch
            if branch is not None:
                kind = branch.kind
                if kind is _CONDITIONAL:
                    address = record.branch_address
                    taken = branch.taken
                    if inline_gshare:
                        index = ((address >> g_shift) ^ g_history) & g_mask
                        counter = g_counters[index]
                        if taken:
                            if counter < 3:
                                g_counters[index] = counter + 1
                        elif counter > 0:
                            g_counters[index] = counter - 1
                        g_history = (
                            (g_history << 1) | (1 if taken else 0)
                        ) & g_mask
                    else:
                        direction.update(address, taken)
                    lp_index = (address >> lp_shift) & lp_mask
                    tag = address >> lp_shift
                    if lp_tags[lp_index] != tag:
                        if not taken:
                            lp_tags[lp_index] = tag
                            lp_trips[lp_index] = 0
                            lp_currents[lp_index] = 0
                            lp_conf[lp_index] = 0
                    elif taken:
                        lp_currents[lp_index] += 1
                    else:
                        observed = lp_currents[lp_index] + 1
                        if observed == lp_trips[lp_index]:
                            confidence = lp_conf[lp_index]
                            if confidence < 3:
                                lp_conf[lp_index] = confidence + 1
                        else:
                            lp_trips[lp_index] = observed
                            lp_conf[lp_index] = 0
                        lp_currents[lp_index] = 0
                elif kind is _INDIRECT:
                    address = record.branch_address
                    b_index = (address >> b_shift) & b_mask
                    b_tags[b_index] = address
                    b_targets[b_index] = branch.target

        # Write back the scalars and flattened tables.
        for slot in lb_range:
            entry = lb_entries[slot]
            entry.line = lb_lines[slot]
            entry.last_use = lb_uses[slot]
        buffers._clock = lb_clock
        if inline_gshare:
            direction._history = g_history
        if have_itlb:
            itlb._clock = t_clock
        return blocks
