"""Batched functional warming: the scalar trace walk, vectorized.

Functional warming is pure bookkeeping — no cycles pass, no results are
read — so its cost is entirely Python dispatch: per walked line, the
scalar walk (`repro.sampling.simulator._warm_interval`) pays an iTLB
method call, a line-buffer probe with per-entry attribute access, and on
misses a cache access that threads through policy objects and stats
counters. :class:`BatchedWarmer` flattens all of that into one tight
loop over each thread's span with every table bound to a local:

* line buffers become two flat lists (lines, last-use clocks) written
  back once per span;
* the gshare/loop/BTB updates are inlined (prediction *reads* touch only
  stats counters, which are not warm state, so the warmer skips them
  entirely and replicates just the state-mutating updates);
* L1I/L2 accesses operate on the tag rows and LRU order lists directly,
  with non-LRU policies falling back to their policy-object methods;
* stats counters are not maintained — except the compulsory-miss
  classifier sets (lines/pages ever seen), which are warm state.

Bit-identity with the scalar walk is a contract, enforced by tests: the
first-minimum victim tie-breaks, clock-bump counts and dict insertion
orders all replicate the scalar structures exactly. The warmer wraps a
*real* warming :class:`~repro.machine.system.System` (holding only
references to its structures and re-reading the inner tables each span,
so a ``restore_warm_state`` — which adopts new storage — never leaves
the warmer stale), which keeps capture/restore and every policy variant
working without a parallel implementation.
"""

from __future__ import annotations

from repro import kernels
from repro.branch.gshare import GsharePredictor
from repro.cache.replacement import LruPolicy
from repro.machine.system import System
from repro.sampling.slicer import Interval
from repro.trace.records import BasicBlockRecord, BranchKind
from repro.trace.stream import TraceSet

__all__ = ["BatchedWarmer"]

#: Compiled per-block line walk (lb/L1/L2), or None on the pure-Python
#: backend — the span walk below then keeps its original inline loop.
#: Only engaged for LRU L1s; the walk itself requires an LRU L2, which
#: the instruction-side hierarchy always uses.
_native_warm = kernels.warm_lines if kernels.NATIVE else None

_CONDITIONAL = BranchKind.CONDITIONAL
_INDIRECT = BranchKind.INDIRECT


class BatchedWarmer:
    """Walks intervals through a warming system's warm structures."""

    def __init__(self, system: System, traces: TraceSet) -> None:
        self.system = system
        self.traces = traces
        self._line_bytes = system.config.icache_line_bytes
        hardware_by_group = {
            id(hardware.group): hardware
            for hardware in system.group_hardware
        }
        #: Per-core structure tuples. Only the *objects* are cached —
        #: their inner tables are re-read every span, because restores
        #: adopt snapshot storage and would strand deeper references.
        self._contexts = []
        for core in system.cores:
            frontend = core.frontend
            hardware = hardware_by_group[id(core.cache_group)]
            self._contexts.append(
                (
                    frontend.line_buffers,
                    frontend.predictor,
                    frontend.itlb,
                    hardware.cache,
                    hardware.hierarchy.l2,
                )
            )

    def warm_interval(self, interval: Interval) -> int:
        """Functionally warm one interval; returns basic blocks walked."""
        blocks = 0
        for core_id, context in enumerate(self._contexts):
            start, end = interval.spans[core_id]
            if start == end:
                continue
            blocks += self._walk_span(
                context, self.traces.threads[core_id].records, start, end
            )
        return blocks

    def _walk_span(self, context, records, start, end) -> int:
        buffers, predictor, itlb, l1, l2 = context
        line_bytes = self._line_bytes
        line_mask = -line_bytes  # ~(line_bytes - 1) for powers of two

        # Line buffers: flatten to parallel lists, write back at the end.
        lb_entries = buffers._entries
        lb_lines = [entry.line for entry in lb_entries]
        lb_uses = [entry.last_use for entry in lb_entries]
        lb_clock = buffers._clock
        lb_range = range(len(lb_entries))
        lb_uses_get = lb_uses.__getitem__

        # Branch structures. Prediction reads only move stats counters
        # (not warm state); the inlined updates below replicate exactly
        # the state mutations of FetchPredictor.resolve.
        direction = predictor.direction
        # Strict type checks: a subclass overriding update() must take
        # the method-call path to keep bit-identity with the scalar walk.
        inline_gshare = type(direction) is GsharePredictor
        if inline_gshare:
            g_counters = direction._counters
            g_mask = direction._mask
            g_history = direction._history
            g_shift = direction._index_shift
        loop = predictor.loop
        lp_tags = loop._tags
        lp_trips = loop._trips
        lp_currents = loop._currents
        lp_conf = loop._confidences
        lp_mask = loop._mask
        lp_shift = loop._index_shift
        btb = predictor.btb
        b_tags = btb._tags
        b_targets = btb._targets
        b_mask = btb._mask
        b_shift = btb._index_shift

        have_itlb = itlb is not None
        if have_itlb:
            t_map = itlb._translations
            t_map_get = t_map.__getitem__
            t_seen = itlb._seen_pages
            t_clock = itlb._clock
            t_shift = itlb._page_shift
            t_capacity = itlb.entries

        # L1I: inline the LRU fast path, fall back to the policy object
        # for fifo/plru/random. The instruction-side L2 is always LRU.
        l1_tags = l1._tags
        l1_policy = l1._policy
        l1_shift = l1._line_shift
        l1_set_mask = l1._set_mask
        l1_seen = l1.stats._seen_lines
        l1_ways = l1.ways
        l1_lru = type(l1_policy) is LruPolicy
        l1_order = l1_policy._order if l1_lru else None
        l2_tags = l2._tags
        l2_order = l2._policy._order
        l2_shift = l2._line_shift
        l2_set_mask = l2._set_mask
        l2_seen = l2.stats._seen_lines
        l2_ways = l2.ways

        # Compiled fast path: the lb/L1/L2 line walk of each block runs
        # in one native call. The iTLB walk (independent clocks and
        # tables, so per-structure ordering is preserved) and the branch
        # updates stay in this loop either way.
        native_warm = _native_warm if l1_lru else None

        blocks = 0
        for record in records[start:end]:
            if type(record) is not BasicBlockRecord:
                continue
            blocks += 1
            line = record.address & line_mask
            end_address = record.end_address
            if native_warm is not None:
                if have_itlb:
                    while line < end_address:
                        page = line >> t_shift
                        t_clock += 1
                        if page in t_map:
                            t_map[page] = t_clock
                        else:
                            t_seen.add(page)
                            if len(t_map) >= t_capacity:
                                del t_map[min(t_map, key=t_map_get)]
                            t_map[page] = t_clock
                        line += line_bytes
                    line = record.address & line_mask
                lb_clock = native_warm(
                    line,
                    end_address,
                    line_bytes,
                    lb_lines,
                    lb_uses,
                    lb_clock,
                    l1_tags,
                    l1_order,
                    l1_ways,
                    l1_shift,
                    l1_set_mask,
                    l1_seen,
                    l2_tags,
                    l2_order,
                    l2_ways,
                    l2_shift,
                    l2_set_mask,
                    l2_seen,
                )
                line = end_address
            while line < end_address:
                if have_itlb:
                    page = line >> t_shift
                    t_clock += 1
                    if page in t_map:
                        t_map[page] = t_clock
                    else:
                        t_seen.add(page)
                        if len(t_map) >= t_capacity:
                            del t_map[min(t_map, key=t_map_get)]
                        t_map[page] = t_clock
                lb_clock += 1
                for slot in lb_range:
                    if lb_lines[slot] == line:
                        lb_uses[slot] = lb_clock
                        break
                else:
                    # Buffer miss: allocate the first least-recently-used
                    # slot (nothing is ever pending during warming), then
                    # access L1, and L2 on an L1 miss.
                    victim = min(lb_range, key=lb_uses_get)
                    lb_clock += 1
                    lb_lines[victim] = line
                    lb_uses[victim] = lb_clock
                    set_index = (line >> l1_shift) & l1_set_mask
                    row = l1_tags[set_index]
                    try:
                        way = row.index(line)
                        hit = True
                    except ValueError:
                        hit = False
                    if hit:
                        if l1_lru:
                            order = l1_order[set_index]
                            if order is None:
                                order = list(range(l1_ways))
                                l1_order[set_index] = order
                            order.remove(way)
                            order.append(way)
                        else:
                            l1_policy.on_access(set_index, way)
                    else:
                        try:
                            way = row.index(None)
                        except ValueError:
                            if l1_lru:
                                order = l1_order[set_index]
                                if order is None:
                                    order = list(range(l1_ways))
                                    l1_order[set_index] = order
                                way = order[0]
                            else:
                                way = l1_policy.victim(set_index)
                        row[way] = line
                        if l1_lru:
                            order = l1_order[set_index]
                            if order is None:
                                order = list(range(l1_ways))
                                l1_order[set_index] = order
                            order.remove(way)
                            order.append(way)
                        else:
                            l1_policy.on_fill(set_index, way)
                        l1_seen.add(line)
                        # L1 miss: walk the line through the L2 (LRU).
                        l2_set = (line >> l2_shift) & l2_set_mask
                        l2_row = l2_tags[l2_set]
                        try:
                            l2_way = l2_row.index(line)
                            l2_hit = True
                        except ValueError:
                            l2_hit = False
                        if not l2_hit:
                            try:
                                l2_way = l2_row.index(None)
                            except ValueError:
                                order = l2_order[l2_set]
                                if order is None:
                                    order = list(range(l2_ways))
                                    l2_order[l2_set] = order
                                l2_way = order[0]
                            l2_row[l2_way] = line
                            l2_seen.add(line)
                        order = l2_order[l2_set]
                        if order is None:
                            order = list(range(l2_ways))
                            l2_order[l2_set] = order
                        order.remove(l2_way)
                        order.append(l2_way)
                line += line_bytes
            branch = record.branch
            if branch is not None:
                kind = branch.kind
                if kind is _CONDITIONAL:
                    address = record.branch_address
                    taken = branch.taken
                    if inline_gshare:
                        index = ((address >> g_shift) ^ g_history) & g_mask
                        counter = g_counters[index]
                        if taken:
                            if counter < 3:
                                g_counters[index] = counter + 1
                        elif counter > 0:
                            g_counters[index] = counter - 1
                        g_history = (
                            (g_history << 1) | (1 if taken else 0)
                        ) & g_mask
                    else:
                        direction.update(address, taken)
                    lp_index = (address >> lp_shift) & lp_mask
                    tag = address >> lp_shift
                    if lp_tags[lp_index] != tag:
                        if not taken:
                            lp_tags[lp_index] = tag
                            lp_trips[lp_index] = 0
                            lp_currents[lp_index] = 0
                            lp_conf[lp_index] = 0
                    elif taken:
                        lp_currents[lp_index] += 1
                    else:
                        observed = lp_currents[lp_index] + 1
                        if observed == lp_trips[lp_index]:
                            confidence = lp_conf[lp_index]
                            if confidence < 3:
                                lp_conf[lp_index] = confidence + 1
                        else:
                            lp_trips[lp_index] = observed
                            lp_conf[lp_index] = 0
                        lp_currents[lp_index] = 0
                elif kind is _INDIRECT:
                    address = record.branch_address
                    b_index = (address >> b_shift) & b_mask
                    b_tags[b_index] = address
                    b_targets[b_index] = branch.target

        # Write back the scalars and flattened tables.
        for slot in lb_range:
            entry = lb_entries[slot]
            entry.line = lb_lines[slot]
            entry.last_use = lb_uses[slot]
        buffers._clock = lb_clock
        if inline_gshare:
            direction._history = g_history
        if have_itlb:
            itlb._clock = t_clock
        return blocks
