"""The sampled simulation driver: warm, measure, extrapolate.

:class:`SampledSimulator` runs one design point over one trace set under
a :class:`~repro.sampling.plan.SamplingPlan`:

* ``DETAIL`` intervals are materialised as standalone trace sets and run
  through the ordinary :class:`~repro.machine.simulator.SystemSimulator`
  on a freshly-built *hollow* system (no dense tables of its own) seeded
  with the warm state entering the interval, so the measurement
  machinery is exactly the full simulator's (both engines, both machine
  models).
* ``WARM`` intervals are *functionally warmed* on a long-lived warming
  system via :class:`~repro.sampling.warmer.BatchedWarmer` — state
  updates with no timing.
* ``SKIP`` intervals are fast-forwarded (no work at all).

Warming is **pure**: the state entering a detail interval is a function
of the trace prefix alone, never of any timing behaviour. The warming
machine functionally walks every non-``SKIP`` interval's span in trace
order — measurement intervals included — and each detail interval's
measurement run is seeded with the pure entry state. That purity is
what makes warm state *shareable*: an entry snapshot depends only on
the trace prefix and the structural shape of the warm structures
(:func:`repro.machine.system.warm_shape_digest`), so a persistent
:class:`~repro.sampling.checkpoints.CheckpointStore` can hand the same
checkpoints to every design point of a timing sweep and to resumed
shard hosts. A run whose checkpoints all hit never builds a warming
machine at all — the dominant cost of sampled simulation disappears.

Each measured interval pays a fixed startup transient (pipeline fill,
parallel-phase bring-up) that a contiguous full run pays only once; the
driver measures that constant once per run on a minimal probe trace and
subtracts it from every sampled interval's cycle count, so shrinking the
detail unit does not bias cycles upward.

The measured intervals extrapolate to a full-run
:class:`SimulationResult` *per stratum*: sampled counters scale by
their stratum's ``stratum_instructions / measured_instructions`` factor
(serial and parallel CPI differ by roughly the core count, so the
estimate never crosses strata), exhaustively-measured intervals enter
with weight 1, and the result's ``sampling`` payload records the plan,
the coverage, checkpoint hit/miss counters and per-metric 95 % relative
error estimates from the across-interval spread. A plan with ``skip =
0`` (coverage 1.0) short-circuits to the plain simulator and is
bit-identical to an unsampled run by construction.
"""

from __future__ import annotations

import time
from dataclasses import fields

from repro.cache.line_buffer import LookupState
from repro.errors import SimulationError
from repro.machine.config import BaseMachineConfig
from repro.machine.results import CacheGroupResult, CoreResult, SimulationResult
from repro.machine.simulator import SystemSimulator, simulate
from repro.machine.system import System, warm_shape_digest
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import PhaseTimer
from repro.obs.recorder import metrics_registry as _active_metrics
from repro.obs.recorder import tracer as _active_tracer
from repro.sampling.checkpoints import (
    CheckpointKey,
    Checkpointing,
    decode_state,
    encode_state,
    trace_fingerprint,
)
from repro.sampling.plan import SamplingPlan
from repro.sampling.slicer import (
    Interval,
    IntervalKind,
    interval_traceset,
    slice_traces,
)
from repro.sampling.warmer import BatchedWarmer
from repro.trace.records import (
    BasicBlockRecord,
    IpcRecord,
    SyncKind,
    SyncRecord,
)
from repro.trace.stream import ThreadTrace, TraceSet

__all__ = ["SampledSimulator", "simulate_sampled"]

#: Per-process memo of measured startup transients: the probe is a pure
#: function of (machine, design point, trace content, engine flags), and
#: a campaign worker runs many sampled plans over the same few
#: identities.
_TRANSIENT_MEMO: dict[tuple, int] = {}
_TRANSIENT_MEMO_LIMIT = 256


def _warm_interval(system: System, traces: TraceSet, interval: Interval) -> None:
    """Functionally warm one interval's records on ``system``.

    The *scalar reference walk*: trace-walks each thread's span through
    the thread's front-end warm structures and its cache group, in core
    order — iTLB translation and line-buffer lookup per line, L1I and
    L2 fills on misses, fetch predictor training per block. No cycles
    pass and no results are read from this system — only its warm state
    matters. Production warming goes through the bit-identical (and
    much faster) :class:`~repro.sampling.warmer.BatchedWarmer`; this
    walk is the specification the warmer is tested against.
    """
    hardware_by_group = {
        id(hardware.group): hardware for hardware in system.group_hardware
    }
    line_bytes = system.config.icache_line_bytes
    for core in system.cores:
        start, end = interval.spans[core.core_id]
        if start == end:
            continue
        frontend = core.frontend
        buffers = frontend.line_buffers
        predictor = frontend.predictor
        itlb = frontend.itlb
        hardware = hardware_by_group[id(core.cache_group)]
        cache = hardware.cache
        l2 = hardware.hierarchy.l2
        records = traces.threads[core.core_id].records
        for record in records[start:end]:
            if not isinstance(record, BasicBlockRecord):
                continue
            line = record.address & ~(line_bytes - 1)
            end_address = record.end_address
            while line < end_address:
                if itlb is not None:
                    itlb.translate(line)
                if buffers.lookup(line, count=False) is LookupState.MISS:
                    buffers.allocate(line)
                    buffers.fill(line)
                    if not cache.access(line).hit:
                        l2.access(line)
                line += line_bytes
            predictor.resolve(record.branch_address, record.branch)


def _transient_probe(traces: TraceSet, copies: int) -> TraceSet:
    """A minimal trace exposing the per-interval startup transient.

    Every materialised detail interval pays a fixed overhead a
    contiguous run pays once: parallel-phase bring-up, pipeline and
    fetch-queue fill, end-of-trace drain. The probe reproduces exactly
    that skeleton — one re-issued parallel phase, the thread's entry
    commit rate, ``copies`` repetitions of a representative basic block
    — measured with the same engine and flags as the intervals it
    corrects. Two probe sizes let the caller cancel the block's own
    steady-state cost (see :meth:`SampledSimulator._transient_cycles`).
    """
    threads = []
    for thread in traces.threads:
        records: list = [SyncRecord(SyncKind.PARALLEL_START, 0)]
        ipc = next(
            (r for r in thread.records if isinstance(r, IpcRecord)), None
        )
        if ipc is not None:
            records.append(IpcRecord(ipc.ipc))
        depth = 0
        for record in thread.records:
            if isinstance(record, SyncRecord):
                if record.kind is SyncKind.PARALLEL_START:
                    depth += 1
                elif record.kind is SyncKind.PARALLEL_END:
                    depth = max(0, depth - 1)
            elif isinstance(record, BasicBlockRecord) and depth > 0:
                records.extend([record] * copies)
                break
        records.append(SyncRecord(SyncKind.PARALLEL_END, 0))
        threads.append(
            ThreadTrace(thread_id=thread.thread_id, records=records)
        )
    return TraceSet(benchmark=traces.benchmark, threads=threads)


def _combine(
    weighted: list[tuple[SimulationResult, float]],
) -> SimulationResult:
    """Weighted sum of interval results into one extrapolated result.

    Exhaustively-measured intervals (the serial stratum) enter with
    weight 1.0; sampled intervals with their stratum's extrapolation
    factor. Every counter field of the result dataclasses is the
    rounded weighted sum — fields are enumerated through
    :func:`dataclasses.fields`, so a counter added to
    :class:`CoreResult` or :class:`CacheGroupResult` later is
    extrapolated automatically instead of silently defaulting to 0.
    """
    template = weighted[0][0]

    def combine_fields(cls, parts, identity: dict):
        """Weighted-sum every non-identity field of one dataclass."""
        kwargs = dict(identity)
        for field_info in fields(cls):
            name = field_info.name
            if name in kwargs:
                continue
            first = getattr(parts[0][0], name)
            if isinstance(first, dict):
                summed: dict[str, float] = {}
                for part, factor in parts:
                    for cause, value in getattr(part, name).items():
                        summed[cause] = summed.get(cause, 0.0) + value * factor
                kwargs[name] = {
                    cause: int(round(value))
                    for cause, value in summed.items()
                }
            else:
                kwargs[name] = int(
                    round(
                        sum(
                            getattr(part, name) * factor
                            for part, factor in parts
                        )
                    )
                )
        return cls(**kwargs)

    combined = SimulationResult(
        benchmark=template.benchmark,
        config_label=template.config_label,
        cycles=int(round(sum(r.cycles * f for r, f in weighted))),
        dram_accesses=int(
            round(sum(r.dram_accesses * f for r, f in weighted))
        ),
        lock_hand_offs=int(
            round(sum(r.lock_hand_offs * f for r, f in weighted))
        ),
        machine=template.machine,
    )
    for core_index, core in enumerate(template.cores):
        combined.cores.append(
            combine_fields(
                CoreResult,
                [(r.cores[core_index], f) for r, f in weighted],
                {"core_id": core.core_id},
            )
        )
    for group_index, group in enumerate(template.cache_groups):
        combined.cache_groups.append(
            combine_fields(
                CacheGroupResult,
                [(r.cache_groups[group_index], f) for r, f in weighted],
                {
                    "index": group.index,
                    "core_ids": group.core_ids,
                    "size_bytes": group.size_bytes,
                },
            )
        )
    return combined


def _relative_error(samples: list[float], floor: float = 0.0) -> float | None:
    """95 % relative error of the mean of ordered systematic samples.

    Uses the successive-difference variance estimator — the standard
    choice for systematic samples, where adjacent measurement intervals
    are adjacent in time: plain sample variance would count the
    *deliberate* phase-to-phase trend the schedule strides across as
    random scatter and wildly overstate the uncertainty. ``None`` when
    fewer than three intervals were measured (no usable spread
    information) or the metric's mean sits at/below ``floor`` (a
    relative error on ~zero is noise, not information).
    """
    n = len(samples)
    if n < 3:
        return None
    mean = sum(samples) / n
    if abs(mean) <= floor:
        return None
    successive = sum(
        (samples[i + 1] - samples[i]) ** 2 for i in range(n - 1)
    )
    variance_of_mean = successive / (2.0 * n * (n - 1))
    from repro.utils.stats import t95

    return abs(t95(n - 1) * variance_of_mean**0.5 / mean)


def _error_estimates(results: list[SimulationResult]) -> dict[str, float | None]:
    """Per-metric relative sampling error from the interval spread.

    ``results`` must be in trace order (the simulator measures
    intervals in order), which the successive-difference estimator
    relies on.
    """
    cpis = []
    icache_mpki = []
    branch_mpki = []
    for result in results:
        committed = result.total_committed
        if committed == 0:
            continue
        cpis.append(result.cycles / committed)
        icache_mpki.append(
            sum(group.misses for group in result.cache_groups)
            * 1000.0
            / committed
        )
        branch_mpki.append(
            sum(core.branch_mispredictions for core in result.cores)
            * 1000.0
            / committed
        )
    # MPKI floors: below ~0.05 misses per kilo-instruction the metric
    # is effectively zero and a relative error bar is meaningless.
    return {
        "cycles": _relative_error(cpis),
        "icache_mpki": _relative_error(icache_mpki, floor=0.05),
        "branch_mpki": _relative_error(branch_mpki, floor=0.05),
    }


def _merge_errors(
    per_stratum: list[dict[str, float | None]],
) -> dict[str, float | None]:
    """Combine per-stratum error estimates: worst case over strata.

    Each stratum extrapolates independently, so the conservative
    full-run bar for a metric is the largest stratum bar; strata with
    too few intervals for an estimate contribute nothing.
    """
    merged: dict[str, float | None] = {
        "cycles": None, "icache_mpki": None, "branch_mpki": None
    }
    for errors in per_stratum:
        for metric, value in errors.items():
            if value is None:
                continue
            current = merged[metric]
            merged[metric] = value if current is None else max(current, value)
    return merged


class SampledSimulator:
    """Runs one design point under a sampling plan; machine-agnostic."""

    def __init__(
        self,
        config: BaseMachineConfig,
        traces: TraceSet,
        plan: SamplingPlan,
        *,
        warm_l2: bool = True,
        cycle_skip: bool = True,
        checkpoints: Checkpointing | None = None,
    ) -> None:
        from repro.machine.model import model_for_config

        self.config = config
        self.traces = traces
        self.plan = plan
        self.warm_l2 = warm_l2
        self.cycle_skip = cycle_skip
        self.checkpoints = checkpoints
        self.model = model_for_config(config)

    def _checkpoint_key(self) -> CheckpointKey:
        """The identity of this run's warm-state checkpoints.

        The shape digest comes from the topology alone — no system is
        built — so a run whose checkpoints all hit never constructs a
        warming machine.
        """
        policy = self.checkpoints
        return CheckpointKey(
            machine=self.model.name,
            benchmark=self.traces.benchmark,
            seed=policy.seed,
            scale=policy.scale,
            threads=self.traces.thread_count,
            fingerprint=trace_fingerprint(self.traces),
            plan=self.plan.spec(),
            warm_l2=self.warm_l2,
            shape=warm_shape_digest(
                self.config, self.model.build_topology(self.config)
            ),
        )

    def _transient_cycles(self, max_cycles: int) -> int:
        """Measure the fixed per-interval startup transient once.

        Runs the probe skeleton at two sizes (one and two copies of the
        representative block) on *functionally pre-warmed* systems — a
        real measurement interval enters with restored warm state, so
        the probe must not charge compulsory misses to the transient —
        and extrapolates to zero blocks: ``2·c1 − c2`` cancels the
        block's own steady-state cost, leaving exactly the bring-up and
        drain overhead a materialised interval pays on top of its share
        of the contiguous run.
        """
        memo_key = (
            self.model.name,
            self.config.label(),
            trace_fingerprint(self.traces),
            self.warm_l2,
            self.cycle_skip,
        )
        cached = _TRANSIENT_MEMO.get(memo_key)
        if cached is not None:
            return cached

        def probe_cycles(copies: int) -> int:
            probe = _transient_probe(self.traces, copies)
            system = self.model.build_system(self.config, probe)
            if self.warm_l2:
                system.warm_instruction_l2s()
            full = Interval(
                kind=IntervalKind.WARM,
                index=0,
                spans=tuple(
                    (0, len(t.records)) for t in probe.threads
                ),
                entry_phases=tuple(() for _ in probe.threads),
                entry_ipc=tuple(None for _ in probe.threads),
                instructions=0,
            )
            # Bit-identical to the scalar _warm_interval reference walk,
            # but through the batched (and compiled, when built) path —
            # the same walk production warming takes.
            BatchedWarmer(system, probe).warm_interval(full)
            return SystemSimulator(
                system, cycle_skip=self.cycle_skip
            ).run(max_cycles).cycles

        transient = max(0, 2 * probe_cycles(1) - probe_cycles(2))
        if len(_TRANSIENT_MEMO) >= _TRANSIENT_MEMO_LIMIT:
            _TRANSIENT_MEMO.clear()
        _TRANSIENT_MEMO[memo_key] = transient
        return transient

    def run(self, max_cycles: int = 500_000_000) -> SimulationResult:
        """Simulate under the plan; return the extrapolated result."""
        plan = self.plan
        # Observability, grabbed once per run: a disabled recorder makes
        # `timer`/`tracer` None and every hook below a single check.
        timer = PhaseTimer() if _active_metrics() is not None else None
        tracer = _active_tracer()
        intervals = slice_traces(self.traces, plan)
        full_span = len(intervals) == 1 and intervals[0].spans == tuple(
            (0, len(t.records)) for t in self.traces.threads
        )
        if plan.exact or full_span:
            # Full coverage: the plain simulator is the measurement —
            # results are bit-identical to an unsampled run.
            started = time.perf_counter()
            result = simulate(
                self.config,
                self.traces,
                max_cycles=max_cycles,
                warm_l2=self.warm_l2,
                cycle_skip=self.cycle_skip,
            )
            result.sampling = self._payload(
                intervals,
                [result],
                errors={
                    "cycles": 0.0, "icache_mpki": 0.0, "branch_mpki": 0.0
                },
                exact=True,
            )
            if timer is not None:
                timer.add("measurement", time.perf_counter() - started)
                result.metrics = self._metrics_payload(
                    [result.metrics], intervals, timer, counters=None
                )
            return result

        policy = self.checkpoints
        store = policy.store if policy is not None else None
        key = self._checkpoint_key() if store is not None else None

        # Pure functional warming: `warming` tracks the warm state at
        # the entry of interval `walk_cursor`, except when
        # `pending_restore` holds the encoded state that must be
        # restored first (after a measurement run mutated the shared
        # storage, or after a checkpoint hit advanced the cursor without
        # walking). The machine — and its batched walker — are built
        # lazily: a run served entirely from checkpoints never pays for
        # either.
        warming: System | None = None
        warmer: BatchedWarmer | None = None
        pending_restore: dict | None = None
        walk_cursor = 0
        hits = misses = writes = 0

        def ensure_warming_through(target: int) -> None:
            """Advance warming to the entry of interval ``target``."""
            nonlocal warming, warmer, pending_restore, walk_cursor
            started = time.perf_counter()
            span_from = tracer.wall_ts() if tracer is not None else 0.0
            walked_from = walk_cursor
            if warming is None:
                warming = self.model.build_system(self.config, self.traces)
                if self.warm_l2 and pending_restore is None:
                    # A truly cold start; a restored checkpoint already
                    # contains the warmed (or unwarmed) L2 content.
                    warming.warm_instruction_l2s()
                warmer = BatchedWarmer(warming, self.traces)
            if pending_restore is not None:
                warming.restore_warm_state(decode_state(pending_restore))
                pending_restore = None
            for position in range(walk_cursor, target):
                interval = intervals[position]
                if interval.kind is IntervalKind.SKIP:
                    continue
                warmer.warm_interval(interval)
            walk_cursor = target
            if timer is not None:
                timer.add("warming", time.perf_counter() - started)
            if tracer is not None:
                tracer.wall_span(
                    "warming",
                    cat="sampling",
                    started_ts=span_from,
                    args={"intervals": target - walked_from},
                )

        exhaustive: list[SimulationResult] = []
        sampled: list[tuple[Interval, SimulationResult]] = []
        detail_ordinal = 0
        for position, interval in enumerate(intervals):
            if interval.kind is not IntervalKind.DETAIL:
                continue
            ordinal = detail_ordinal
            detail_ordinal += 1
            payload = None
            if store is not None and not policy.refresh:
                io_started = time.perf_counter()
                payload = store.get(key, ordinal)
                if timer is not None:
                    timer.add("store_io", time.perf_counter() - io_started)
            if payload is not None:
                hits += 1
                entry_state = decode_state(payload)
            else:
                misses += 1
                ensure_warming_through(position)
                # Hand the warm state to the measurement system by
                # reference (copying the dense tables per interval
                # would erase the sampling speedup); the encoded
                # snapshot repairs the warming machine afterwards.
                entry_state = warming.capture_warm_state()
                payload = encode_state(entry_state)
                if store is not None:
                    io_started = time.perf_counter()
                    store.put(key, ordinal, payload, self.config.label())
                    writes += 1
                    if timer is not None:
                        timer.add(
                            "store_io", time.perf_counter() - io_started
                        )
            pending_restore = payload
            walk_cursor = position
            measure_started = time.perf_counter()
            span_from = tracer.wall_ts() if tracer is not None else 0.0
            subset = interval_traceset(self.traces, interval)
            system = self.model.build_system(
                self.config, subset, hollow=True
            )
            system.restore_warm_state(entry_state)
            if tracer is not None:
                tracer.wall_span(
                    "materialise",
                    cat="sampling",
                    started_ts=span_from,
                    args={"interval": position, "ordinal": ordinal},
                )
                span_from = tracer.wall_ts()
            result = SystemSimulator(
                system, cycle_skip=self.cycle_skip
            ).run(max_cycles)
            if timer is not None:
                timer.add(
                    "measurement", time.perf_counter() - measure_started
                )
            if tracer is not None:
                tracer.wall_span(
                    "measure",
                    cat="sampling",
                    started_ts=span_from,
                    args={
                        "interval": position,
                        "ordinal": ordinal,
                        "cycles": result.cycles,
                    },
                )
            if interval.exhaustive:
                exhaustive.append(result)
            else:
                sampled.append((interval, result))

        sampled_results = [result for _, result in sampled]
        sampled_instructions = sum(
            r.total_committed for r in sampled_results
        )
        if not sampled or sampled_instructions == 0:
            raise SimulationError(
                f"sampling plan {plan.spec()} measured no instructions on "
                f"{self.traces.benchmark!r}; widen detail_instructions"
            )
        # Materialised intervals pay a fixed startup transient a
        # contiguous run pays once; subtract it from every sampled
        # interval so small detail units don't bias cycles upward.
        # Exhaustive intervals are measured, not extrapolated, and keep
        # their true cost.
        extrapolation_started = time.perf_counter()
        span_from = tracer.wall_ts() if tracer is not None else 0.0
        transient = self._transient_cycles(max_cycles)
        for result in sampled_results:
            result.cycles = max(1, result.cycles - transient)
        # Stratified extrapolation: exhaustively-measured intervals
        # count once; each sampled stratum is scaled so its measured
        # instructions stand in for the stratum's whole non-exhaustive
        # population — the estimate never crosses strata.
        weighted = [(r, 1.0) for r in exhaustive]
        factors: dict[str, float] = {}
        per_stratum_errors: list[dict[str, float | None]] = []
        for stratum in sorted({i.stratum for i, _ in sampled}):
            stratum_results = [
                result
                for interval, result in sampled
                if interval.stratum == stratum
            ]
            committed = sum(r.total_committed for r in stratum_results)
            if committed == 0:
                raise SimulationError(
                    f"sampling plan {plan.spec()} measured no "
                    f"instructions in the {stratum!r} stratum of "
                    f"{self.traces.benchmark!r}; widen "
                    f"detail_instructions"
                )
            stratum_total = sum(
                interval.instructions
                for interval in intervals
                if not interval.exhaustive and interval.stratum == stratum
            )
            factor = stratum_total / committed
            factors[stratum] = round(factor, 6)
            weighted.extend((r, factor) for r in stratum_results)
            per_stratum_errors.append(_error_estimates(stratum_results))
        result = _combine(weighted)
        counters = (
            {"hits": hits, "misses": misses, "writes": writes}
            if policy is not None
            else None
        )
        result.sampling = self._payload(
            intervals,
            exhaustive + sampled_results,
            errors=_merge_errors(per_stratum_errors),
            exact=False,
            factors=factors,
            transient=transient,
            counters=counters,
        )
        if timer is not None:
            timer.add(
                "extrapolation", time.perf_counter() - extrapolation_started
            )
            result.metrics = self._metrics_payload(
                [r.metrics for r in exhaustive + sampled_results],
                intervals,
                timer,
                counters,
            )
        if tracer is not None:
            tracer.wall_span("extrapolate", cat="sampling", started_ts=span_from)
        return result

    def _metrics_payload(
        self,
        interval_payloads: list,
        intervals: list[Interval],
        timer: PhaseTimer,
        counters: dict[str, int] | None,
    ) -> list[dict]:
        """Roll the interval runs' metrics up into the final result's.

        Kernel counters from every measured interval merge and gain the
        ``sampling=<plan spec>`` label; on top come the plan's interval
        mix, the checkpoint traffic and the ``phase.*`` wall-time
        attribution (warming / measurement / extrapolation / store I/O).
        """
        spec = self.plan.spec()
        labels = {"machine": self.model.name, "sampling": spec}
        registry = MetricsRegistry.rollup(interval_payloads).relabel(
            sampling=spec
        )
        for kind in IntervalKind:
            count = sum(1 for i in intervals if i.kind is kind)
            registry.counter(
                "sampling.intervals", kind=kind.name.lower(), **labels
            ).inc(count)
        for name, value in (counters or {}).items():
            registry.counter(f"sampling.checkpoint.{name}", **labels).inc(
                value
            )
        timer.record(registry, **labels)
        return registry.to_payload()

    def _payload(
        self,
        intervals: list[Interval],
        measured: list[SimulationResult],
        errors: dict[str, float | None],
        exact: bool,
        factors: dict[str, float] | None = None,
        transient: int = 0,
        counters: dict[str, int] | None = None,
    ) -> dict:
        plan = self.plan
        by_kind = {
            kind: sum(1 for i in intervals if i.kind is kind)
            for kind in IntervalKind
        }
        payload = {
            "plan": plan.spec(),
            # Effective coverage: an exact run (skip=0, or a trace too
            # small to slice) measured everything regardless of plan.
            "coverage": 1.0 if exact else round(plan.coverage, 6),
            "exact": exact,
            "intervals": {
                "detail": by_kind[IntervalKind.DETAIL],
                "warm": by_kind[IntervalKind.WARM],
                "skip": by_kind[IntervalKind.SKIP],
            },
            "measured_instructions": sum(
                r.total_committed for r in measured
            ),
            "total_instructions": self.traces.instruction_count,
            "factors": factors or {},
            "transient_cycles": transient,
            "errors": errors,
        }
        if counters is not None:
            payload["checkpoints"] = counters
        return payload


def simulate_sampled(
    config: BaseMachineConfig,
    traces: TraceSet,
    plan: SamplingPlan | None,
    max_cycles: int = 500_000_000,
    warm_l2: bool = True,
    cycle_skip: bool = True,
    checkpoints: Checkpointing | None = None,
) -> SimulationResult:
    """Sampled counterpart of :func:`repro.machine.simulator.simulate`.

    ``plan=None`` falls through to plain full simulation (no sampling
    payload); a plan with ``skip = 0`` runs fully detailed but carries
    an ``exact`` sampling payload; any other plan samples and
    extrapolates, reading and writing warm-state checkpoints when a
    :class:`~repro.sampling.checkpoints.Checkpointing` policy is given.
    """
    if plan is None:
        return simulate(
            config,
            traces,
            max_cycles=max_cycles,
            warm_l2=warm_l2,
            cycle_skip=cycle_skip,
        )
    return SampledSimulator(
        config,
        traces,
        plan,
        warm_l2=warm_l2,
        cycle_skip=cycle_skip,
        checkpoints=checkpoints,
    ).run(max_cycles)
