"""The sampled simulation driver: warm, measure, extrapolate.

:class:`SampledSimulator` runs one design point over one trace set under
a :class:`~repro.sampling.plan.SamplingPlan`:

* ``DETAIL`` intervals are materialised as standalone trace sets and run
  through the ordinary :class:`~repro.machine.simulator.SystemSimulator`
  on a freshly-built system seeded with the current warm state, so the
  measurement machinery is exactly the full simulator's (both engines,
  both machine models).
* ``WARM`` intervals are *functionally warmed* on a long-lived warming
  system: every basic block's lines are walked through the line
  buffers, L1I, L2 and iTLB, and every terminating branch trains the
  fetch predictor — state updates with no timing.
* ``SKIP`` intervals are fast-forwarded (no work at all).

Warm state flows through :meth:`System.capture_warm_state` /
:meth:`System.restore_warm_state`: warming system → measurement system
before each detail interval, and measurement system → warming system
after it (the detailed run is itself the best warming).

The measured intervals extrapolate to a full-run
:class:`SimulationResult`: every counter is scaled by
``total_instructions / measured_instructions``, and the result's
``sampling`` payload records the plan, the coverage and per-metric 95 %
relative error estimates from the across-interval spread. A plan with
``skip = 0`` (coverage 1.0) short-circuits to the plain simulator and
is bit-identical to an unsampled run by construction.
"""

from __future__ import annotations

from dataclasses import fields

from repro.cache.line_buffer import LookupState
from repro.errors import SimulationError
from repro.machine.config import BaseMachineConfig
from repro.machine.results import CacheGroupResult, CoreResult, SimulationResult
from repro.machine.simulator import SystemSimulator, simulate
from repro.machine.system import System
from repro.sampling.plan import SamplingPlan
from repro.sampling.slicer import (
    Interval,
    IntervalKind,
    interval_traceset,
    slice_traces,
)
from repro.trace.records import BasicBlockRecord
from repro.trace.stream import TraceSet

__all__ = ["SampledSimulator", "simulate_sampled"]


def _warm_interval(system: System, traces: TraceSet, interval: Interval) -> None:
    """Functionally warm one interval's records on ``system``.

    Trace-walks each thread's span through the thread's front-end warm
    structures and its cache group, in core order: iTLB translation and
    line-buffer lookup per line, L1I and L2 fills on misses, fetch
    predictor training per block. No cycles pass and no results are
    read from this system — only its warm state matters.
    """
    hardware_by_group = {
        id(hardware.group): hardware for hardware in system.group_hardware
    }
    line_bytes = system.config.icache_line_bytes
    for core in system.cores:
        start, end = interval.spans[core.core_id]
        if start == end:
            continue
        frontend = core.frontend
        buffers = frontend.line_buffers
        predictor = frontend.predictor
        itlb = frontend.itlb
        hardware = hardware_by_group[id(core.cache_group)]
        cache = hardware.cache
        l2 = hardware.hierarchy.l2
        records = traces.threads[core.core_id].records
        for record in records[start:end]:
            if not isinstance(record, BasicBlockRecord):
                continue
            line = record.address & ~(line_bytes - 1)
            end_address = record.end_address
            while line < end_address:
                if itlb is not None:
                    itlb.translate(line)
                if buffers.lookup(line, count=False) is LookupState.MISS:
                    buffers.allocate(line)
                    buffers.fill(line)
                    if not cache.access(line).hit:
                        l2.access(line)
                line += line_bytes
            predictor.resolve(record.branch_address, record.branch)


def _combine(
    weighted: list[tuple[SimulationResult, float]],
) -> SimulationResult:
    """Weighted sum of interval results into one extrapolated result.

    Exhaustively-measured intervals (the serial stratum) enter with
    weight 1.0; sampled parallel intervals with the stratum's
    extrapolation factor. Every counter field of the result dataclasses
    is the rounded weighted sum — fields are enumerated through
    :func:`dataclasses.fields`, so a counter added to
    :class:`CoreResult` or :class:`CacheGroupResult` later is
    extrapolated automatically instead of silently defaulting to 0.
    """
    template = weighted[0][0]

    def combine_fields(cls, parts, identity: dict):
        """Weighted-sum every non-identity field of one dataclass."""
        kwargs = dict(identity)
        for field_info in fields(cls):
            name = field_info.name
            if name in kwargs:
                continue
            first = getattr(parts[0][0], name)
            if isinstance(first, dict):
                summed: dict[str, float] = {}
                for part, factor in parts:
                    for cause, value in getattr(part, name).items():
                        summed[cause] = summed.get(cause, 0.0) + value * factor
                kwargs[name] = {
                    cause: int(round(value))
                    for cause, value in summed.items()
                }
            else:
                kwargs[name] = int(
                    round(
                        sum(
                            getattr(part, name) * factor
                            for part, factor in parts
                        )
                    )
                )
        return cls(**kwargs)

    combined = SimulationResult(
        benchmark=template.benchmark,
        config_label=template.config_label,
        cycles=int(round(sum(r.cycles * f for r, f in weighted))),
        dram_accesses=int(
            round(sum(r.dram_accesses * f for r, f in weighted))
        ),
        lock_hand_offs=int(
            round(sum(r.lock_hand_offs * f for r, f in weighted))
        ),
        machine=template.machine,
    )
    for core_index, core in enumerate(template.cores):
        combined.cores.append(
            combine_fields(
                CoreResult,
                [(r.cores[core_index], f) for r, f in weighted],
                {"core_id": core.core_id},
            )
        )
    for group_index, group in enumerate(template.cache_groups):
        combined.cache_groups.append(
            combine_fields(
                CacheGroupResult,
                [(r.cache_groups[group_index], f) for r, f in weighted],
                {
                    "index": group.index,
                    "core_ids": group.core_ids,
                    "size_bytes": group.size_bytes,
                },
            )
        )
    return combined


def _relative_error(samples: list[float], floor: float = 0.0) -> float | None:
    """95 % relative error of the mean of ordered systematic samples.

    Uses the successive-difference variance estimator — the standard
    choice for systematic samples, where adjacent measurement intervals
    are adjacent in time: plain sample variance would count the
    *deliberate* phase-to-phase trend the schedule strides across as
    random scatter and wildly overstate the uncertainty. ``None`` when
    fewer than three intervals were measured (no usable spread
    information) or the metric's mean sits at/below ``floor`` (a
    relative error on ~zero is noise, not information).
    """
    n = len(samples)
    if n < 3:
        return None
    mean = sum(samples) / n
    if abs(mean) <= floor:
        return None
    successive = sum(
        (samples[i + 1] - samples[i]) ** 2 for i in range(n - 1)
    )
    variance_of_mean = successive / (2.0 * n * (n - 1))
    from repro.utils.stats import t95

    return abs(t95(n - 1) * variance_of_mean**0.5 / mean)


def _error_estimates(results: list[SimulationResult]) -> dict[str, float | None]:
    """Per-metric relative sampling error from the interval spread.

    ``results`` must be in trace order (the simulator measures
    intervals in order), which the successive-difference estimator
    relies on.
    """
    cpis = []
    icache_mpki = []
    branch_mpki = []
    for result in results:
        committed = result.total_committed
        if committed == 0:
            continue
        cpis.append(result.cycles / committed)
        icache_mpki.append(
            sum(group.misses for group in result.cache_groups)
            * 1000.0
            / committed
        )
        branch_mpki.append(
            sum(core.branch_mispredictions for core in result.cores)
            * 1000.0
            / committed
        )
    # MPKI floors: below ~0.05 misses per kilo-instruction the metric
    # is effectively zero and a relative error bar is meaningless.
    return {
        "cycles": _relative_error(cpis),
        "icache_mpki": _relative_error(icache_mpki, floor=0.05),
        "branch_mpki": _relative_error(branch_mpki, floor=0.05),
    }


class SampledSimulator:
    """Runs one design point under a sampling plan; machine-agnostic."""

    def __init__(
        self,
        config: BaseMachineConfig,
        traces: TraceSet,
        plan: SamplingPlan,
        *,
        warm_l2: bool = True,
        cycle_skip: bool = True,
    ) -> None:
        from repro.machine.model import model_for_config

        self.config = config
        self.traces = traces
        self.plan = plan
        self.warm_l2 = warm_l2
        self.cycle_skip = cycle_skip
        self.model = model_for_config(config)

    def run(self, max_cycles: int = 500_000_000) -> SimulationResult:
        """Simulate under the plan; return the extrapolated result."""
        plan = self.plan
        intervals = slice_traces(self.traces, plan)
        full_span = len(intervals) == 1 and intervals[0].spans == tuple(
            (0, len(t.records)) for t in self.traces.threads
        )
        if plan.exact or full_span:
            # Full coverage: the plain simulator is the measurement —
            # results are bit-identical to an unsampled run.
            result = simulate(
                self.config,
                self.traces,
                max_cycles=max_cycles,
                warm_l2=self.warm_l2,
                cycle_skip=self.cycle_skip,
            )
            result.sampling = self._payload(
                intervals, [result], [], exact=True
            )
            return result

        warming = self.model.build_system(self.config, self.traces)
        if self.warm_l2:
            warming.warm_instruction_l2s()
        exhaustive: list[SimulationResult] = []
        sampled: list[SimulationResult] = []
        for interval in intervals:
            if interval.kind is IntervalKind.SKIP:
                continue
            if interval.kind is IntervalKind.WARM:
                _warm_interval(warming, self.traces, interval)
                continue
            subset = interval_traceset(self.traces, interval)
            system = self.model.build_system(self.config, subset)
            system.restore_warm_state(warming.capture_warm_state())
            result = SystemSimulator(
                system, cycle_skip=self.cycle_skip
            ).run(max_cycles)
            (exhaustive if interval.exhaustive else sampled).append(result)
            # The detailed interval is itself the best warming: carry
            # its state back into the warming machine.
            warming.restore_warm_state(system.capture_warm_state())
        sampled_instructions = sum(r.total_committed for r in sampled)
        if not sampled or sampled_instructions == 0:
            raise SimulationError(
                f"sampling plan {plan.spec()} measured no instructions on "
                f"{self.traces.benchmark!r}; widen detail_instructions"
            )
        # Stratified extrapolation: exhaustively-measured intervals (the
        # serial stretches) count once; the sampled parallel stratum is
        # scaled so its measured instructions stand in for the whole
        # stratum.
        stratum_total = sum(
            interval.instructions
            for interval in intervals
            if not interval.exhaustive
        )
        factor = stratum_total / sampled_instructions
        result = _combine(
            [(r, 1.0) for r in exhaustive] + [(r, factor) for r in sampled]
        )
        result.sampling = self._payload(
            intervals, exhaustive + sampled, sampled, exact=False
        )
        return result

    def _payload(
        self,
        intervals: list[Interval],
        measured: list[SimulationResult],
        sampled: list[SimulationResult],
        exact: bool,
    ) -> dict:
        plan = self.plan
        by_kind = {
            kind: sum(1 for i in intervals if i.kind is kind)
            for kind in IntervalKind
        }
        measured_instructions = sum(r.total_committed for r in measured)
        if exact:
            errors: dict[str, float | None] = {
                "cycles": 0.0, "icache_mpki": 0.0, "branch_mpki": 0.0
            }
        else:
            # Spread across the *sampled* intervals only: the exhaustive
            # serial stratum contributes no extrapolation uncertainty.
            errors = _error_estimates(sampled)
        return {
            "plan": plan.spec(),
            # Effective coverage: an exact run (skip=0, or a trace too
            # small to slice) measured everything regardless of plan.
            "coverage": 1.0 if exact else round(plan.coverage, 6),
            "exact": exact,
            "intervals": {
                "detail": by_kind[IntervalKind.DETAIL],
                "warm": by_kind[IntervalKind.WARM],
                "skip": by_kind[IntervalKind.SKIP],
            },
            "measured_instructions": measured_instructions,
            "total_instructions": self.traces.instruction_count,
            "errors": errors,
        }


def simulate_sampled(
    config: BaseMachineConfig,
    traces: TraceSet,
    plan: SamplingPlan | None,
    max_cycles: int = 500_000_000,
    warm_l2: bool = True,
    cycle_skip: bool = True,
) -> SimulationResult:
    """Sampled counterpart of :func:`repro.machine.simulator.simulate`.

    ``plan=None`` falls through to plain full simulation (no sampling
    payload); a plan with ``skip = 0`` runs fully detailed but carries
    an ``exact`` sampling payload; any other plan samples and
    extrapolates.
    """
    if plan is None:
        return simulate(
            config,
            traces,
            max_cycles=max_cycles,
            warm_l2=warm_l2,
            cycle_skip=cycle_skip,
        )
    return SampledSimulator(
        config, traces, plan, warm_l2=warm_l2, cycle_skip=cycle_skip
    ).run(max_cycles)
