"""Systematic sampling plans for interval-sampled simulation.

A :class:`SamplingPlan` describes one SMARTS-style systematic schedule
over a trace's aggregate instruction stream: the run is divided into
periods of ``detail + skip`` instructions; each period's tail ``detail``
instructions are simulated in full cycle-level detail, the last
``warmup`` instructions of the skipped span are *functionally warmed*
(caches, predictors and TLBs are trace-walked without timing), and the
rest is fast-forwarded. ``seed`` rotates the phase of the schedule so
independent plans measure different interval sets of the same trace.

``skip = 0`` means full coverage: every instruction is simulated in
detail, and the sampled result is bit-identical to an unsampled run
(the sampled simulator short-circuits to the plain path).

Plans serialize to a compact spec string (``d6000:s42000:w6000:r0``)
that doubles as the campaign store's sampling flavor key, so sampled
and full runs can never share a cache entry.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["SamplingPlan", "resolve_plan", "sampling_modes"]


# _PRESETS is defined after the dataclass (it holds plan literals).


@dataclass(frozen=True)
class SamplingPlan:
    """One systematic sampling schedule (sizes in aggregate instructions
    summed across all threads).

    Attributes:
        detail_instructions: length of each detailed measurement
            interval.
        skip_instructions: length of the span between measurements;
            0 disables sampling (full coverage, exact results).
        warmup_instructions: tail of each skipped span that is
            functionally warmed before the next measurement; the
            remainder is fast-forwarded with no state updates. Clamped
            semantics: must not exceed ``skip_instructions``.
        seed: rotates the schedule's phase within the first period, so
            seeds measure different (but equally systematic) interval
            sets.
    """

    detail_instructions: int
    skip_instructions: int
    warmup_instructions: int
    seed: int = 0

    def __post_init__(self) -> None:
        if self.detail_instructions < 1:
            raise ConfigurationError(
                f"detail_instructions must be >= 1, got "
                f"{self.detail_instructions}"
            )
        if self.skip_instructions < 0:
            raise ConfigurationError(
                f"skip_instructions must be >= 0, got "
                f"{self.skip_instructions}"
            )
        if not (0 <= self.warmup_instructions <= self.skip_instructions):
            raise ConfigurationError(
                f"warmup_instructions must lie in [0, skip_instructions="
                f"{self.skip_instructions}], got {self.warmup_instructions}"
            )
        if self.seed < 0:
            raise ConfigurationError(f"seed must be >= 0, got {self.seed}")

    @property
    def period(self) -> int:
        """Instructions per sampling period (skip span + measurement)."""
        return self.detail_instructions + self.skip_instructions

    @property
    def coverage(self) -> float:
        """Fraction of the instruction stream simulated in detail."""
        return self.detail_instructions / self.period

    @property
    def exact(self) -> bool:
        """True when the plan covers everything (results are exact)."""
        return self.skip_instructions == 0

    @property
    def phase_offset(self) -> int:
        """Seed-derived start offset of the schedule within a period."""
        if self.exact:
            return 0
        # A fixed multiplicative hash spreads consecutive seeds across
        # the period without clustering near zero.
        return (self.seed * 2_654_435_761) % self.period

    # -- spec strings ------------------------------------------------------

    def spec(self) -> str:
        """Canonical compact form, e.g. ``d6000:s42000:w6000:r0``."""
        return (
            f"d{self.detail_instructions}:s{self.skip_instructions}:"
            f"w{self.warmup_instructions}:r{self.seed}"
        )

    @classmethod
    def from_spec(cls, text: str) -> SamplingPlan:
        """Parse a :meth:`spec` string back into a plan."""
        fields = {}
        for part in text.split(":"):
            if len(part) < 2 or part[0] not in "dswr" or part[0] in fields:
                raise ConfigurationError(
                    f"malformed sampling spec {text!r}; expected "
                    f"d<detail>:s<skip>:w<warmup>:r<seed>"
                )
            try:
                fields[part[0]] = int(part[1:])
            except ValueError:
                raise ConfigurationError(
                    f"malformed sampling spec {text!r}: {part!r} is not "
                    f"an integer field"
                ) from None
        missing = set("dsw") - set(fields)
        if missing:
            raise ConfigurationError(
                f"sampling spec {text!r} lacks field(s) "
                f"{sorted(missing)}"
            )
        return cls(
            detail_instructions=fields["d"],
            skip_instructions=fields["s"],
            warmup_instructions=fields["w"],
            seed=fields.get("r", 0),
        )


#: Named presets accepted by the CLIs (``--sampling``). ``none`` maps
#: to no plan (full detailed simulation).
_PRESETS = {
    # 1/20 coverage, fully-warmed skip spans: the wall-time lever.
    # The sampled simulator measures and subtracts the per-interval
    # startup transient, so detail units this small stay unbiased.
    "fast": SamplingPlan(
        detail_instructions=8_000,
        skip_instructions=152_000,
        warmup_instructions=152_000,
    ),
    # 1/3 coverage for tighter extrapolation error (and enough
    # measured intervals for across-interval error estimates).
    "precise": SamplingPlan(
        detail_instructions=24_000,
        skip_instructions=48_000,
        warmup_instructions=48_000,
    ),
}


def sampling_modes() -> list[str]:
    """The named modes the CLIs advertise."""
    return ["none", *sorted(_PRESETS)]


def resolve_plan(text: str) -> SamplingPlan | None:
    """Resolve a CLI/``RunSpec`` sampling value into a plan.

    Accepts the named modes (``none``/``fast``/``precise``), a raw spec
    string (``d6000:s42000:w6000:r0``), or the empty string (same as
    ``none``). Returns ``None`` when sampling is disabled.
    """
    text = text.strip()
    if not text or text == "none":
        return None
    preset = _PRESETS.get(text)
    if preset is not None:
        return preset
    return SamplingPlan.from_spec(text)
