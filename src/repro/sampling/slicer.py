"""Deterministic, sync-aligned interval slicing over a :class:`TraceSet`.

The slicer turns a multi-threaded trace into an ordered list of
:class:`Interval` objects — contiguous per-thread record spans tagged
``DETAIL`` (simulate in full), ``WARM`` (functionally warm the caches
and predictors) or ``SKIP`` (fast-forward) — such that concatenating
every interval's spans reproduces the original records exactly, and no
synchronisation construct ever straddles an interval boundary:

* **Global sync events** (``PARALLEL_START``/``PARALLEL_END``/
  ``BARRIER``) partition each thread's stream into *windows*. Every
  thread participates in the same event sequence, so window ``w`` means
  the same point of the program on every thread. Cuts are only placed
  *within* one window — strictly before its terminating event record —
  or exactly at a window boundary, so a join's arrivals always land in
  one interval together and a fork's announcement is never separated
  from the workers it releases (threads entering an interval mid-phase
  get the already-open ``PARALLEL_START`` records re-issued by the
  interval materialiser, restoring both runtime state and the parallel
  bracketing that machine-specific record transforms key on).
* **Critical sections** (``WAIT`` … ``SIGNAL``) are never split: cut
  positions are nudged off any span where the thread holds a lock.

Within a window, each thread cuts at the record boundary closest to the
same *fraction* of its window work, so intervals line up across threads
even though threads progress at different rates.

The systematic detail/warm/skip schedule applies *per stratum*. Serial
windows — stretches where only the master thread executes — have an
aggregate CPI that differs from the parallel bulk by roughly the core
count, so extrapolating them from parallel-phase measurements would
bias the cycle estimate far more than their size suggests. Small serial
strata (most codes) are measured exhaustively; a serial stratum big
enough to hold at least two full sampling periods (serial-heavy codes
like CoMD) gets its own systematic schedule over the serial instruction
line, and the extrapolation runs per stratum. Either way the sampled
estimate never crosses strata.

Slicing is a pure function of (records, plan): every host, every
process and every run agrees on the boundaries.
"""

from __future__ import annotations

import enum
from bisect import bisect_left
from dataclasses import dataclass

from repro.sampling.plan import SamplingPlan
from repro.trace.records import (
    BasicBlockRecord,
    IpcRecord,
    SyncKind,
    SyncRecord,
)
from repro.trace.stream import ThreadTrace, TraceSet

__all__ = ["Interval", "IntervalKind", "interval_traceset", "slice_traces"]

#: Sync kinds every thread observes in the same order (the global
#: program structure); WAIT/SIGNAL are thread-local and excluded.
_GLOBAL_KINDS = (SyncKind.PARALLEL_START, SyncKind.PARALLEL_END, SyncKind.BARRIER)


class IntervalKind(enum.Enum):
    """What the sampled simulator does with one interval."""

    DETAIL = "detail"  # full cycle-level simulation (measured)
    WARM = "warm"  # functional warming: state updates, no timing
    SKIP = "skip"  # fast-forward: no simulation, no state updates


@dataclass(frozen=True)
class Interval:
    """One slice of the trace, aligned across threads.

    Attributes:
        kind: how the sampled simulator treats this interval.
        index: position in the slicing (0-based).
        spans: per-thread ``[start, end)`` record index ranges into the
            original :class:`TraceSet`.
        entry_phases: per-thread tuple of parallel-phase ids open at the
            interval's entry (innermost last); the materialiser re-issues
            their ``PARALLEL_START`` records.
        entry_ipc: per-thread commit rate in force at entry (``None``
            when the thread has not passed an IPC record yet).
        instructions: aggregate dynamic instructions across all threads.
        exhaustive: True for intervals measured by construction rather
            than by the systematic schedule (serial stretches, degenerate
            whole-trace slices); their counts enter the extrapolation
            with weight 1 instead of the sampling factor.
        stratum: which stratification stratum the interval belongs to —
            ``"parallel"`` (the worker bulk) or ``"serial"`` (master-only
            stretches). Sampled intervals extrapolate within their own
            stratum only: serial CPI differs from parallel CPI by
            roughly the core count, so cross-stratum extrapolation would
            bias cycles badly.
    """

    kind: IntervalKind
    index: int
    spans: tuple[tuple[int, int], ...]
    entry_phases: tuple[tuple[int, ...], ...]
    entry_ipc: tuple[float | None, ...]
    instructions: int
    exhaustive: bool = False
    stratum: str = "parallel"


@dataclass
class _ThreadIndex:
    """Prefix metadata over one thread's records.

    All arrays have ``len(records) + 1`` entries; index ``i`` describes
    the state *before* record ``i``.
    """

    insts: list[int]  # cumulative instruction count
    lock_depth: list[int]  # open WAITs without their SIGNAL
    phases: list[tuple[int, ...]]  # open parallel phases (stack)
    ipc: list[float | None]  # last IPC record value seen
    events: list[tuple[int, int]]  # (record index, position) per global event


def _index_thread(trace: ThreadTrace) -> _ThreadIndex:
    insts = [0]
    lock_depth = [0]
    phases: list[tuple[int, ...]] = [()]
    ipc: list[float | None] = [None]
    events: list[tuple[int, int]] = []
    depth = 0
    stack: tuple[int, ...] = ()
    current_ipc: float | None = None
    total = 0
    for position, record in enumerate(trace.records):
        if isinstance(record, BasicBlockRecord):
            total += record.instruction_count
        elif isinstance(record, IpcRecord):
            current_ipc = record.ipc
        elif isinstance(record, SyncRecord):
            if record.kind is SyncKind.WAIT:
                depth += 1
            elif record.kind is SyncKind.SIGNAL:
                depth = max(0, depth - 1)
            elif record.kind is SyncKind.PARALLEL_START:
                stack = stack + (record.object_id,)
            elif record.kind is SyncKind.PARALLEL_END:
                stack = stack[:-1]
            if record.kind in _GLOBAL_KINDS:
                events.append((position, len(events)))
        insts.append(total)
        lock_depth.append(depth)
        phases.append(stack)
        ipc.append(current_ipc)
    return _ThreadIndex(
        insts=insts, lock_depth=lock_depth, phases=phases, ipc=ipc,
        events=events,
    )


def _global_event_signature(traces: TraceSet) -> list[tuple[int, int]] | None:
    """The (kind, object_id) sequence shared by every thread, or ``None``
    when threads disagree (slicing then degenerates to one interval)."""
    signature: list[tuple[int, int]] | None = None
    for trace in traces.threads:
        seq = [
            (int(record.kind), record.object_id)
            for record in trace.records
            if isinstance(record, SyncRecord) and record.kind in _GLOBAL_KINDS
        ]
        if signature is None:
            signature = seq
        elif seq != signature:
            return None
    return signature or []


def _full_interval(traces: TraceSet, kind: IntervalKind) -> Interval:
    return Interval(
        kind=kind,
        index=0,
        spans=tuple((0, len(t.records)) for t in traces.threads),
        entry_phases=tuple(() for _ in traces.threads),
        entry_ipc=tuple(None for _ in traces.threads),
        instructions=traces.instruction_count,
        exhaustive=True,
    )


def _plan_segments(
    total: int, plan: SamplingPlan
) -> list[tuple[IntervalKind, int, int]]:
    """The systematic schedule over the aggregate instruction line."""
    period = plan.period
    skip_only = plan.skip_instructions - plan.warmup_instructions
    thresholds = (
        (skip_only, IntervalKind.SKIP),
        (plan.skip_instructions, IntervalKind.WARM),
        (period, IntervalKind.DETAIL),
    )
    segments: list[tuple[IntervalKind, int, int]] = []
    g = 0
    phase = plan.phase_offset
    while g < total:
        for threshold, kind in thresholds:
            if phase < threshold:
                length = min(threshold - phase, total - g)
                segments.append((kind, g, g + length))
                g += length
                phase += length
                break
        else:
            phase = 0
    # Merge adjacent same-kind segments (phase wrap produces splits).
    merged: list[tuple[IntervalKind, int, int]] = []
    for kind, start, end in segments:
        if start == end:
            continue
        if merged and merged[-1][0] is kind and merged[-1][2] == start:
            merged[-1] = (kind, merged[-1][1], end)
        else:
            merged.append((kind, start, end))
    return merged


def slice_traces(traces: TraceSet, plan: SamplingPlan) -> list[Interval]:
    """Slice a trace set into sampling intervals under ``plan``.

    Returns intervals in trace order whose spans tile every thread's
    records exactly. Traces whose threads disagree on the global sync
    event sequence (never the case for synthesized benchmarks) are not
    sliceable and come back as one full ``DETAIL`` interval, which the
    sampled simulator treats as an exact run.
    """
    signature = _global_event_signature(traces)
    if signature is None:
        return [_full_interval(traces, IntervalKind.DETAIL)]
    indexes = [_index_thread(trace) for trace in traces.threads]
    total = traces.instruction_count
    if plan.exact or total <= plan.detail_instructions:
        return [_full_interval(traces, IntervalKind.DETAIL)]

    # Window bounds per thread: window w spans records
    # [bounds[w], bounds[w + 1]) where the last record of every window
    # but the final one is its terminating global event.
    window_count = len(signature) + 1
    bounds: list[list[int]] = []
    for trace, index in zip(traces.threads, indexes):
        b = [0]
        for event_position, _ in index.events:
            b.append(event_position + 1)
        b.append(len(trace.records))
        bounds.append(b)
    # Aggregate and worker-side instructions per window; a window with
    # no worker instructions is a serial stretch (master only).
    window_insts = []
    window_serial = []
    for w in range(window_count):
        per_thread = [
            index.insts[bounds[t][w + 1]] - index.insts[bounds[t][w]]
            for t, index in enumerate(indexes)
        ]
        window_insts.append(sum(per_thread))
        window_serial.append(sum(per_thread[1:]) == 0)
    parallel_total = sum(
        insts
        for insts, serial in zip(window_insts, window_serial)
        if not serial
    )
    if parallel_total <= plan.detail_instructions:
        return [_full_interval(traces, IntervalKind.DETAIL)]

    def in_window_cut(w: int, fraction: float) -> tuple[int, ...]:
        """Per-thread cut indices at ``fraction`` of window ``w``."""
        cuts = []
        for index, thread_bounds in zip(indexes, bounds):
            start, end = thread_bounds[w], thread_bounds[w + 1]
            # Cuts stay strictly before the window's terminating event
            # record so a join's arrivals never split across intervals.
            limit = end - 1 if w < window_count - 1 else end
            start_insts = index.insts[start]
            window_span = index.insts[end] - start_insts
            target = start_insts + fraction * window_span
            position = bisect_left(index.insts, target, lo=start, hi=limit)
            # Nudge off any span where the thread holds a lock (never
            # split a WAIT .. SIGNAL critical section).
            while position < limit and index.lock_depth[position] > 0:
                position += 1
            while position > start and index.lock_depth[position] > 0:
                position -= 1
            cuts.append(min(position, limit))
        return tuple(cuts)

    # Serial-heavy codes (CoMD): when the master-only stratum is large
    # enough to hold a full sampling period with a guaranteed DETAIL
    # segment, sample it with its own systematic schedule instead of
    # simulating every serial instruction in detail. Small serial
    # strata stay exhaustively measured — sampling a stratum that fits
    # inside one period would extrapolate from a sliver.
    serial_total = sum(
        insts
        for insts, serial in zip(window_insts, window_serial)
        if serial
    )
    serial_segments: list[tuple[IntervalKind, int, int]] | None = None
    if serial_total >= 2 * plan.period:
        candidate = _plan_segments(serial_total, plan)
        if any(kind is IntervalKind.DETAIL for kind, _, _ in candidate):
            serial_segments = candidate

    # Build the boundary-event list: (cut vector, kind, exhaustive,
    # stratum) of the interval that starts there. Serial windows are
    # exhaustively DETAIL (or follow their own schedule, above);
    # parallel windows follow the systematic schedule over the
    # parallel-only instruction line.
    segments = _plan_segments(parallel_total, plan)
    events: list[tuple[tuple[int, ...], IntervalKind, bool, str]] = []
    parallel_position = 0
    segment_index = 0
    serial_position = 0
    serial_index = 0
    for w in range(window_count):
        window_start = tuple(thread_bounds[w] for thread_bounds in bounds)
        if window_serial[w]:
            if serial_segments is None:
                events.append(
                    (window_start, IntervalKind.DETAIL, True, "serial")
                )
                continue
            window_end_position = serial_position + window_insts[w]
            while (
                serial_index < len(serial_segments)
                and serial_segments[serial_index][2] <= serial_position
            ):
                serial_index += 1
            events.append(
                (
                    window_start,
                    serial_segments[serial_index][0],
                    False,
                    "serial",
                )
            )
            probe = serial_index + 1
            while (
                probe < len(serial_segments)
                and serial_segments[probe][1] < window_end_position
            ):
                g = serial_segments[probe][1]
                fraction = (g - serial_position) / window_insts[w]
                events.append(
                    (
                        in_window_cut(w, fraction),
                        serial_segments[probe][0],
                        False,
                        "serial",
                    )
                )
                probe += 1
            serial_position = window_end_position
            continue
        window_end_position = parallel_position + window_insts[w]
        while (
            segment_index < len(segments)
            and segments[segment_index][2] <= parallel_position
        ):
            segment_index += 1
        events.append(
            (window_start, segments[segment_index][0], False, "parallel")
        )
        probe = segment_index + 1
        while probe < len(segments) and segments[probe][1] < window_end_position:
            g = segments[probe][1]
            fraction = (g - parallel_position) / window_insts[w]
            events.append(
                (
                    in_window_cut(w, fraction),
                    segments[probe][0],
                    False,
                    "parallel",
                )
            )
            probe += 1
        parallel_position = window_end_position

    end_vector = tuple(len(t.records) for t in traces.threads)
    intervals: list[Interval] = []
    previous = tuple(0 for _ in traces.threads)
    for number, (vector, kind, exhaustive, stratum) in enumerate(events):
        current = (
            end_vector
            if number + 1 == len(events)
            else tuple(max(a, b) for a, b in zip(events[number + 1][0], vector))
        )
        # Clamp against reordering (fraction snapping is monotonic
        # within a window, window starts are monotonic across windows;
        # the clamp is defensive) and drop empty intervals.
        current = tuple(max(c, p) for c, p in zip(current, previous))
        if current == previous:
            continue
        spans = tuple(zip(previous, current))
        instructions = sum(
            index.insts[end] - index.insts[start]
            for index, (start, end) in zip(indexes, spans)
        )
        last = intervals[-1] if intervals else None
        if (
            last is not None
            and last.kind is kind
            and last.exhaustive == exhaustive
            and last.stratum == stratum
        ):
            # Merge contiguous intervals of the same flavor (a phase
            # boundary inside one skip span, two warm spans meeting).
            intervals[-1] = Interval(
                kind=kind,
                index=last.index,
                spans=tuple(
                    (old[0], new[1]) for old, new in zip(last.spans, spans)
                ),
                entry_phases=last.entry_phases,
                entry_ipc=last.entry_ipc,
                instructions=last.instructions + instructions,
                exhaustive=exhaustive,
                stratum=stratum,
            )
            previous = current
            continue
        intervals.append(
            Interval(
                kind=kind,
                index=len(intervals),
                spans=spans,
                entry_phases=tuple(
                    index.phases[start]
                    for index, (start, _) in zip(indexes, spans)
                ),
                entry_ipc=tuple(
                    index.ipc[start]
                    for index, (start, _) in zip(indexes, spans)
                ),
                instructions=instructions,
                exhaustive=exhaustive,
                stratum=stratum,
            )
        )
        previous = current
    if previous != end_vector:  # pragma: no cover - defensive
        raise AssertionError("interval slicing did not tile the trace")
    if not any(
        interval.kind is IntervalKind.DETAIL and not interval.exhaustive
        for interval in intervals
    ):
        # Degenerate schedule (e.g. a trace whose whole parallel stream
        # fits inside one skip span): measure everything rather than
        # extrapolating from nothing.
        return [_full_interval(traces, IntervalKind.DETAIL)]
    return intervals


def interval_traceset(traces: TraceSet, interval: Interval) -> TraceSet:
    """Materialise one interval as a standalone runnable trace set.

    Each thread's records are its span, prefixed with re-issued
    ``PARALLEL_START`` records for phases already open at entry (the
    fresh interval runtime re-announces them; this also restores the
    parallel bracketing that record transforms such as lean-core
    serial-IPC scaling key on) and an ``IpcRecord`` carrying the commit
    rate in force at the cut.
    """
    threads = []
    for thread_id, (start, end) in enumerate(interval.spans):
        records = []
        for phase in interval.entry_phases[thread_id]:
            records.append(SyncRecord(SyncKind.PARALLEL_START, phase))
        ipc = interval.entry_ipc[thread_id]
        if ipc is not None:
            records.append(IpcRecord(ipc))
        records.extend(traces.threads[thread_id].records[start:end])
        threads.append(ThreadTrace(thread_id=thread_id, records=records))
    return TraceSet(benchmark=traces.benchmark, threads=threads)
