"""The instruction-side memory hierarchy behind each I-cache (Fig. 5).

An I-cache miss queries the local L2 (Table I: 1 MB, 32-way, 20-cycle
latency, 64 B lines); an L2 miss continues to DRAM through the shared
memory controller. The hierarchy returns completion *cycles* — the
cycle-stepped ACMP simulator turns them into line-buffer fills.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.set_assoc import SetAssociativeCache
from repro.memory.controller import MemoryController
from repro.utils import require_positive


@dataclass(frozen=True, slots=True)
class MissCompletion:
    """Result of sending one I-cache miss down the hierarchy."""

    completion_cycle: int
    l2_hit: bool


class InstructionHierarchy:
    """L2 + DRAM behind one I-cache (private or shared)."""

    def __init__(
        self,
        controller: MemoryController,
        l2_size_bytes: int = 1024 * 1024,
        l2_ways: int = 32,
        l2_latency: int = 20,
        line_bytes: int = 64,
        name: str = "l2",
        allocate: bool = True,
    ) -> None:
        require_positive(l2_latency, "l2_latency")
        self.controller = controller
        self.l2_latency = l2_latency
        self.line_bytes = line_bytes
        self.l2 = SetAssociativeCache(
            l2_size_bytes,
            l2_ways,
            line_bytes,
            policy="lru",
            name=name,
            allocate=allocate,
        )

    def fetch_line(self, line_address: int, now: int) -> MissCompletion:
        """Resolve an I-cache miss; return the fill-completion cycle."""
        result = self.l2.access(line_address)
        if result.hit:
            return MissCompletion(completion_cycle=now + self.l2_latency, l2_hit=True)
        dram_done = self.controller.fetch_line(
            line_address, now + self.l2_latency, self.line_bytes
        )
        return MissCompletion(completion_cycle=dram_done, l2_hit=False)
