"""DRAM device timing: Micron DDR3-1600 parameters (Table I, note 5).

Models per-bank row-buffer state and the first-order timing constraints
that matter for an instruction-fetch miss stream: row-hit vs row-miss
latency and per-bank occupancy. Timings are converted from DRAM-clock
values (tCK = 1.25 ns for DDR3-1600) into core cycles at the configured
core frequency.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils import log2_int, require_positive, require_power_of_two


@dataclass(frozen=True, slots=True)
class DramTimings:
    """DDR3-1600 (11-11-11) timing set, in DRAM clocks."""

    tck_ns: float = 1.25
    cl: int = 11  # CAS latency
    trcd: int = 11  # RAS-to-CAS delay
    trp: int = 11  # row precharge
    tburst: int = 4  # BL8: eight transfers, four clocks

    def row_hit_ns(self) -> float:
        return (self.cl + self.tburst) * self.tck_ns

    def row_miss_ns(self) -> float:
        return (self.trp + self.trcd + self.cl + self.tburst) * self.tck_ns


@dataclass
class DramStats:
    accesses: int = 0
    row_hits: int = 0
    row_misses: int = 0
    busy_wait_cycles: int = 0

    @property
    def row_hit_rate(self) -> float:
        return self.row_hits / self.accesses if self.accesses else 0.0


@dataclass
class _Bank:
    open_row: int = -1
    busy_until: int = 0


class DramModel:
    """Unlimited-capacity DRAM with banked row buffers (Table I: size
    unlimited, standard DDR3-1600 timing parameters)."""

    def __init__(
        self,
        timings: DramTimings | None = None,
        core_ghz: float = 2.0,
        bank_count: int = 8,
        row_bytes: int = 8192,
        line_bytes: int = 64,
    ) -> None:
        require_positive(core_ghz, "core_ghz")
        require_power_of_two(bank_count, "bank_count")
        require_power_of_two(row_bytes, "row_bytes")
        self.timings = timings if timings is not None else DramTimings()
        cycles_per_ns = core_ghz
        self._row_hit_cycles = max(1, round(self.timings.row_hit_ns() * cycles_per_ns))
        self._row_miss_cycles = max(1, round(self.timings.row_miss_ns() * cycles_per_ns))
        self._row_shift = log2_int(row_bytes)
        self._bank_mask = bank_count - 1
        self._line_shift = log2_int(line_bytes)
        self._banks = [_Bank() for _ in range(bank_count)]
        self.stats = DramStats()

    @property
    def row_hit_cycles(self) -> int:
        return self._row_hit_cycles

    @property
    def row_miss_cycles(self) -> int:
        return self._row_miss_cycles

    def _bank_of(self, address: int) -> int:
        return (address >> self._line_shift) & self._bank_mask

    def _row_of(self, address: int) -> int:
        return address >> self._row_shift

    def access(self, address: int, now: int) -> int:
        """Schedule a line read; return its completion cycle.

        Requests to a busy bank serialise behind it (FCFS per bank).
        """
        bank = self._banks[self._bank_of(address)]
        row = self._row_of(address)
        start = max(now, bank.busy_until)
        self.stats.busy_wait_cycles += start - now
        if bank.open_row == row:
            service = self._row_hit_cycles
            self.stats.row_hits += 1
        else:
            service = self._row_miss_cycles
            self.stats.row_misses += 1
            bank.open_row = row
        self.stats.accesses += 1
        done = start + service
        bank.busy_until = done
        return done
