"""Memory substrate: DDR3 DRAM, memory controller, L2 hierarchy."""

from repro.memory.controller import FcfsBus, FcfsBusStats, MemoryController
from repro.memory.dram import DramModel, DramStats, DramTimings
from repro.memory.hierarchy import InstructionHierarchy, MissCompletion

__all__ = [
    "FcfsBus",
    "FcfsBusStats",
    "MemoryController",
    "DramModel",
    "DramStats",
    "DramTimings",
    "InstructionHierarchy",
    "MissCompletion",
]
