"""Memory controller and the shared L2-DRAM bus (Fig. 5, Table I).

All L2 caches reach the on-chip memory controller over one shared bus
(latency 4 cycles + contention, 32 B wide). Because L1-I misses are rare in
HPC code, the bus is modelled as first-come-first-served with next-free
bookkeeping rather than per-cycle arbitration; contention still appears as
queueing delay and is reported in the statistics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.memory.dram import DramModel
from repro.utils import require_positive


@dataclass
class FcfsBusStats:
    transactions: int = 0
    wait_cycles: int = 0
    busy_cycles: int = 0

    @property
    def mean_wait(self) -> float:
        return self.wait_cycles / self.transactions if self.transactions else 0.0


class FcfsBus:
    """First-come-first-served bus with occupancy and pipeline latency."""

    def __init__(self, width_bytes: int = 32, latency: int = 4, name: str = "l2-dram-bus") -> None:
        require_positive(width_bytes, "width_bytes")
        require_positive(latency, "latency")
        self.name = name
        self.width_bytes = width_bytes
        self.latency = latency
        self._next_free = 0
        self.stats = FcfsBusStats()

    def transfer_cycles(self, payload_bytes: int) -> int:
        return max(1, math.ceil(payload_bytes / self.width_bytes))

    def schedule(self, now: int, payload_bytes: int = 64) -> int:
        """Reserve the bus; return the cycle the payload arrives far-side."""
        start = max(now, self._next_free)
        occupancy = self.transfer_cycles(payload_bytes)
        self._next_free = start + occupancy
        self.stats.transactions += 1
        self.stats.wait_cycles += start - now
        self.stats.busy_cycles += occupancy
        return start + self.latency


class MemoryController:
    """On-chip memory controller fronting DRAM over the L2-DRAM bus."""

    def __init__(
        self,
        dram: DramModel | None = None,
        bus: FcfsBus | None = None,
    ) -> None:
        self.dram = dram if dram is not None else DramModel()
        self.bus = bus if bus is not None else FcfsBus()

    def fetch_line(self, line_address: int, now: int, line_bytes: int = 64) -> int:
        """Fetch one line from DRAM; return the data-return cycle.

        The request crosses the L2-DRAM bus, performs the DRAM access and
        returns over the same bus (a second occupancy reservation).
        """
        at_controller = self.bus.schedule(now, payload_bytes=line_bytes)
        dram_done = self.dram.access(line_address, at_controller)
        return self.bus.schedule(dram_done, payload_bytes=line_bytes)
