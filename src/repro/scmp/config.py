"""Symmetric-CMP configuration and standard design points.

A symmetric CMP of uniform lean cores: no big master core, identical
front-ends everywhere. ``cores_per_cache = 1`` gives the conventional
per-core private front-end baseline; larger values bank one shared
L1 I-cache behind an I-interconnect across each group of cores —
including core 0, since no core is special. The machine-neutral
substrate (front-end geometry, interconnect, memory) comes from
:class:`~repro.machine.config.BaseMachineConfig`.

Because the trace sets were measured on a machine whose serial phases
run on a big core, :attr:`ScmpConfig.serial_ipc_scale` replays thread
0's serial sections at the lean core's commit rate (Hill-Marty
``perf(r) = sqrt(r)``: a 1-BCE lean core achieves half the 4-BCE big
core's serial IPC). Parallel-section IPC, measured on lean cores, is
untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError
from repro.machine.config import KB, BaseMachineConfig
from repro.utils import require_positive

__all__ = ["KB", "ScmpConfig", "banked_config", "private_config"]


@dataclass(frozen=True)
class ScmpConfig(BaseMachineConfig):
    """Full parameter set for one symmetric-CMP design point."""

    # -- topology ---------------------------------------------------------
    #: Total (uniform, lean) cores; thread 0 still runs the master thread.
    core_count_total: int = 8
    #: Cores per I-cache: 1 = private per-core front-ends; larger values
    #: bank one shared I-cache across each group of cores.
    cores_per_cache: int = 1

    # -- I-cache -----------------------------------------------------------
    #: Size of each I-cache (private or banked-shared).
    icache_bytes: int = 32 * KB

    # -- front-end ---------------------------------------------------------
    #: Uniform lean-core redirect penalty (the ACMP's worker value).
    mispredict_penalty: int = 8
    #: Replay factor for thread 0's serial-section IPC (lean core vs the
    #: big core the traces were measured on); 1.0 disables the scaling.
    serial_ipc_scale: float = 0.5

    def __post_init__(self) -> None:
        require_positive(self.core_count_total, "core_count_total")
        require_positive(self.cores_per_cache, "cores_per_cache")
        if self.cores_per_cache > self.core_count_total:
            raise ConfigurationError(
                f"cores_per_cache {self.cores_per_cache} exceeds "
                f"core_count_total {self.core_count_total}"
            )
        if self.core_count_total % self.cores_per_cache:
            raise ConfigurationError(
                f"core_count_total {self.core_count_total} not divisible "
                f"by cores_per_cache {self.cores_per_cache}"
            )
        if not (0.0 < self.serial_ipc_scale <= 1.0):
            raise ConfigurationError(
                f"serial_ipc_scale must be in (0, 1], got "
                f"{self.serial_ipc_scale}"
            )
        super().__post_init__()

    @property
    def core_count(self) -> int:
        """Total simulated cores."""
        return self.core_count_total

    @property
    def worker_count(self) -> int:
        """Cores running worker threads (all but core 0's master); the
        area/energy models price exactly this set on any machine."""
        return self.core_count_total - 1

    @property
    def is_baseline(self) -> bool:
        """True for the per-core private front-end baseline."""
        return self.cores_per_cache == 1

    def label(self) -> str:
        """Compact design-point label used in reports."""
        prefix = f"scmp{self.core_count_total}"
        if self.is_baseline:
            return (
                f"{prefix}::private::{self.icache_bytes // KB}KB::"
                f"{self.line_buffers}lb"
            )
        bus = (
            "single"
            if self.bus_count == 1
            else ("double" if self.bus_count == 2 else f"{self.bus_count}x")
        )
        return (
            f"{prefix}::cpc={self.cores_per_cache}::"
            f"{self.icache_bytes // KB}KB::{self.line_buffers}lb::{bus}-bus"
        )


def private_config(core_count: int = 8, **overrides) -> ScmpConfig:
    """The symmetric baseline: per-core private I-caches."""
    return replace(ScmpConfig(core_count_total=core_count), **overrides)


def banked_config(
    cores_per_cache: int = 8,
    icache_kb: int = 16,
    bus_count: int = 2,
    line_buffers: int = 4,
    core_count: int = 8,
    **overrides,
) -> ScmpConfig:
    """A banked shared-front-end design point.

    Mirrors the ACMP proposal's geometry (16 KB shared by 8 cores behind
    a double bus) on the symmetric machine, for per-core-vs-shared
    front-end sweeps at matched area.
    """
    return replace(
        ScmpConfig(core_count_total=core_count),
        cores_per_cache=cores_per_cache,
        icache_bytes=icache_kb * KB,
        bus_count=bus_count,
        line_buffers=line_buffers,
        **overrides,
    )
