"""Symmetric CMP: uniform lean cores on the machine abstraction layer.

The second implementation of the :class:`repro.machine.MachineModel`
protocol (registered as ``scmp``): a conventional CMP of identical lean
cores with per-core private front-ends, or — via ``cores_per_cache`` —
banked L1 I-caches shared behind an I-interconnect, built entirely from
the shared :mod:`repro.machine` components. Importing this package
registers the model.
"""

from repro.machine.simulator import simulate
from repro.scmp.config import ScmpConfig, banked_config, private_config
from repro.scmp.model import MODEL
from repro.scmp.system import ScmpSystem
from repro.scmp.topology import build_topology

__all__ = [
    "MODEL",
    "ScmpConfig",
    "ScmpSystem",
    "banked_config",
    "build_topology",
    "private_config",
    "simulate",
]
