"""The symmetric-CMP machine model: registry glue."""

from __future__ import annotations

from repro.machine.model import register_model
from repro.machine.serialization import _FORMAT_VERSION
from repro.scmp.config import ScmpConfig, banked_config, private_config
from repro.scmp.system import ScmpSystem
from repro.trace.stream import TraceSet


class ScmpModel:
    """Uniform lean cores with per-core or banked-shared front-ends."""

    name = "scmp"
    config_type = ScmpConfig

    def default_config(self, **overrides) -> ScmpConfig:
        return private_config(**overrides)

    def baseline_config(self, **overrides) -> ScmpConfig:
        """The symmetric baseline: per-core private I-caches."""
        return private_config(**overrides)

    def shared_config(
        self,
        cores_per_cache: int = 8,
        icache_kb: int = 16,
        bus_count: int = 2,
        line_buffers: int = 4,
        **overrides,
    ) -> ScmpConfig:
        """A banked shared-front-end design point."""
        return banked_config(
            cores_per_cache=cores_per_cache,
            icache_kb=icache_kb,
            bus_count=bus_count,
            line_buffers=line_buffers,
            **overrides,
        )

    def all_shared_config(
        self, icache_kb: int = 32, bus_count: int = 2, **overrides
    ) -> ScmpConfig:
        """One banked I-cache across every core. The symmetric machine
        has no private master front-end, so this coincides with
        ``shared_config`` at full sharing degree (core 0 included).

        The sharing degree follows any core-count override, so the
        'every core behind one cache' contract holds at any size.
        """
        from repro.errors import ConfigurationError

        core_count = overrides.pop("core_count", None)
        total = overrides.pop("core_count_total", None)
        if core_count is None:
            core_count = (
                total if total is not None else ScmpConfig().core_count_total
            )
        elif total is not None and total != core_count:
            raise ConfigurationError(
                f"conflicting core-count overrides: core_count="
                f"{core_count}, core_count_total={total}"
            )
        return banked_config(
            cores_per_cache=core_count,
            icache_kb=icache_kb,
            bus_count=bus_count,
            core_count=core_count,
            **overrides,
        )

    def build_system(
        self, config: ScmpConfig, traces: TraceSet, *, hollow: bool = False
    ) -> ScmpSystem:
        return ScmpSystem(config, traces, hollow=hollow)

    def build_topology(self, config: ScmpConfig):
        from repro.scmp.topology import build_topology

        return build_topology(config)

    def config_space(self) -> dict[str, tuple]:
        """The per-core-vs-shared front-end sweep dimensions."""
        return {
            "core_count_total": (4, 8, 16),
            "cores_per_cache": (1, 2, 4, 8),
            "icache_bytes": (16 * 1024, 32 * 1024),
            "bus_count": (1, 2),
            "line_buffers": (2, 4, 8),
            "serial_ipc_scale": (0.5, 1.0),
        }

    def standard_design_points(self) -> list[ScmpConfig]:
        """Private baseline plus the banked-sharing sweep."""
        return [
            private_config(),
            banked_config(cores_per_cache=2, icache_kb=32, bus_count=1),
            banked_config(cores_per_cache=4, icache_kb=32, bus_count=1),
            banked_config(cores_per_cache=8, icache_kb=32, bus_count=1),
            banked_config(),  # cpc=8, 16 KB, double bus
        ]

    def result_schema(self) -> dict:
        """Shape of this model's serialized :class:`SimulationResult`."""
        return {
            "machine": self.name,
            "version": _FORMAT_VERSION,
            "core_roles": {"0..core_count": "uniform lean core"},
            "cache_groups": "cores grouped uniformly by cores_per_cache "
            "(no private master group)",
        }


MODEL = register_model(ScmpModel())
