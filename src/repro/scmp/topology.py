"""Symmetric-CMP topology: a uniform partition of all cores.

No core is special: the cores are split into consecutive groups of
``cores_per_cache`` members, each group owning one I-cache (private for
groups of one, banked-shared behind an I-interconnect otherwise).
"""

from __future__ import annotations

from repro.machine.topology import CacheGroup, Topology
from repro.scmp.config import ScmpConfig

__all__ = ["build_topology"]


def build_topology(config: ScmpConfig) -> Topology:
    """Derive the uniform cache grouping from a configuration."""
    groups: list[CacheGroup] = []
    size = config.cores_per_cache
    for start in range(0, config.core_count, size):
        member_ids = tuple(range(start, start + size))
        groups.append(
            CacheGroup(
                index=len(groups),
                core_ids=member_ids,
                size_bytes=config.icache_bytes,
            )
        )
    return Topology(groups=tuple(groups), core_count=config.core_count)
