"""Symmetric-CMP system wiring over the machine-neutral assembly layer.

All cores are identical lean cores; the only departures from the shared
:class:`repro.machine.System` flow are the uniform topology, the
uniform redirect penalty, and the serial-IPC replay scaling for thread
0 (the master thread's serial phases were measured on a big core the
symmetric machine does not have).
"""

from __future__ import annotations

from repro.machine.system import System, scale_serial_ipc
from repro.machine.topology import Topology
from repro.scmp.config import ScmpConfig
from repro.scmp.topology import build_topology
from repro.trace.records import TraceRecord

__all__ = ["ScmpSystem"]


class ScmpSystem(System):
    """The complete simulated symmetric CMP for one (config, traces) pair."""

    machine_name = "scmp"

    config: ScmpConfig

    def _build_topology(self) -> Topology:
        return build_topology(self.config)

    def _mispredict_penalty(self, core_id: int) -> int:
        return self.config.mispredict_penalty

    def _thread_records(self, thread_id: int) -> list[TraceRecord]:
        records = self.traces.threads[thread_id].records
        factor = self.config.serial_ipc_scale
        if thread_id != 0 or factor == 1.0:
            return records
        return scale_serial_ipc(records, factor)
