"""Build the compiled kernel extension with the system C compiler.

``python -m repro.kernels.build`` compiles ``_native.c`` into
``_native<EXT_SUFFIX>`` next to the source, after which
:mod:`repro.kernels` selects it automatically on import (override with
``REPRO_KERNELS=py|compiled``). Only a C compiler and the Python
headers are required — no pip packages, no build system; the command
is the whole build.

``python -m repro.kernels.build --check`` reports the selected backend,
the compiler the build would use, and whether the built extension is
stale (older than ``_native.c``, or missing entry points the current
spec exports) — the first stop when a run is unexpectedly on the
pure-Python backend.
"""

from __future__ import annotations

import argparse
import pathlib
import shlex
import subprocess
import sysconfig

__all__ = ["build", "check", "extension_path", "BuildError"]


class BuildError(RuntimeError):
    """Compiler failure, carrying the compiler's own diagnostics."""


def extension_path(out_dir: pathlib.Path | None = None) -> pathlib.Path:
    """Where the built extension lands (package dir by default)."""
    suffix = sysconfig.get_config_var("EXT_SUFFIX") or ".so"
    directory = (
        pathlib.Path(__file__).parent if out_dir is None else out_dir
    )
    return directory / f"_native{suffix}"


def compiler_command() -> list[str]:
    """The compiler invocation prefix the build uses."""
    compiler = sysconfig.get_config_var("CC") or "cc"
    return shlex.split(compiler)


def build(
    out_dir: pathlib.Path | None = None, verbose: bool = True
) -> pathlib.Path:
    """Compile ``_native.c``; returns the built extension's path.

    Raises:
        BuildError: when the compiler fails, with its stderr in the
            message (not just a bare non-zero-exit traceback).
        FileNotFoundError: when no C compiler is available.
    """
    source = pathlib.Path(__file__).with_name("_native.c")
    target = extension_path(out_dir)
    command = [
        *compiler_command(),
        "-O2",
        "-fPIC",
        "-shared",
        f"-I{sysconfig.get_path('include')}",
        str(source),
        "-o",
        str(target),
    ]
    if verbose:
        print(" ".join(command))
    result = subprocess.run(command, capture_output=True, text=True)
    if result.returncode != 0:
        stderr = result.stderr.strip()
        raise BuildError(
            f"compiler exited with status {result.returncode}:\n"
            f"  {' '.join(command)}\n{stderr}"
        )
    if result.stderr and verbose:
        print(result.stderr.rstrip())  # warnings from a successful build
    if verbose:
        print(f"built {target}")
    return target


def staleness(out_dir: pathlib.Path | None = None) -> str | None:
    """Why the built extension cannot serve the current spec, or None.

    Returns a human-readable reason — missing, older than ``_native.c``,
    or missing entry points the spec exports — or ``None`` when the
    build is present and current.
    """
    from repro.kernels import pylib

    source = pathlib.Path(__file__).with_name("_native.c")
    target = extension_path(out_dir)
    if not target.exists():
        return f"{target.name} is not built"
    if target.stat().st_mtime < source.stat().st_mtime:
        return f"{target.name} is older than {source.name}"
    try:
        import repro.kernels._native as native
    except ImportError as error:
        return f"{target.name} does not import: {error}"
    missing = [
        name
        for name in pylib.__all__
        if not name.startswith("REPLAY") and not hasattr(native, name)
    ]
    if missing:
        return f"{target.name} lacks entry points: {', '.join(missing)}"
    return None


def check() -> int:
    """Print backend/compiler/staleness status; exit 0 when healthy.

    Healthy means the active backend is the one that would be selected
    with a fresh, current build — a stale or missing extension under
    ``REPRO_KERNELS=`` (auto) or ``=compiled`` returns 1 so scripts can
    gate on it.
    """
    from repro import kernels

    print(f"backend: {kernels.backend_name()}")
    print(f"cc: {' '.join(compiler_command())}")
    print(f"extension: {extension_path()}")
    reason = staleness()
    print(f"staleness: {reason if reason else 'current'}")
    if reason and kernels.backend_name() != "compiled":
        print("hint: run `python -m repro.kernels.build` to (re)build")
    return 1 if reason else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.kernels.build",
        description="Build or inspect the compiled kernel extension.",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="report selected backend, compiler and extension staleness "
        "instead of building",
    )
    arguments = parser.parse_args(argv)
    if arguments.check:
        return check()
    build()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
