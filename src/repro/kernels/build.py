"""Build the compiled kernel extension with the system C compiler.

``python -m repro.kernels.build`` compiles ``_native.c`` into
``_native<EXT_SUFFIX>`` next to the source, after which
:mod:`repro.kernels` selects it automatically on import (override with
``REPRO_KERNELS=py|compiled``). Only a C compiler and the Python
headers are required — no pip packages, no build system; the command
is the whole build.
"""

from __future__ import annotations

import pathlib
import shlex
import subprocess
import sysconfig

__all__ = ["build", "extension_path"]


def extension_path(out_dir: pathlib.Path | None = None) -> pathlib.Path:
    """Where the built extension lands (package dir by default)."""
    suffix = sysconfig.get_config_var("EXT_SUFFIX") or ".so"
    directory = (
        pathlib.Path(__file__).parent if out_dir is None else out_dir
    )
    return directory / f"_native{suffix}"


def build(
    out_dir: pathlib.Path | None = None, verbose: bool = True
) -> pathlib.Path:
    """Compile ``_native.c``; returns the built extension's path.

    Raises:
        subprocess.CalledProcessError: when the compiler fails.
        FileNotFoundError: when no C compiler is available.
    """
    source = pathlib.Path(__file__).with_name("_native.c")
    target = extension_path(out_dir)
    compiler = sysconfig.get_config_var("CC") or "cc"
    command = [
        *shlex.split(compiler),
        "-O2",
        "-fPIC",
        "-shared",
        f"-I{sysconfig.get_path('include')}",
        str(source),
        "-o",
        str(target),
    ]
    if verbose:
        print(" ".join(command))
    subprocess.run(command, check=True)
    if verbose:
        print(f"built {target}")
    return target


if __name__ == "__main__":
    build()
