"""Hot-structure kernels: an optional compiled backend with a pure spec.

The timing hot paths — set-associative tag probes
(:mod:`repro.cache.set_assoc`), gshare/BTB table updates
(:mod:`repro.branch`) and the batched functional-warming line walk
(:mod:`repro.sampling.warmer`) — are plain loops over Python lists.
This package provides them twice:

* :mod:`repro.kernels.pylib` — the pure-Python reference
  implementations. Always available; they *are* the contract the
  compiled backend is tested against.
* ``repro.kernels._native`` — a hand-written C extension built by
  ``python -m repro.kernels.build`` (any C compiler; no third-party
  packages). Bit-identical to ``pylib`` on every operation, enforced by
  :mod:`tests.test_kernels` and the CI compiled-vs-python matrix leg.

Selection happens once at import: the native module is used when its
shared object is present, otherwise the pure-Python fallback — the
compiler is never a hard dependency. The ``REPRO_KERNELS`` environment
variable overrides the choice: ``py`` forces the fallback even when the
extension is built; ``compiled`` demands the extension and raises
:class:`~repro.errors.ConfigurationError` when it is missing (so CI
legs cannot silently test the wrong backend).

Consumers branch on :data:`NATIVE` at *their* import time and keep
their original inline loops when it is False, so the pure-Python path
pays no extra call indirection for the abstraction.
"""

from __future__ import annotations

import importlib
import os

from repro.errors import ConfigurationError
from repro.kernels import pylib

__all__ = [
    "NATIVE",
    "backend_name",
    "find_way",
    "gshare_update",
    "btb_probe",
    "warm_lines",
    "warm_span",
    "replay_walk",
    "REPLAY_NEXT",
    "REPLAY_HORIZON",
    "REPLAY_DRAIN",
    "REPLAY_STEPS",
]

_REQUESTED = os.environ.get("REPRO_KERNELS", "").strip().lower()
if _REQUESTED not in ("", "py", "compiled"):
    raise ConfigurationError(
        f"REPRO_KERNELS must be 'py' or 'compiled', got {_REQUESTED!r}"
    )

_native = None
if _REQUESTED != "py":
    try:
        _native = importlib.import_module("repro.kernels._native")
    except ImportError:
        if _REQUESTED == "compiled":
            raise ConfigurationError(
                "REPRO_KERNELS=compiled but the native extension is not "
                "built; run `python -m repro.kernels.build` first"
            ) from None
    else:
        # A stale build from before an entry point was added must not
        # half-engage: either the whole surface is native or none of it.
        if not hasattr(_native, "replay_walk"):
            if _REQUESTED == "compiled":
                raise ConfigurationError(
                    "REPRO_KERNELS=compiled but the built extension is "
                    "stale (missing entry points); rerun "
                    "`python -m repro.kernels.build` "
                    "(`--check` shows the staleness)"
                )
            _native = None

#: True when the compiled backend is active for this process.
NATIVE = _native is not None

#: :func:`replay_walk` mode selectors (see :mod:`repro.kernels.pylib`).
REPLAY_NEXT = pylib.REPLAY_NEXT
REPLAY_HORIZON = pylib.REPLAY_HORIZON
REPLAY_DRAIN = pylib.REPLAY_DRAIN
REPLAY_STEPS = pylib.REPLAY_STEPS

if NATIVE:
    find_way = _native.find_way
    gshare_update = _native.gshare_update
    btb_probe = _native.btb_probe
    warm_lines = _native.warm_lines
    warm_span = _native.warm_span
    replay_walk = _native.replay_walk
else:
    find_way = pylib.find_way
    gshare_update = pylib.gshare_update
    btb_probe = pylib.btb_probe
    warm_lines = pylib.warm_lines
    warm_span = pylib.warm_span
    replay_walk = pylib.replay_walk


def backend_name() -> str:
    """The active kernel backend: ``"compiled"`` or ``"py"``."""
    return "compiled" if NATIVE else "py"
