/* Compiled hot-structure kernels.
 *
 * Bit-identical C implementations of repro.kernels.pylib: first-match
 * scans, first-minimum victim tie-breaks, lazy LRU order-list
 * materialization. All tables stay ordinary Python lists of ints (or
 * None for invalid ways), so capture/restore of warm state and every
 * pure-Python consumer keep working unchanged; the speedup comes from
 * replacing interpreter dispatch on the innermost loops, not from a
 * parallel storage format.
 *
 * Built by `python -m repro.kernels.build` with the system C compiler;
 * no third-party packages.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <string.h>

/* First index of `value` in a list of ints/None, or -1. */
static Py_ssize_t
list_find_ll(PyObject *list, long long value)
{
    Py_ssize_t n = PyList_GET_SIZE(list);
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *item = PyList_GET_ITEM(list, i);
        if (PyLong_Check(item) && PyLong_AsLongLong(item) == value) {
            return i;
        }
    }
    return -1;
}

static Py_ssize_t
list_find_none(PyObject *list)
{
    Py_ssize_t n = PyList_GET_SIZE(list);
    for (Py_ssize_t i = 0; i < n; i++) {
        if (PyList_GET_ITEM(list, i) == Py_None) {
            return i;
        }
    }
    return -1;
}

/* list[i] = value (a fresh int object; the old item is released). */
static int
list_set_ll(PyObject *list, Py_ssize_t i, long long value)
{
    PyObject *obj = PyLong_FromLongLong(value);
    if (obj == NULL) {
        return -1;
    }
    return PyList_SetItem(list, i, obj);
}

static int
seen_add_ll(PyObject *seen, long long value)
{
    PyObject *obj = PyLong_FromLongLong(value);
    if (obj == NULL) {
        return -1;
    }
    int rc = PySet_Add(seen, obj);
    Py_DECREF(obj);
    return rc;
}

/* orders[set_index], materializing list(range(ways)) in place of None
 * exactly like LruPolicy's lazy per-set recency lists. Borrowed ref. */
static PyObject *
ensure_order(PyObject *orders, Py_ssize_t set_index, Py_ssize_t ways)
{
    PyObject *order = PyList_GET_ITEM(orders, set_index);
    if (order != Py_None) {
        return order;
    }
    order = PyList_New(ways);
    if (order == NULL) {
        return NULL;
    }
    for (Py_ssize_t i = 0; i < ways; i++) {
        PyObject *v = PyLong_FromSsize_t(i);
        if (v == NULL) {
            Py_DECREF(order);
            return NULL;
        }
        PyList_SET_ITEM(order, i, v);
    }
    PyList_SetItem(orders, set_index, order); /* steals our reference */
    return order;
}

/* order.remove(way); order.append(way) — a pure rotation of the
 * permutation list, so no reference counts change. */
static int
order_touch(PyObject *order, long long way)
{
    Py_ssize_t n = PyList_GET_SIZE(order);
    PyObject **items = ((PyListObject *)order)->ob_item;
    Py_ssize_t pos = -1;
    for (Py_ssize_t i = 0; i < n; i++) {
        if (PyLong_AsLongLong(items[i]) == way) {
            pos = i;
            break;
        }
    }
    if (pos < 0) {
        PyErr_SetString(PyExc_ValueError, "way not in LRU order list");
        return -1;
    }
    PyObject *moved = items[pos];
    memmove(&items[pos], &items[pos + 1],
            (size_t)(n - 1 - pos) * sizeof(PyObject *));
    items[n - 1] = moved;
    return 0;
}

/* find_way(row, target) -> first index or -1; target is int or None. */
static PyObject *
kernels_find_way(PyObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 2 || !PyList_Check(args[0])) {
        PyErr_SetString(PyExc_TypeError, "find_way(row: list, target)");
        return NULL;
    }
    if (args[1] == Py_None) {
        return PyLong_FromSsize_t(list_find_none(args[0]));
    }
    long long value = PyLong_AsLongLong(args[1]);
    if (value == -1 && PyErr_Occurred()) {
        return NULL;
    }
    return PyLong_FromSsize_t(list_find_ll(args[0], value));
}

/* gshare_update(counters, history, mask, shift, address, taken) -> history */
static PyObject *
kernels_gshare_update(PyObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 6 || !PyList_Check(args[0])) {
        PyErr_SetString(
            PyExc_TypeError,
            "gshare_update(counters, history, mask, shift, address, taken)");
        return NULL;
    }
    long long history = PyLong_AsLongLong(args[1]);
    long long mask = PyLong_AsLongLong(args[2]);
    long long shift = PyLong_AsLongLong(args[3]);
    long long address = PyLong_AsLongLong(args[4]);
    int taken = PyObject_IsTrue(args[5]);
    if (taken < 0 || PyErr_Occurred()) {
        return NULL;
    }
    Py_ssize_t index = (Py_ssize_t)(((address >> shift) ^ history) & mask);
    long long counter =
        PyLong_AsLongLong(PyList_GET_ITEM(args[0], index));
    if (taken) {
        if (counter < 3 && list_set_ll(args[0], index, counter + 1) < 0) {
            return NULL;
        }
    } else if (counter > 0 && list_set_ll(args[0], index, counter - 1) < 0) {
        return NULL;
    }
    return PyLong_FromLongLong(((history << 1) | (taken ? 1 : 0)) & mask);
}

/* btb_probe(tags, targets, index, address) -> target or None */
static PyObject *
kernels_btb_probe(PyObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 4 || !PyList_Check(args[0]) || !PyList_Check(args[1])) {
        PyErr_SetString(PyExc_TypeError,
                        "btb_probe(tags, targets, index, address)");
        return NULL;
    }
    Py_ssize_t index = PyLong_AsSsize_t(args[2]);
    long long address = PyLong_AsLongLong(args[3]);
    if (PyErr_Occurred()) {
        return NULL;
    }
    PyObject *tag = PyList_GET_ITEM(args[0], index);
    if (PyLong_Check(tag) && PyLong_AsLongLong(tag) == address) {
        PyObject *target = PyList_GET_ITEM(args[1], index);
        Py_INCREF(target);
        return target;
    }
    Py_RETURN_NONE;
}

/* warm_lines(line, end_address, line_bytes,
 *            lb_lines, lb_uses, lb_clock,
 *            l1_tags, l1_order, l1_ways, l1_shift, l1_set_mask, l1_seen,
 *            l2_tags, l2_order, l2_ways, l2_shift, l2_set_mask, l2_seen)
 *   -> new lb_clock
 * Mirrors pylib.warm_lines statement for statement. */
static PyObject *
kernels_warm_lines(PyObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 18) {
        PyErr_SetString(PyExc_TypeError, "warm_lines expects 18 arguments");
        return NULL;
    }
    long long line = PyLong_AsLongLong(args[0]);
    long long end_address = PyLong_AsLongLong(args[1]);
    long long line_bytes = PyLong_AsLongLong(args[2]);
    PyObject *lb_lines = args[3];
    PyObject *lb_uses = args[4];
    long long lb_clock = PyLong_AsLongLong(args[5]);
    PyObject *l1_tags = args[6];
    PyObject *l1_order = args[7];
    Py_ssize_t l1_ways = PyLong_AsSsize_t(args[8]);
    long long l1_shift = PyLong_AsLongLong(args[9]);
    long long l1_set_mask = PyLong_AsLongLong(args[10]);
    PyObject *l1_seen = args[11];
    PyObject *l2_tags = args[12];
    PyObject *l2_order = args[13];
    Py_ssize_t l2_ways = PyLong_AsSsize_t(args[14]);
    long long l2_shift = PyLong_AsLongLong(args[15]);
    long long l2_set_mask = PyLong_AsLongLong(args[16]);
    PyObject *l2_seen = args[17];
    if (PyErr_Occurred()) {
        return NULL;
    }
    if (!PyList_Check(lb_lines) || !PyList_Check(lb_uses) ||
        !PyList_Check(l1_tags) || !PyList_Check(l1_order) ||
        !PyList_Check(l2_tags) || !PyList_Check(l2_order) ||
        !PySet_Check(l1_seen) || !PySet_Check(l2_seen)) {
        PyErr_SetString(PyExc_TypeError,
                        "warm_lines table arguments must be lists/sets");
        return NULL;
    }
    Py_ssize_t lb_n = PyList_GET_SIZE(lb_lines);

    for (; line < end_address; line += line_bytes) {
        lb_clock++;
        Py_ssize_t slot = list_find_ll(lb_lines, line);
        if (slot >= 0) {
            if (list_set_ll(lb_uses, slot, lb_clock) < 0) {
                return NULL;
            }
            continue;
        }
        /* Buffer miss: first least-recently-used slot. */
        Py_ssize_t victim = 0;
        long long best = PyLong_AsLongLong(PyList_GET_ITEM(lb_uses, 0));
        for (Py_ssize_t i = 1; i < lb_n; i++) {
            long long use = PyLong_AsLongLong(PyList_GET_ITEM(lb_uses, i));
            if (use < best) {
                best = use;
                victim = i;
            }
        }
        lb_clock++;
        if (list_set_ll(lb_lines, victim, line) < 0 ||
            list_set_ll(lb_uses, victim, lb_clock) < 0) {
            return NULL;
        }
        /* L1I access (LRU; the caller guards on the policy type). */
        Py_ssize_t set_index = (Py_ssize_t)((line >> l1_shift) & l1_set_mask);
        PyObject *row = PyList_GET_ITEM(l1_tags, set_index);
        Py_ssize_t way = list_find_ll(row, line);
        PyObject *order;
        if (way >= 0) {
            order = ensure_order(l1_order, set_index, l1_ways);
            if (order == NULL || order_touch(order, (long long)way) < 0) {
                return NULL;
            }
            continue;
        }
        way = list_find_none(row);
        if (way < 0) {
            order = ensure_order(l1_order, set_index, l1_ways);
            if (order == NULL) {
                return NULL;
            }
            way = PyLong_AsSsize_t(PyList_GET_ITEM(order, 0));
        }
        if (list_set_ll(row, way, line) < 0) {
            return NULL;
        }
        order = ensure_order(l1_order, set_index, l1_ways);
        if (order == NULL || order_touch(order, (long long)way) < 0) {
            return NULL;
        }
        if (seen_add_ll(l1_seen, line) < 0) {
            return NULL;
        }
        /* L1 miss: walk the line through the L2 (always LRU). */
        Py_ssize_t l2_set = (Py_ssize_t)((line >> l2_shift) & l2_set_mask);
        PyObject *l2_row = PyList_GET_ITEM(l2_tags, l2_set);
        Py_ssize_t l2_way = list_find_ll(l2_row, line);
        if (l2_way < 0) {
            l2_way = list_find_none(l2_row);
            if (l2_way < 0) {
                order = ensure_order(l2_order, l2_set, l2_ways);
                if (order == NULL) {
                    return NULL;
                }
                l2_way = PyLong_AsSsize_t(PyList_GET_ITEM(order, 0));
            }
            if (list_set_ll(l2_row, l2_way, line) < 0 ||
                seen_add_ll(l2_seen, line) < 0) {
                return NULL;
            }
        }
        order = ensure_order(l2_order, l2_set, l2_ways);
        if (order == NULL || order_touch(order, (long long)l2_way) < 0) {
            return NULL;
        }
    }
    return PyLong_FromLongLong(lb_clock);
}

static PyMethodDef kernels_methods[] = {
    {"find_way", (PyCFunction)kernels_find_way, METH_FASTCALL,
     "First index of target in row, or -1."},
    {"gshare_update", (PyCFunction)kernels_gshare_update, METH_FASTCALL,
     "One gshare training step; returns the new history."},
    {"btb_probe", (PyCFunction)kernels_btb_probe, METH_FASTCALL,
     "Tagged BTB probe; returns the target or None."},
    {"warm_lines", (PyCFunction)kernels_warm_lines, METH_FASTCALL,
     "Warm one basic block's lines through lb/L1/L2."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef kernels_module = {
    PyModuleDef_HEAD_INIT,
    "_native",
    "Compiled hot-structure kernels (see repro.kernels.pylib).",
    -1,
    kernels_methods,
};

PyMODINIT_FUNC
PyInit__native(void)
{
    return PyModule_Create(&kernels_module);
}
