/* Compiled hot-structure kernels.
 *
 * Bit-identical C implementations of repro.kernels.pylib: first-match
 * scans, first-minimum victim tie-breaks, lazy LRU order-list
 * materialization. All tables stay ordinary Python lists of ints (or
 * None for invalid ways), so capture/restore of warm state and every
 * pure-Python consumer keep working unchanged; the speedup comes from
 * replacing interpreter dispatch on the innermost loops, not from a
 * parallel storage format.
 *
 * Built by `python -m repro.kernels.build` with the system C compiler;
 * no third-party packages.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <string.h>

/* First index of `value` in a list of ints/None, or -1. */
static Py_ssize_t
list_find_ll(PyObject *list, long long value)
{
    Py_ssize_t n = PyList_GET_SIZE(list);
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *item = PyList_GET_ITEM(list, i);
        if (PyLong_Check(item) && PyLong_AsLongLong(item) == value) {
            return i;
        }
    }
    return -1;
}

static Py_ssize_t
list_find_none(PyObject *list)
{
    Py_ssize_t n = PyList_GET_SIZE(list);
    for (Py_ssize_t i = 0; i < n; i++) {
        if (PyList_GET_ITEM(list, i) == Py_None) {
            return i;
        }
    }
    return -1;
}

/* list[i] = value (a fresh int object; the old item is released). */
static int
list_set_ll(PyObject *list, Py_ssize_t i, long long value)
{
    PyObject *obj = PyLong_FromLongLong(value);
    if (obj == NULL) {
        return -1;
    }
    return PyList_SetItem(list, i, obj);
}

static int
seen_add_ll(PyObject *seen, long long value)
{
    PyObject *obj = PyLong_FromLongLong(value);
    if (obj == NULL) {
        return -1;
    }
    int rc = PySet_Add(seen, obj);
    Py_DECREF(obj);
    return rc;
}

/* orders[set_index], materializing list(range(ways)) in place of None
 * exactly like LruPolicy's lazy per-set recency lists. Borrowed ref. */
static PyObject *
ensure_order(PyObject *orders, Py_ssize_t set_index, Py_ssize_t ways)
{
    PyObject *order = PyList_GET_ITEM(orders, set_index);
    if (order != Py_None) {
        return order;
    }
    order = PyList_New(ways);
    if (order == NULL) {
        return NULL;
    }
    for (Py_ssize_t i = 0; i < ways; i++) {
        PyObject *v = PyLong_FromSsize_t(i);
        if (v == NULL) {
            Py_DECREF(order);
            return NULL;
        }
        PyList_SET_ITEM(order, i, v);
    }
    PyList_SetItem(orders, set_index, order); /* steals our reference */
    return order;
}

/* order.remove(way); order.append(way) — a pure rotation of the
 * permutation list, so no reference counts change. */
static int
order_touch(PyObject *order, long long way)
{
    Py_ssize_t n = PyList_GET_SIZE(order);
    PyObject **items = ((PyListObject *)order)->ob_item;
    Py_ssize_t pos = -1;
    for (Py_ssize_t i = 0; i < n; i++) {
        if (PyLong_AsLongLong(items[i]) == way) {
            pos = i;
            break;
        }
    }
    if (pos < 0) {
        PyErr_SetString(PyExc_ValueError, "way not in LRU order list");
        return -1;
    }
    PyObject *moved = items[pos];
    memmove(&items[pos], &items[pos + 1],
            (size_t)(n - 1 - pos) * sizeof(PyObject *));
    items[n - 1] = moved;
    return 0;
}

/* find_way(row, target) -> first index or -1; target is int or None. */
static PyObject *
kernels_find_way(PyObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 2 || !PyList_Check(args[0])) {
        PyErr_SetString(PyExc_TypeError, "find_way(row: list, target)");
        return NULL;
    }
    if (args[1] == Py_None) {
        return PyLong_FromSsize_t(list_find_none(args[0]));
    }
    long long value = PyLong_AsLongLong(args[1]);
    if (value == -1 && PyErr_Occurred()) {
        return NULL;
    }
    return PyLong_FromSsize_t(list_find_ll(args[0], value));
}

/* gshare_update(counters, history, mask, shift, address, taken) -> history */
static PyObject *
kernels_gshare_update(PyObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 6 || !PyList_Check(args[0])) {
        PyErr_SetString(
            PyExc_TypeError,
            "gshare_update(counters, history, mask, shift, address, taken)");
        return NULL;
    }
    long long history = PyLong_AsLongLong(args[1]);
    long long mask = PyLong_AsLongLong(args[2]);
    long long shift = PyLong_AsLongLong(args[3]);
    long long address = PyLong_AsLongLong(args[4]);
    int taken = PyObject_IsTrue(args[5]);
    if (taken < 0 || PyErr_Occurred()) {
        return NULL;
    }
    Py_ssize_t index = (Py_ssize_t)(((address >> shift) ^ history) & mask);
    long long counter =
        PyLong_AsLongLong(PyList_GET_ITEM(args[0], index));
    if (taken) {
        if (counter < 3 && list_set_ll(args[0], index, counter + 1) < 0) {
            return NULL;
        }
    } else if (counter > 0 && list_set_ll(args[0], index, counter - 1) < 0) {
        return NULL;
    }
    return PyLong_FromLongLong(((history << 1) | (taken ? 1 : 0)) & mask);
}

/* btb_probe(tags, targets, index, address) -> target or None */
static PyObject *
kernels_btb_probe(PyObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 4 || !PyList_Check(args[0]) || !PyList_Check(args[1])) {
        PyErr_SetString(PyExc_TypeError,
                        "btb_probe(tags, targets, index, address)");
        return NULL;
    }
    Py_ssize_t index = PyLong_AsSsize_t(args[2]);
    long long address = PyLong_AsLongLong(args[3]);
    if (PyErr_Occurred()) {
        return NULL;
    }
    PyObject *tag = PyList_GET_ITEM(args[0], index);
    if (PyLong_Check(tag) && PyLong_AsLongLong(tag) == address) {
        PyObject *target = PyList_GET_ITEM(args[1], index);
        Py_INCREF(target);
        return target;
    }
    Py_RETURN_NONE;
}

/* The shared lb/L1/L2 warm tables of one core, bound once per call so
 * the per-line helper below keeps a flat signature. */
typedef struct {
    PyObject *lb_lines;
    PyObject *lb_uses;
    Py_ssize_t lb_n;
    long long lb_clock;
    PyObject *l1_tags;
    PyObject *l1_order;
    Py_ssize_t l1_ways;
    long long l1_shift;
    long long l1_set_mask;
    PyObject *l1_seen;
    PyObject *l2_tags;
    PyObject *l2_order;
    Py_ssize_t l2_ways;
    long long l2_shift;
    long long l2_set_mask;
    PyObject *l2_seen;
} warm_tables;

/* One line through the line buffers, then L1I and L2 on misses —
 * the per-line body of pylib.warm_lines/warm_span, statement for
 * statement (first-match scans, first-minimum victims, lazy order
 * lists). Returns 0, or -1 with an exception set. */
static int
warm_one_line(warm_tables *t, long long line)
{
    t->lb_clock++;
    Py_ssize_t slot = list_find_ll(t->lb_lines, line);
    if (slot >= 0) {
        return list_set_ll(t->lb_uses, slot, t->lb_clock);
    }
    /* Buffer miss: first least-recently-used slot. */
    Py_ssize_t victim = 0;
    long long best = PyLong_AsLongLong(PyList_GET_ITEM(t->lb_uses, 0));
    for (Py_ssize_t i = 1; i < t->lb_n; i++) {
        long long use = PyLong_AsLongLong(PyList_GET_ITEM(t->lb_uses, i));
        if (use < best) {
            best = use;
            victim = i;
        }
    }
    t->lb_clock++;
    if (list_set_ll(t->lb_lines, victim, line) < 0 ||
        list_set_ll(t->lb_uses, victim, t->lb_clock) < 0) {
        return -1;
    }
    /* L1I access (LRU; the caller guards on the policy type). */
    Py_ssize_t set_index = (Py_ssize_t)((line >> t->l1_shift) & t->l1_set_mask);
    PyObject *row = PyList_GET_ITEM(t->l1_tags, set_index);
    Py_ssize_t way = list_find_ll(row, line);
    PyObject *order;
    if (way >= 0) {
        order = ensure_order(t->l1_order, set_index, t->l1_ways);
        if (order == NULL || order_touch(order, (long long)way) < 0) {
            return -1;
        }
        return 0;
    }
    way = list_find_none(row);
    if (way < 0) {
        order = ensure_order(t->l1_order, set_index, t->l1_ways);
        if (order == NULL) {
            return -1;
        }
        way = PyLong_AsSsize_t(PyList_GET_ITEM(order, 0));
    }
    if (list_set_ll(row, way, line) < 0) {
        return -1;
    }
    order = ensure_order(t->l1_order, set_index, t->l1_ways);
    if (order == NULL || order_touch(order, (long long)way) < 0) {
        return -1;
    }
    if (seen_add_ll(t->l1_seen, line) < 0) {
        return -1;
    }
    /* L1 miss: walk the line through the L2 (always LRU). */
    Py_ssize_t l2_set = (Py_ssize_t)((line >> t->l2_shift) & t->l2_set_mask);
    PyObject *l2_row = PyList_GET_ITEM(t->l2_tags, l2_set);
    Py_ssize_t l2_way = list_find_ll(l2_row, line);
    if (l2_way < 0) {
        l2_way = list_find_none(l2_row);
        if (l2_way < 0) {
            order = ensure_order(t->l2_order, l2_set, t->l2_ways);
            if (order == NULL) {
                return -1;
            }
            l2_way = PyLong_AsSsize_t(PyList_GET_ITEM(order, 0));
        }
        if (list_set_ll(l2_row, l2_way, line) < 0 ||
            seen_add_ll(t->l2_seen, line) < 0) {
            return -1;
        }
    }
    order = ensure_order(t->l2_order, l2_set, t->l2_ways);
    if (order == NULL || order_touch(order, (long long)l2_way) < 0) {
        return -1;
    }
    return 0;
}

/* One iTLB lookup during warming: clock bump, hit refresh, or
 * seen-set insert + first-minimum LRU eviction (dict insertion order,
 * exactly `min(t_map, key=t_map.__getitem__)`) + install. Returns 0,
 * or -1 with an exception set. */
static int
itlb_step(PyObject *t_map, PyObject *t_seen, long long *t_clock,
          long long page, Py_ssize_t t_capacity)
{
    (*t_clock)++;
    PyObject *key = PyLong_FromLongLong(page);
    if (key == NULL) {
        return -1;
    }
    int resident = PyDict_Contains(t_map, key);
    if (resident < 0) {
        Py_DECREF(key);
        return -1;
    }
    if (!resident) {
        if (PySet_Add(t_seen, key) < 0) {
            Py_DECREF(key);
            return -1;
        }
        if (PyDict_GET_SIZE(t_map) >= t_capacity) {
            /* First minimum over insertion order, like Python's min()
             * over dict keys. */
            PyObject *k, *v;
            Py_ssize_t pos = 0;
            PyObject *victim = NULL;
            long long best = 0;
            while (PyDict_Next(t_map, &pos, &k, &v)) {
                long long use = PyLong_AsLongLong(v);
                if (victim == NULL || use < best) {
                    best = use;
                    victim = k;
                }
            }
            Py_INCREF(victim);
            int rc = PyDict_DelItem(t_map, victim);
            Py_DECREF(victim);
            if (rc < 0) {
                Py_DECREF(key);
                return -1;
            }
        }
    }
    PyObject *clock_obj = PyLong_FromLongLong(*t_clock);
    if (clock_obj == NULL) {
        Py_DECREF(key);
        return -1;
    }
    int rc = PyDict_SetItem(t_map, key, clock_obj);
    Py_DECREF(key);
    Py_DECREF(clock_obj);
    return rc;
}

/* warm_lines(line, end_address, line_bytes,
 *            lb_lines, lb_uses, lb_clock,
 *            l1_tags, l1_order, l1_ways, l1_shift, l1_set_mask, l1_seen,
 *            l2_tags, l2_order, l2_ways, l2_shift, l2_set_mask, l2_seen)
 *   -> new lb_clock
 * Mirrors pylib.warm_lines statement for statement. */
static PyObject *
kernels_warm_lines(PyObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 18) {
        PyErr_SetString(PyExc_TypeError, "warm_lines expects 18 arguments");
        return NULL;
    }
    long long line = PyLong_AsLongLong(args[0]);
    long long end_address = PyLong_AsLongLong(args[1]);
    long long line_bytes = PyLong_AsLongLong(args[2]);
    warm_tables t;
    t.lb_lines = args[3];
    t.lb_uses = args[4];
    t.lb_clock = PyLong_AsLongLong(args[5]);
    t.l1_tags = args[6];
    t.l1_order = args[7];
    t.l1_ways = PyLong_AsSsize_t(args[8]);
    t.l1_shift = PyLong_AsLongLong(args[9]);
    t.l1_set_mask = PyLong_AsLongLong(args[10]);
    t.l1_seen = args[11];
    t.l2_tags = args[12];
    t.l2_order = args[13];
    t.l2_ways = PyLong_AsSsize_t(args[14]);
    t.l2_shift = PyLong_AsLongLong(args[15]);
    t.l2_set_mask = PyLong_AsLongLong(args[16]);
    t.l2_seen = args[17];
    if (PyErr_Occurred()) {
        return NULL;
    }
    if (!PyList_Check(t.lb_lines) || !PyList_Check(t.lb_uses) ||
        !PyList_Check(t.l1_tags) || !PyList_Check(t.l1_order) ||
        !PyList_Check(t.l2_tags) || !PyList_Check(t.l2_order) ||
        !PySet_Check(t.l1_seen) || !PySet_Check(t.l2_seen)) {
        PyErr_SetString(PyExc_TypeError,
                        "warm_lines table arguments must be lists/sets");
        return NULL;
    }
    t.lb_n = PyList_GET_SIZE(t.lb_lines);

    for (; line < end_address; line += line_bytes) {
        if (warm_one_line(&t, line) < 0) {
            return NULL;
        }
    }
    return PyLong_FromLongLong(t.lb_clock);
}

/* warm_span(bstart, bend, line_bytes,
 *           starts, counts, kinds, keys, targets, takens,
 *           lb_lines, lb_uses, lb_clock,
 *           l1_tags, l1_order, l1_ways, l1_shift, l1_set_mask, l1_seen,
 *           l2_tags, l2_order, l2_ways, l2_shift, l2_set_mask, l2_seen,
 *           g_counters, g_history, g_mask, g_shift,
 *           lp_tags, lp_trips, lp_currents, lp_conf, lp_mask, lp_shift,
 *           b_tags, b_targets, b_mask, b_shift,
 *           t_map, t_seen, t_clock, t_shift, t_capacity)
 *   -> (lb_clock, g_history, t_clock)
 * Mirrors pylib.warm_span statement for statement: the whole encoded
 * span — iTLB + lb/L1/L2 per line, gshare/loop/BTB per block — in one
 * call. t_map may be None (no iTLB). */
static PyObject *
kernels_warm_span(PyObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 43) {
        PyErr_SetString(PyExc_TypeError, "warm_span expects 43 arguments");
        return NULL;
    }
    Py_ssize_t bstart = PyLong_AsSsize_t(args[0]);
    Py_ssize_t bend = PyLong_AsSsize_t(args[1]);
    long long line_bytes = PyLong_AsLongLong(args[2]);
    PyObject *starts = args[3];
    PyObject *counts = args[4];
    PyObject *kinds = args[5];
    PyObject *keys = args[6];
    PyObject *targets = args[7];
    PyObject *takens = args[8];
    warm_tables t;
    t.lb_lines = args[9];
    t.lb_uses = args[10];
    t.lb_clock = PyLong_AsLongLong(args[11]);
    t.l1_tags = args[12];
    t.l1_order = args[13];
    t.l1_ways = PyLong_AsSsize_t(args[14]);
    t.l1_shift = PyLong_AsLongLong(args[15]);
    t.l1_set_mask = PyLong_AsLongLong(args[16]);
    t.l1_seen = args[17];
    t.l2_tags = args[18];
    t.l2_order = args[19];
    t.l2_ways = PyLong_AsSsize_t(args[20]);
    t.l2_shift = PyLong_AsLongLong(args[21]);
    t.l2_set_mask = PyLong_AsLongLong(args[22]);
    t.l2_seen = args[23];
    PyObject *g_counters = args[24];
    long long g_history = PyLong_AsLongLong(args[25]);
    long long g_mask = PyLong_AsLongLong(args[26]);
    long long g_shift = PyLong_AsLongLong(args[27]);
    PyObject *lp_tags = args[28];
    PyObject *lp_trips = args[29];
    PyObject *lp_currents = args[30];
    PyObject *lp_conf = args[31];
    long long lp_mask = PyLong_AsLongLong(args[32]);
    long long lp_shift = PyLong_AsLongLong(args[33]);
    PyObject *b_tags = args[34];
    PyObject *b_targets = args[35];
    long long b_mask = PyLong_AsLongLong(args[36]);
    long long b_shift = PyLong_AsLongLong(args[37]);
    PyObject *t_map = args[38];
    PyObject *t_seen = args[39];
    long long t_clock = PyLong_AsLongLong(args[40]);
    long long t_shift = PyLong_AsLongLong(args[41]);
    Py_ssize_t t_capacity = PyLong_AsSsize_t(args[42]);
    if (PyErr_Occurred()) {
        return NULL;
    }
    int have_itlb = t_map != Py_None;
    if (!PyList_Check(starts) || !PyList_Check(counts) ||
        !PyList_Check(kinds) || !PyList_Check(keys) ||
        !PyList_Check(targets) || !PyList_Check(takens) ||
        !PyList_Check(t.lb_lines) || !PyList_Check(t.lb_uses) ||
        !PyList_Check(t.l1_tags) || !PyList_Check(t.l1_order) ||
        !PyList_Check(t.l2_tags) || !PyList_Check(t.l2_order) ||
        !PySet_Check(t.l1_seen) || !PySet_Check(t.l2_seen) ||
        !PyList_Check(g_counters) || !PyList_Check(lp_tags) ||
        !PyList_Check(lp_trips) || !PyList_Check(lp_currents) ||
        !PyList_Check(lp_conf) || !PyList_Check(b_tags) ||
        !PyList_Check(b_targets) ||
        (have_itlb && (!PyDict_Check(t_map) || !PySet_Check(t_seen)))) {
        PyErr_SetString(PyExc_TypeError,
                        "warm_span table arguments must be lists/sets/dicts");
        return NULL;
    }
    if (bstart < 0 || bend > PyList_GET_SIZE(starts)) {
        PyErr_SetString(PyExc_IndexError, "warm_span block range out of bounds");
        return NULL;
    }
    t.lb_n = PyList_GET_SIZE(t.lb_lines);

    for (Py_ssize_t index = bstart; index < bend; index++) {
        long long line = PyLong_AsLongLong(PyList_GET_ITEM(starts, index));
        long long count = PyLong_AsLongLong(PyList_GET_ITEM(counts, index));
        for (long long i = 0; i < count; i++) {
            if (have_itlb &&
                itlb_step(t_map, t_seen, &t_clock, line >> t_shift,
                          t_capacity) < 0) {
                return NULL;
            }
            if (warm_one_line(&t, line) < 0) {
                return NULL;
            }
            line += line_bytes;
        }
        long long kind = PyLong_AsLongLong(PyList_GET_ITEM(kinds, index));
        if (kind == 1) {
            long long address =
                PyLong_AsLongLong(PyList_GET_ITEM(keys, index));
            long long taken =
                PyLong_AsLongLong(PyList_GET_ITEM(takens, index));
            Py_ssize_t gi =
                (Py_ssize_t)(((address >> g_shift) ^ g_history) & g_mask);
            long long counter =
                PyLong_AsLongLong(PyList_GET_ITEM(g_counters, gi));
            if (taken) {
                if (counter < 3 &&
                    list_set_ll(g_counters, gi, counter + 1) < 0) {
                    return NULL;
                }
            } else if (counter > 0 &&
                       list_set_ll(g_counters, gi, counter - 1) < 0) {
                return NULL;
            }
            g_history = ((g_history << 1) | (taken ? 1 : 0)) & g_mask;
            long long tag = address >> lp_shift;
            Py_ssize_t lp_index = (Py_ssize_t)(tag & lp_mask);
            long long cur_tag =
                PyLong_AsLongLong(PyList_GET_ITEM(lp_tags, lp_index));
            if (cur_tag != tag) {
                if (!taken &&
                    (list_set_ll(lp_tags, lp_index, tag) < 0 ||
                     list_set_ll(lp_trips, lp_index, 0) < 0 ||
                     list_set_ll(lp_currents, lp_index, 0) < 0 ||
                     list_set_ll(lp_conf, lp_index, 0) < 0)) {
                    return NULL;
                }
            } else if (taken) {
                long long current =
                    PyLong_AsLongLong(PyList_GET_ITEM(lp_currents, lp_index));
                if (list_set_ll(lp_currents, lp_index, current + 1) < 0) {
                    return NULL;
                }
            } else {
                long long observed = PyLong_AsLongLong(
                    PyList_GET_ITEM(lp_currents, lp_index)) + 1;
                long long trips =
                    PyLong_AsLongLong(PyList_GET_ITEM(lp_trips, lp_index));
                if (observed == trips) {
                    long long confidence =
                        PyLong_AsLongLong(PyList_GET_ITEM(lp_conf, lp_index));
                    if (confidence < 3 &&
                        list_set_ll(lp_conf, lp_index, confidence + 1) < 0) {
                        return NULL;
                    }
                } else if (list_set_ll(lp_trips, lp_index, observed) < 0 ||
                           list_set_ll(lp_conf, lp_index, 0) < 0) {
                    return NULL;
                }
                if (list_set_ll(lp_currents, lp_index, 0) < 0) {
                    return NULL;
                }
            }
        } else if (kind == 2) {
            long long address =
                PyLong_AsLongLong(PyList_GET_ITEM(keys, index));
            Py_ssize_t bi = (Py_ssize_t)((address >> b_shift) & b_mask);
            long long target =
                PyLong_AsLongLong(PyList_GET_ITEM(targets, index));
            if (list_set_ll(b_tags, bi, address) < 0 ||
                list_set_ll(b_targets, bi, target) < 0) {
                return NULL;
            }
        }
    }
    return Py_BuildValue("(LLL)", t.lb_clock, g_history, t_clock);
}

/* replay_walk(mode, credit, ipc, iq, count, space_limit)
 * Mirrors pylib.replay_walk: the CommitEngine's deterministic float
 * credit trajectory, one call per planning/settlement walk. Modes 0-2
 * return an int; mode 3 returns
 * (committed, base_cycles, last_commit, iq, credit, stalled). */
static PyObject *
kernels_replay_walk(PyObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 6) {
        PyErr_SetString(
            PyExc_TypeError,
            "replay_walk(mode, credit, ipc, iq, count, space_limit)");
        return NULL;
    }
    long long mode = PyLong_AsLongLong(args[0]);
    double credit = PyFloat_AsDouble(args[1]);
    double ipc = PyFloat_AsDouble(args[2]);
    long long iq = PyLong_AsLongLong(args[3]);
    long long count = PyLong_AsLongLong(args[4]);
    long long space_limit = PyLong_AsLongLong(args[5]);
    if (PyErr_Occurred()) {
        return NULL;
    }
    if (mode == 0) { /* REPLAY_NEXT */
        for (long long ahead = 1; ahead <= count; ahead++) {
            credit += ipc;
            if (credit >= 1.0) {
                return PyLong_FromLongLong(ahead);
            }
        }
        return PyLong_FromLongLong(0);
    }
    if (mode == 1) { /* REPLAY_HORIZON */
        for (long long ahead = 1; ahead <= count; ahead++) {
            credit += ipc;
            long long commit = (long long)credit;
            if (commit > iq) {
                commit = iq;
            }
            if (commit) {
                iq -= commit;
                credit -= (double)commit;
                if (credit > ipc) {
                    credit = ipc;
                }
                if (iq <= space_limit || iq == 0) {
                    return PyLong_FromLongLong(ahead + 1);
                }
            }
        }
        return PyLong_FromLongLong(count);
    }
    if (mode == 2) { /* REPLAY_DRAIN */
        for (long long ahead = 1; ahead <= count; ahead++) {
            credit += ipc;
            long long commit = (long long)credit;
            if (commit > iq) {
                commit = iq;
            }
            if (commit) {
                iq -= commit;
                credit -= (double)commit;
                if (credit > ipc) {
                    credit = ipc;
                }
                if (iq == 0) {
                    return PyLong_FromLongLong(ahead);
                }
            }
        }
        return PyLong_FromLongLong(0);
    }
    /* REPLAY_STEPS */
    long long committed = 0;
    long long base_cycles = 0;
    long long last_commit = 0;
    int stalled = 0;
    for (long long offset = 1; offset <= count; offset++) {
        credit += ipc;
        long long commit = (long long)credit;
        if (commit > iq) {
            commit = iq;
        }
        if (commit > 0) {
            iq -= commit;
            credit -= (double)commit;
            base_cycles++;
            if (credit > ipc) {
                credit = ipc;
            }
            committed += commit;
            last_commit = offset;
        } else if (credit >= 1.0) {
            stalled = 1;
            break;
        } else {
            base_cycles++;
        }
    }
    return Py_BuildValue("(LLLLdO)", committed, base_cycles, last_commit,
                         iq, credit, stalled ? Py_True : Py_False);
}

static PyMethodDef kernels_methods[] = {
    {"find_way", (PyCFunction)kernels_find_way, METH_FASTCALL,
     "First index of target in row, or -1."},
    {"gshare_update", (PyCFunction)kernels_gshare_update, METH_FASTCALL,
     "One gshare training step; returns the new history."},
    {"btb_probe", (PyCFunction)kernels_btb_probe, METH_FASTCALL,
     "Tagged BTB probe; returns the target or None."},
    {"warm_lines", (PyCFunction)kernels_warm_lines, METH_FASTCALL,
     "Warm one basic block's lines through lb/L1/L2."},
    {"warm_span", (PyCFunction)kernels_warm_span, METH_FASTCALL,
     "Warm a whole encoded span: iTLB + lb/L1/L2 + branch structures."},
    {"replay_walk", (PyCFunction)kernels_replay_walk, METH_FASTCALL,
     "Walk a deterministic commit/pacing credit trajectory."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef kernels_module = {
    PyModuleDef_HEAD_INIT,
    "_native",
    "Compiled hot-structure kernels (see repro.kernels.pylib).",
    -1,
    kernels_methods,
};

PyMODINIT_FUNC
PyInit__native(void)
{
    return PyModule_Create(&kernels_module);
}
