"""Pure-Python kernel reference implementations.

These functions define the exact semantics the compiled backend
(``repro.kernels._native``) must reproduce bit for bit — first-match
scans, first-minimum victim tie-breaks, lazy LRU order-list
materialization, insertion order of the seen-sets. The equivalence
tests run both backends over the same randomized operation streams and
compare final table states.

Production pure-Python code paths keep their original inline loops
(:mod:`repro.cache.set_assoc`, :mod:`repro.sampling.warmer`) rather
than calling through here, so the fallback pays no extra function-call
overhead; this module is the specification and the test oracle.
"""

from __future__ import annotations

__all__ = ["find_way", "gshare_update", "btb_probe", "warm_lines"]


def find_way(row: list, target) -> int:
    """First index of ``target`` in ``row``, or -1 when absent.

    ``target`` is a line address or ``None`` (an invalid way); matches
    ``list.index`` semantics with the exception swallowed.
    """
    try:
        return row.index(target)
    except ValueError:
        return -1


def gshare_update(
    counters: list[int],
    history: int,
    mask: int,
    shift: int,
    address: int,
    taken: bool,
) -> int:
    """One gshare training step; returns the new global history.

    Saturates the 2-bit counter at ``(address >> shift) ^ history``
    (masked) toward ``taken`` and shifts the outcome into the history —
    exactly :meth:`repro.branch.gshare.GsharePredictor.update`.
    """
    index = ((address >> shift) ^ history) & mask
    counter = counters[index]
    if taken:
        if counter < 3:
            counters[index] = counter + 1
    elif counter > 0:
        counters[index] = counter - 1
    return ((history << 1) | (1 if taken else 0)) & mask


def btb_probe(tags: list[int], targets: list[int], index: int, address: int):
    """Tagged direct-mapped BTB probe: the stored target, or ``None``."""
    if tags[index] == address:
        return targets[index]
    return None


def warm_lines(
    line: int,
    end_address: int,
    line_bytes: int,
    lb_lines: list,
    lb_uses: list[int],
    lb_clock: int,
    l1_tags: list[list],
    l1_order: list,
    l1_ways: int,
    l1_shift: int,
    l1_set_mask: int,
    l1_seen: set[int],
    l2_tags: list[list],
    l2_order: list,
    l2_ways: int,
    l2_shift: int,
    l2_set_mask: int,
    l2_seen: set[int],
) -> int:
    """Functionally warm one basic block's lines through lb/L1/L2.

    The :class:`~repro.sampling.warmer.BatchedWarmer` inner line walk
    for one block, factored to a flat argument list so the compiled
    backend can replace it wholesale: probe the flattened line buffers
    (first-minimum LRU victim on miss), then the LRU L1 tag rows, then
    the LRU L2, materializing lazy order lists exactly like
    :class:`~repro.cache.replacement.LruPolicy`. Branch-predictor and
    iTLB warm state are independent structures and stay with the
    caller. Returns the advanced line-buffer clock; all tables are
    mutated in place.
    """
    lb_range = range(len(lb_lines))
    lb_uses_get = lb_uses.__getitem__
    while line < end_address:
        lb_clock += 1
        for slot in lb_range:
            if lb_lines[slot] == line:
                lb_uses[slot] = lb_clock
                break
        else:
            victim = min(lb_range, key=lb_uses_get)
            lb_clock += 1
            lb_lines[victim] = line
            lb_uses[victim] = lb_clock
            set_index = (line >> l1_shift) & l1_set_mask
            row = l1_tags[set_index]
            try:
                way = row.index(line)
                hit = True
            except ValueError:
                hit = False
            if hit:
                order = l1_order[set_index]
                if order is None:
                    order = list(range(l1_ways))
                    l1_order[set_index] = order
                order.remove(way)
                order.append(way)
            else:
                try:
                    way = row.index(None)
                except ValueError:
                    order = l1_order[set_index]
                    if order is None:
                        order = list(range(l1_ways))
                        l1_order[set_index] = order
                    way = order[0]
                row[way] = line
                order = l1_order[set_index]
                if order is None:
                    order = list(range(l1_ways))
                    l1_order[set_index] = order
                order.remove(way)
                order.append(way)
                l1_seen.add(line)
                l2_set = (line >> l2_shift) & l2_set_mask
                l2_row = l2_tags[l2_set]
                try:
                    l2_way = l2_row.index(line)
                    l2_hit = True
                except ValueError:
                    l2_hit = False
                if not l2_hit:
                    try:
                        l2_way = l2_row.index(None)
                    except ValueError:
                        order = l2_order[l2_set]
                        if order is None:
                            order = list(range(l2_ways))
                            l2_order[l2_set] = order
                        l2_way = order[0]
                    l2_row[l2_way] = line
                    l2_seen.add(line)
                order = l2_order[l2_set]
                if order is None:
                    order = list(range(l2_ways))
                    l2_order[l2_set] = order
                order.remove(l2_way)
                order.append(l2_way)
        line += line_bytes
    return lb_clock
