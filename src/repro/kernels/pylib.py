"""Pure-Python kernel reference implementations.

These functions define the exact semantics the compiled backend
(``repro.kernels._native``) must reproduce bit for bit — first-match
scans, first-minimum victim tie-breaks, lazy LRU order-list
materialization, insertion order of the seen-sets. The equivalence
tests run both backends over the same randomized operation streams and
compare final table states.

Production pure-Python code paths keep their original inline loops
(:mod:`repro.cache.set_assoc`, :mod:`repro.sampling.warmer`) rather
than calling through here, so the fallback pays no extra function-call
overhead; this module is the specification and the test oracle.
"""

from __future__ import annotations

__all__ = [
    "find_way",
    "gshare_update",
    "btb_probe",
    "warm_lines",
    "warm_span",
    "replay_walk",
    "REPLAY_NEXT",
    "REPLAY_HORIZON",
    "REPLAY_DRAIN",
    "REPLAY_STEPS",
]

#: :func:`replay_walk` mode selectors (one compiled entry point serves
#: all four deterministic commit-trajectory walks of
#: :class:`repro.backend.backend.CommitEngine`).
REPLAY_NEXT = 0  # cycles_to_next_commit: first credit >= 1.0 crossing
REPLAY_HORIZON = 1  # replay_horizon: drain/space trigger, else cap
REPLAY_DRAIN = 2  # drain_horizon: exact queue-empty cycle, else none
REPLAY_STEPS = 3  # replay_steps: settle a span, return the new state


def find_way(row: list, target) -> int:
    """First index of ``target`` in ``row``, or -1 when absent.

    ``target`` is a line address or ``None`` (an invalid way); matches
    ``list.index`` semantics with the exception swallowed.
    """
    try:
        return row.index(target)
    except ValueError:
        return -1


def gshare_update(
    counters: list[int],
    history: int,
    mask: int,
    shift: int,
    address: int,
    taken: bool,
) -> int:
    """One gshare training step; returns the new global history.

    Saturates the 2-bit counter at ``(address >> shift) ^ history``
    (masked) toward ``taken`` and shifts the outcome into the history —
    exactly :meth:`repro.branch.gshare.GsharePredictor.update`.
    """
    index = ((address >> shift) ^ history) & mask
    counter = counters[index]
    if taken:
        if counter < 3:
            counters[index] = counter + 1
    elif counter > 0:
        counters[index] = counter - 1
    return ((history << 1) | (1 if taken else 0)) & mask


def btb_probe(tags: list[int], targets: list[int], index: int, address: int):
    """Tagged direct-mapped BTB probe: the stored target, or ``None``."""
    if tags[index] == address:
        return targets[index]
    return None


def warm_lines(
    line: int,
    end_address: int,
    line_bytes: int,
    lb_lines: list,
    lb_uses: list[int],
    lb_clock: int,
    l1_tags: list[list],
    l1_order: list,
    l1_ways: int,
    l1_shift: int,
    l1_set_mask: int,
    l1_seen: set[int],
    l2_tags: list[list],
    l2_order: list,
    l2_ways: int,
    l2_shift: int,
    l2_set_mask: int,
    l2_seen: set[int],
) -> int:
    """Functionally warm one basic block's lines through lb/L1/L2.

    The :class:`~repro.sampling.warmer.BatchedWarmer` inner line walk
    for one block, factored to a flat argument list so the compiled
    backend can replace it wholesale: probe the flattened line buffers
    (first-minimum LRU victim on miss), then the LRU L1 tag rows, then
    the LRU L2, materializing lazy order lists exactly like
    :class:`~repro.cache.replacement.LruPolicy`. Branch-predictor and
    iTLB warm state are independent structures and stay with the
    caller. Returns the advanced line-buffer clock; all tables are
    mutated in place.
    """
    lb_range = range(len(lb_lines))
    lb_uses_get = lb_uses.__getitem__
    while line < end_address:
        lb_clock += 1
        for slot in lb_range:
            if lb_lines[slot] == line:
                lb_uses[slot] = lb_clock
                break
        else:
            victim = min(lb_range, key=lb_uses_get)
            lb_clock += 1
            lb_lines[victim] = line
            lb_uses[victim] = lb_clock
            set_index = (line >> l1_shift) & l1_set_mask
            row = l1_tags[set_index]
            try:
                way = row.index(line)
                hit = True
            except ValueError:
                hit = False
            if hit:
                order = l1_order[set_index]
                if order is None:
                    order = list(range(l1_ways))
                    l1_order[set_index] = order
                order.remove(way)
                order.append(way)
            else:
                try:
                    way = row.index(None)
                except ValueError:
                    order = l1_order[set_index]
                    if order is None:
                        order = list(range(l1_ways))
                        l1_order[set_index] = order
                    way = order[0]
                row[way] = line
                order = l1_order[set_index]
                if order is None:
                    order = list(range(l1_ways))
                    l1_order[set_index] = order
                order.remove(way)
                order.append(way)
                l1_seen.add(line)
                l2_set = (line >> l2_shift) & l2_set_mask
                l2_row = l2_tags[l2_set]
                try:
                    l2_way = l2_row.index(line)
                    l2_hit = True
                except ValueError:
                    l2_hit = False
                if not l2_hit:
                    try:
                        l2_way = l2_row.index(None)
                    except ValueError:
                        order = l2_order[l2_set]
                        if order is None:
                            order = list(range(l2_ways))
                            l2_order[l2_set] = order
                        l2_way = order[0]
                    l2_row[l2_way] = line
                    l2_seen.add(line)
                order = l2_order[l2_set]
                if order is None:
                    order = list(range(l2_ways))
                    l2_order[l2_set] = order
                order.remove(l2_way)
                order.append(l2_way)
        line += line_bytes
    return lb_clock


def warm_span(
    bstart: int,
    bend: int,
    line_bytes: int,
    starts: list[int],
    counts: list[int],
    kinds: list[int],
    keys: list[int],
    targets: list[int],
    takens: list[int],
    lb_lines: list,
    lb_uses: list[int],
    lb_clock: int,
    l1_tags: list[list],
    l1_order: list,
    l1_ways: int,
    l1_shift: int,
    l1_set_mask: int,
    l1_seen: set[int],
    l2_tags: list[list],
    l2_order: list,
    l2_ways: int,
    l2_shift: int,
    l2_set_mask: int,
    l2_seen: set[int],
    g_counters: list[int],
    g_history: int,
    g_mask: int,
    g_shift: int,
    lp_tags: list[int],
    lp_trips: list[int],
    lp_currents: list[int],
    lp_conf: list[int],
    lp_mask: int,
    lp_shift: int,
    b_tags: list[int],
    b_targets: list[int],
    b_mask: int,
    b_shift: int,
    t_map: dict[int, int] | None,
    t_seen: set[int] | None,
    t_clock: int,
    t_shift: int,
    t_capacity: int,
) -> tuple[int, int, int]:
    """Functionally warm a whole encoded span in one call.

    The :class:`~repro.sampling.warmer.BatchedWarmer` span walk,
    batched: blocks ``[bstart, bend)`` of one thread's flat span
    encoding (``starts``/``counts`` give each block's first line
    address and line count; ``kinds``/``keys``/``targets``/``takens``
    its terminating branch — kind 0 trains nothing, 1 is conditional,
    2 is indirect) walk the iTLB, the line buffers and the LRU L1I/L2
    per line, then the gshare, loop-predictor and BTB updates per
    block — exactly the per-structure operation sequences of the
    scalar walk, including LRU tie-breaks, seen-set/translation
    insertion order and clock bumps. ``t_map=None`` skips the iTLB (a
    core without one). Returns ``(lb_clock, g_history, t_clock)``; all
    tables are mutated in place.
    """
    lb_range = range(len(lb_lines))
    lb_uses_get = lb_uses.__getitem__
    have_itlb = t_map is not None
    if have_itlb:
        t_map_get = t_map.__getitem__
    for index in range(bstart, bend):
        line = starts[index]
        for _ in range(counts[index]):
            if have_itlb:
                page = line >> t_shift
                t_clock += 1
                if page in t_map:
                    t_map[page] = t_clock
                else:
                    t_seen.add(page)
                    if len(t_map) >= t_capacity:
                        del t_map[min(t_map, key=t_map_get)]
                    t_map[page] = t_clock
            lb_clock += 1
            for slot in lb_range:
                if lb_lines[slot] == line:
                    lb_uses[slot] = lb_clock
                    break
            else:
                victim = min(lb_range, key=lb_uses_get)
                lb_clock += 1
                lb_lines[victim] = line
                lb_uses[victim] = lb_clock
                set_index = (line >> l1_shift) & l1_set_mask
                row = l1_tags[set_index]
                try:
                    way = row.index(line)
                    hit = True
                except ValueError:
                    hit = False
                if hit:
                    order = l1_order[set_index]
                    if order is None:
                        order = list(range(l1_ways))
                        l1_order[set_index] = order
                    order.remove(way)
                    order.append(way)
                else:
                    try:
                        way = row.index(None)
                    except ValueError:
                        order = l1_order[set_index]
                        if order is None:
                            order = list(range(l1_ways))
                            l1_order[set_index] = order
                        way = order[0]
                    row[way] = line
                    order = l1_order[set_index]
                    if order is None:
                        order = list(range(l1_ways))
                        l1_order[set_index] = order
                    order.remove(way)
                    order.append(way)
                    l1_seen.add(line)
                    l2_set = (line >> l2_shift) & l2_set_mask
                    l2_row = l2_tags[l2_set]
                    try:
                        l2_way = l2_row.index(line)
                        l2_hit = True
                    except ValueError:
                        l2_hit = False
                    if not l2_hit:
                        try:
                            l2_way = l2_row.index(None)
                        except ValueError:
                            order = l2_order[l2_set]
                            if order is None:
                                order = list(range(l2_ways))
                                l2_order[l2_set] = order
                            l2_way = order[0]
                        l2_row[l2_way] = line
                        l2_seen.add(line)
                    order = l2_order[l2_set]
                    if order is None:
                        order = list(range(l2_ways))
                        l2_order[l2_set] = order
                    order.remove(l2_way)
                    order.append(l2_way)
            line += line_bytes
        kind = kinds[index]
        if kind == 1:
            address = keys[index]
            taken = takens[index]
            gi = ((address >> g_shift) ^ g_history) & g_mask
            counter = g_counters[gi]
            if taken:
                if counter < 3:
                    g_counters[gi] = counter + 1
            elif counter > 0:
                g_counters[gi] = counter - 1
            g_history = ((g_history << 1) | (1 if taken else 0)) & g_mask
            tag = address >> lp_shift
            lp_index = tag & lp_mask
            if lp_tags[lp_index] != tag:
                if not taken:
                    lp_tags[lp_index] = tag
                    lp_trips[lp_index] = 0
                    lp_currents[lp_index] = 0
                    lp_conf[lp_index] = 0
            elif taken:
                lp_currents[lp_index] += 1
            else:
                observed = lp_currents[lp_index] + 1
                if observed == lp_trips[lp_index]:
                    confidence = lp_conf[lp_index]
                    if confidence < 3:
                        lp_conf[lp_index] = confidence + 1
                else:
                    lp_trips[lp_index] = observed
                    lp_conf[lp_index] = 0
                lp_currents[lp_index] = 0
        elif kind == 2:
            address = keys[index]
            bi = (address >> b_shift) & b_mask
            b_tags[bi] = address
            b_targets[bi] = targets[index]
    return lb_clock, g_history, t_clock


def replay_walk(
    mode: int,
    credit: float,
    ipc: float,
    iq: int,
    count: int,
    space_limit: int,
):
    """Walk a deterministic commit/pacing trajectory in one call.

    The four planning/settlement walks of
    :class:`repro.backend.backend.CommitEngine` share one float credit
    trajectory — repeated ``credit += ipc`` additions with truncating
    commits — whose rounding must match the stepped engine bit for
    bit, so every mode replays exactly the additions ``step``
    performs:

    * ``REPLAY_NEXT`` (``cycles_to_next_commit``): the first cycle the
      credit crosses 1.0; returns the relative cycle, or 0 when no
      crossing lands within ``count`` cycles.
    * ``REPLAY_HORIZON`` (``replay_horizon``): the replay-window
      bound — one cycle past the commit that drains the queue or frees
      ``iq <= space_limit`` room, else ``count``. Pass
      ``space_limit=-1`` for no space gate.
    * ``REPLAY_DRAIN`` (``drain_horizon``): the exact cycle the queue
      empties, or 0 when it does not drain within ``count`` cycles.
    * ``REPLAY_STEPS`` (``replay_steps``): settle ``count``
      consecutive commit/pacing cycles; returns ``(committed,
      base_cycles, last_commit, iq, credit, stalled)`` where
      ``last_commit`` is the 1-based offset of the last committing
      cycle (0 for pure pacing) and ``stalled`` flags a span that
      crossed a stall boundary — the walk stops on the stall cycle
      with its credit addition applied and no base cycle charged,
      exactly the prefix state a stepped run raises from.

    Modes 0-2 mutate nothing and return a plain int; mode 3 is pure
    too — the caller applies the returned state.
    """
    if mode == REPLAY_NEXT:
        for ahead in range(1, count + 1):
            credit += ipc
            if credit >= 1.0:
                return ahead
        return 0
    if mode == REPLAY_HORIZON:
        for ahead in range(1, count + 1):
            credit += ipc
            commit = min(int(credit), iq)
            if commit:
                iq -= commit
                credit = min(credit - commit, ipc)
                if iq <= space_limit or iq == 0:
                    return ahead + 1
        return count
    if mode == REPLAY_DRAIN:
        for ahead in range(1, count + 1):
            credit += ipc
            commit = min(int(credit), iq)
            if commit:
                iq -= commit
                credit = min(credit - commit, ipc)
                if iq == 0:
                    return ahead
        return 0
    committed = 0
    base_cycles = 0
    last_commit = 0
    for offset in range(1, count + 1):
        credit += ipc
        commit = min(int(credit), iq)
        if commit > 0:
            iq -= commit
            credit -= commit
            base_cycles += 1
            credit = min(credit, ipc)
            committed += commit
            last_commit = offset
        elif credit >= 1.0:
            return (committed, base_cycles, last_commit, iq, credit, True)
        else:
            base_cycles += 1
    return (committed, base_cycles, last_commit, iq, credit, False)
