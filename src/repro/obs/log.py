"""Shared logging setup for the CLIs.

Every CLI (`repro.experiments`, `repro.campaign`, `repro.trace`,
`repro.obs`) routes its progress and notices through loggers under the
``repro`` namespace; :func:`setup` binds a single stderr handler with a
bare ``%(message)s`` format so the output looks exactly like the print
calls it replaced, while ``--log-level``/``-q`` gain real meaning.

Data outputs (figure text, dumps, status tables, JSON) stay on stdout —
only diagnostics move to logging.
"""

from __future__ import annotations

import argparse
import logging
import sys

ROOT = "repro"

LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}

_MARKER = "_repro_obs_handler"


def setup(level: str | int = "info", stream=None) -> logging.Logger:
    """Configure the ``repro`` logger tree; idempotent.

    Repeated calls (tests invoke ``main()`` many times per process)
    re-point the existing handler at the current ``sys.stderr`` instead
    of stacking handlers.
    """
    logger = logging.getLogger(ROOT)
    if isinstance(level, str):
        level = LEVELS[level.lower()]
    logger.setLevel(level)
    # Propagation stays on: the root logger has no handlers in a CLI
    # process (lastResort stays quiet because our handler counts as
    # handling), while test log capture and applications embedding
    # repro keep seeing records on the root logger.
    stream = stream if stream is not None else sys.stderr
    for handler in logger.handlers:
        if getattr(handler, _MARKER, False):
            if getattr(handler.stream, "closed", False):
                # setStream() flushes the old stream first, which blows
                # up when a test harness has already closed it (capsys
                # tears its streams down between tests); swap directly.
                handler.stream = stream
            elif handler.stream is not stream:
                handler.setStream(stream)
            return logger
    handler = logging.StreamHandler(stream)
    handler.setFormatter(logging.Formatter("%(message)s"))
    setattr(handler, _MARKER, True)
    logger.addHandler(handler)
    return logger


def add_log_arguments(
    parser: argparse.ArgumentParser, quiet: bool = False
) -> None:
    """Attach the shared ``--log-level`` option to a CLI parser.

    ``quiet=True`` also attaches ``-q``/``--quiet`` — for CLIs that
    don't already define their own quiet flag with extra meaning.
    """
    parser.add_argument(
        "--log-level",
        choices=tuple(LEVELS),
        default="info",
        help="diagnostics verbosity on stderr (default: info)",
    )
    if quiet:
        parser.add_argument(
            "-q",
            "--quiet",
            action="store_true",
            help="only warnings and errors on stderr",
        )


def setup_from_args(args: argparse.Namespace) -> logging.Logger:
    """Apply ``--log-level`` (and ``--quiet``, if present) from parsed
    CLI arguments; ``--quiet`` wins and clamps to warnings."""
    level = getattr(args, "log_level", "info")
    if getattr(args, "quiet", False):
        level = "warning"
    return setup(level)
