"""Labelled metrics: counters, gauges and histograms with exact merges.

The registry is the structured replacement for the flat ``KernelStats``
counter bag: every tier (kernel, machine, sampling, campaign, stores)
registers named metrics with string labels (``machine``, ``engine``,
``sampling``, ``kernel_backend``, ...) and the campaign layer merges the
per-run payloads into a rollup without knowing what any metric means.

Design constraints, in priority order:

* **Determinism** — payloads are lists sorted by (name, labels, type) so
  two registries with the same contents serialize byte-identically.
* **Associativity** — ``merge`` must give the same answer regardless of
  how per-run payloads are grouped (campaign shards merge in arbitrary
  order). Counters add, gauges take the max, histograms combine their
  (count, total, min, max) summaries componentwise; none of these
  depend on merge order.
* **No dependencies** — plain stdlib, picklable, JSON-safe values only.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.errors import ObsError

LabelKey = tuple[tuple[str, str], ...]


def canonical_labels(labels: Mapping[str, object]) -> LabelKey:
    """Normalise a label mapping to a sorted tuple of string pairs.

    Label order never matters: ``{"a": 1, "b": 2}`` and ``{"b": 2,
    "a": 1}`` name the same series. Values are stringified so numeric
    labels round-trip through JSON unchanged.
    """
    items = []
    for key, value in labels.items():
        if not key or not isinstance(key, str):
            raise ObsError(f"metric label names must be non-empty str, got {key!r}")
        items.append((key, str(value)))
    items.sort()
    return tuple(items)


class Counter:
    """A monotonically increasing count; merges by summing."""

    kind = "counter"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey, value: int | float = 0):
        self.name = name
        self.labels = labels
        self.value = value

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ObsError(f"counter {self.name!r} cannot decrease (inc {amount})")
        self.value += amount

    def merge(self, other: "Counter") -> None:
        self.value += other.value

    def to_values(self) -> dict:
        return {"value": self.value}


class Gauge:
    """A point-in-time level; merges by max (the only associative choice
    that is also order-independent — "last write" is neither across
    unordered campaign shards)."""

    kind = "gauge"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey, value: int | float = 0):
        self.name = name
        self.labels = labels
        self.value = value

    def set(self, value: int | float) -> None:
        self.value = value

    def merge(self, other: "Gauge") -> None:
        self.value = max(self.value, other.value)

    def to_values(self) -> dict:
        return {"value": self.value}


class Histogram:
    """A (count, total, min, max) summary; merges componentwise."""

    kind = "histogram"
    __slots__ = ("name", "labels", "count", "total", "minimum", "maximum")

    def __init__(
        self,
        name: str,
        labels: LabelKey,
        count: int = 0,
        total: float = 0.0,
        minimum: float | None = None,
        maximum: float | None = None,
    ):
        self.name = name
        self.labels = labels
        self.count = count
        self.total = total
        self.minimum = minimum
        self.maximum = maximum

    def observe(self, value: int | float) -> None:
        self.count += 1
        self.total += value
        self.minimum = value if self.minimum is None else min(self.minimum, value)
        self.maximum = value if self.maximum is None else max(self.maximum, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        self.count += other.count
        self.total += other.total
        for attr in ("minimum", "maximum"):
            theirs = getattr(other, attr)
            if theirs is None:
                continue
            ours = getattr(self, attr)
            pick = min if attr == "minimum" else max
            setattr(self, attr, theirs if ours is None else pick(ours, theirs))

    def to_values(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum,
            "max": self.maximum,
        }


_KINDS = {cls.kind: cls for cls in (Counter, Gauge, Histogram)}


class MetricsRegistry:
    """A bag of labelled metrics addressed by (name, labels)."""

    __slots__ = ("_metrics",)

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, LabelKey], object] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[object]:
        return iter(self._metrics.values())

    def _get(self, cls, name: str, labels: Mapping[str, object]):
        key = (name, canonical_labels(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = cls(name, key[1])
        elif type(metric) is not cls:
            raise ObsError(
                f"metric {name!r}{dict(key[1])} is a {metric.kind}, "
                f"not a {cls.kind}"
            )
        return metric

    def counter(self, name: str, **labels: object) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels: object) -> Histogram:
        return self._get(Histogram, name, labels)

    def find(self, name: str, **labels: object):
        """Return the metric registered under (name, labels), or None."""
        return self._metrics.get((name, canonical_labels(labels)))

    def select(self, prefix: str) -> list:
        """All metrics whose name starts with ``prefix``, sorted."""
        picked = [m for (n, _), m in self._metrics.items() if n.startswith(prefix)]
        picked.sort(key=lambda m: (m.name, m.labels))
        return picked

    # -- merge / relabel ------------------------------------------------

    def merge(self, other: "MetricsRegistry | Iterable[dict]") -> "MetricsRegistry":
        """Fold another registry (or a serialized payload) into this one."""
        if not isinstance(other, MetricsRegistry):
            other = MetricsRegistry.from_payload(other)
        for key, theirs in other._metrics.items():
            ours = self._metrics.get(key)
            if ours is None:
                clone = type(theirs)(theirs.name, theirs.labels)
                clone.merge(theirs)
                self._metrics[key] = clone
            elif type(ours) is not type(theirs):
                raise ObsError(
                    f"cannot merge {theirs.kind} into {ours.kind} "
                    f"for metric {key[0]!r}{dict(key[1])}"
                )
            else:
                ours.merge(theirs)
        return self

    def relabel(self, **labels: object) -> "MetricsRegistry":
        """A new registry with ``labels`` added to (or overriding) every
        metric's label set — how a sampled run stamps ``sampling=<plan>``
        onto the counters its interval runs produced."""
        out = MetricsRegistry()
        for (name, old), metric in self._metrics.items():
            merged = dict(old)
            merged.update(canonical_labels(labels))
            out.merge_metric(name, canonical_labels(merged), metric)
        return out

    def merge_metric(self, name: str, labels: LabelKey, metric) -> None:
        key = (name, labels)
        ours = self._metrics.get(key)
        if ours is None:
            clone = type(metric)(name, labels)
            clone.merge(metric)
            self._metrics[key] = clone
        else:
            ours.merge(metric)

    # -- serialization --------------------------------------------------

    def to_payload(self) -> list[dict]:
        """A deterministic JSON-safe list, sorted by (name, labels)."""
        rows = []
        for (name, labels), metric in self._metrics.items():
            row = {"name": name, "type": metric.kind, "labels": dict(labels)}
            row.update(metric.to_values())
            rows.append(row)
        rows.sort(key=lambda r: (r["name"], tuple(sorted(r["labels"].items()))))
        return rows

    @classmethod
    def from_payload(cls, payload: Iterable[dict]) -> "MetricsRegistry":
        registry = cls()
        for row in payload:
            try:
                name = row["name"]
                kind = _KINDS[row["type"]]
                labels = canonical_labels(row.get("labels", {}))
            except (KeyError, TypeError) as exc:
                raise ObsError(f"malformed metric row {row!r}") from exc
            if kind is Histogram:
                metric = Histogram(
                    name,
                    labels,
                    count=row.get("count", 0),
                    total=row.get("total", 0.0),
                    minimum=row.get("min"),
                    maximum=row.get("max"),
                )
            else:
                metric = kind(name, labels, value=row.get("value", 0))
            registry.merge_metric(name, labels, metric)
        return registry

    @classmethod
    def rollup(cls, payloads: Iterable["MetricsRegistry | Iterable[dict] | None"]):
        """Merge many per-run payloads (skipping None) into one registry."""
        registry = cls()
        for payload in payloads:
            if payload is not None:
                registry.merge(payload)
        return registry
