"""repro.obs — metrics, event timelines and phase profiling.

Three pieces, all zero-cost when disabled:

* :mod:`repro.obs.metrics` — labelled counters / gauges / histograms
  with associative merges, serialized onto ``SimulationResult.metrics``
  and rolled up per campaign;
* :mod:`repro.obs.timeline` — an opt-in ring-buffered span tracer
  exported as Chrome-trace / Perfetto JSON (``python -m repro.obs
  timeline``);
* :mod:`repro.obs.profile` — wall-time phase attribution
  (``phase.<name>`` histograms) for the sampled simulator and the
  campaign worker.

The switch is :mod:`repro.obs.recorder`: ``configure()`` / ``disable()``
/ ``recording()`` or the ``REPRO_OBS`` environment variable. Every
instrumented component grabs the registry/tracer at construction, so a
disabled recorder costs one attribute load and a ``None`` check on the
hot paths (the bench gates this at < 2 %).
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profile import PhaseTimer, phase_breakdown
from repro.obs.recorder import (
    Recorder,
    configure,
    disable,
    enabled,
    metrics_registry,
    recorder,
    recording,
    tracer,
)
from repro.obs.timeline import (
    SIM_PID,
    WALL_PID,
    TimelineTracer,
    dump_chrome_trace,
    validate_chrome_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PhaseTimer",
    "phase_breakdown",
    "Recorder",
    "configure",
    "disable",
    "enabled",
    "metrics_registry",
    "recorder",
    "recording",
    "tracer",
    "SIM_PID",
    "WALL_PID",
    "TimelineTracer",
    "dump_chrome_trace",
    "validate_chrome_trace",
]
