"""The process-wide recorder: the on/off switch for all observability.

``recorder()`` returns the active :class:`Recorder` or ``None``; every
instrumented tier grabs the registry/tracer **at construction** and hot
paths reduce to a single ``if self._tracer is not None`` — when
recording is off nothing is allocated, timed or counted (the bench
asserts < 2 % overhead for the disabled state).

Activation:

* programmatic — ``obs.configure(metrics=True, timeline=True)`` /
  ``obs.disable()``, or the scoped ``with obs.recording(...):``;
* environment — ``REPRO_OBS`` read once at import: unset/``0``/``off``
  disabled, ``1``/``metrics``/``on`` metrics only, ``timeline``/``full``
  metrics + timeline (mirrors ``REPRO_KERNELS``).
"""

from __future__ import annotations

import logging
import os
from contextlib import contextmanager

from repro.obs.metrics import MetricsRegistry
from repro.obs.timeline import DEFAULT_CAPACITY, TimelineTracer

ENV_VAR = "REPRO_OBS"

_LOG = logging.getLogger(__name__)


class Recorder:
    """The active metrics registry and (optionally) timeline tracer."""

    __slots__ = ("registry", "tracer")

    def __init__(
        self,
        *,
        metrics: bool = True,
        timeline: bool = False,
        capacity: int = DEFAULT_CAPACITY,
    ):
        self.registry = MetricsRegistry() if metrics else None
        self.tracer = TimelineTracer(capacity=capacity) if timeline else None


_active: Recorder | None = None


def recorder() -> Recorder | None:
    """The active recorder, or None when observability is disabled."""
    return _active


def enabled() -> bool:
    return _active is not None


def configure(
    *,
    metrics: bool = True,
    timeline: bool = False,
    capacity: int = DEFAULT_CAPACITY,
) -> Recorder:
    """Install (and return) a fresh recorder as the process-wide one."""
    global _active
    _active = Recorder(metrics=metrics, timeline=timeline, capacity=capacity)
    return _active


def disable() -> None:
    """Drop the active recorder; instrumentation reverts to no-ops."""
    global _active
    _active = None


@contextmanager
def recording(
    *,
    metrics: bool = True,
    timeline: bool = False,
    capacity: int = DEFAULT_CAPACITY,
):
    """Scoped recorder: installs a fresh one, restores the previous on
    exit, and yields the recorder for inspection."""
    global _active
    previous = _active
    rec = Recorder(metrics=metrics, timeline=timeline, capacity=capacity)
    _active = rec
    try:
        yield rec
    finally:
        _active = previous


def metrics_registry() -> MetricsRegistry | None:
    """The active registry, or None (the construction-time grab)."""
    rec = _active
    return rec.registry if rec is not None else None


def tracer() -> TimelineTracer | None:
    """The active timeline tracer, or None (the construction-time grab)."""
    rec = _active
    return rec.tracer if rec is not None else None


def _configure_from_env() -> None:
    value = os.environ.get(ENV_VAR, "").strip().lower()
    if value in ("", "0", "off", "none"):
        return
    if value in ("1", "on", "metrics"):
        configure(metrics=True)
    elif value in ("timeline", "trace", "full"):
        configure(metrics=True, timeline=True)
    else:
        # A typo'd env var must not take down every import of the
        # library; warn and stay disabled.
        _LOG.warning(
            "%s=%r not recognised (expected off/metrics/timeline); "
            "observability stays disabled",
            ENV_VAR,
            value,
        )


_configure_from_env()
