"""Observability tooling: ``python -m repro.obs <command>``.

Commands:

* ``timeline`` — run one benchmark on one design point with recording
  enabled and export the event timeline as Chrome-trace JSON (loadable
  in Perfetto / ``chrome://tracing``): kernel naps and clock jumps,
  per-core replay windows, and — for sampled runs — warming /
  materialise / measure / extrapolate wall spans;
* ``summary`` — roll up serialized metrics payloads (result-store
  trees, stored entry files, or campaign reports) and print one
  ``name{labels} value`` row per metric;
* ``diff`` — per-metric deltas between two such rollups (e.g. two
  campaign sweeps, or the same store tree before and after a change).

Examples::

    python -m repro.obs timeline --benchmark UA --sampling fast \\
        --scale 0.1 --out timeline.json
    python -m repro.obs summary .results
    python -m repro.obs diff before/.results after/.results
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from pathlib import Path

from repro.errors import ConfigurationError, ObsError
from repro.obs.log import add_log_arguments, setup_from_args
from repro.obs.metrics import MetricsRegistry

# Not __name__: under `python -m` this module IS "__main__",
# which would fall outside the configured "repro" logger tree.
_LOG = logging.getLogger("repro.obs.cli")


def _extract_metrics(data: object) -> list | None:
    """The serialized metrics payload inside any of our JSON shapes."""
    if isinstance(data, list):
        return data
    if isinstance(data, dict):
        if isinstance(data.get("metrics"), list):
            return data["metrics"]
        result = data.get("result")
        if isinstance(result, dict) and isinstance(result.get("metrics"), list):
            return result["metrics"]
    return None


def _rollup(paths: list[str]) -> MetricsRegistry:
    """Merge the metrics of every store tree / JSON file given."""
    payloads: list[list | None] = []
    for text in paths:
        path = Path(text)
        if path.is_dir():
            from repro.campaign.store import ResultStore

            entries = ResultStore(path).payloads()
            payloads.extend(_extract_metrics(entry) for entry in entries)
        else:
            try:
                data = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError) as exc:
                raise ConfigurationError(
                    f"cannot read metrics from {path}: {exc}"
                ) from exc
            metrics = _extract_metrics(data)
            if metrics is None:
                raise ConfigurationError(
                    f"{path} holds no serialized metrics payload (was the "
                    f"run recorded with REPRO_OBS enabled?)"
                )
            payloads.append(metrics)
    return MetricsRegistry.rollup(payloads)


def _format_row(row: dict) -> str:
    labels = ",".join(
        f"{key}={value}" for key, value in sorted(row["labels"].items())
    )
    name = f"{row['name']}{{{labels}}}" if labels else row["name"]
    if row["type"] == "histogram":
        count = row.get("count", 0)
        total = row.get("total", 0.0)
        mean = total / count if count else 0.0
        return (
            f"{name} count={count} total={total:.6g} mean={mean:.6g} "
            f"min={row.get('min')} max={row.get('max')}"
        )
    return f"{name} {row.get('value', 0):g}"


def _cmd_summary(args: argparse.Namespace) -> int:
    registry = _rollup(args.path)
    rows = registry.to_payload()
    if args.prefix:
        rows = [row for row in rows if row["name"].startswith(args.prefix)]
    if not rows:
        _LOG.warning("no recorded metrics found")
        return 1
    for row in rows:
        print(_format_row(row))
    return 0


def _row_scalars(row: dict) -> dict[str, float]:
    if row["type"] == "histogram":
        return {
            "count": float(row.get("count", 0)),
            "total": float(row.get("total", 0.0)),
        }
    return {"value": float(row.get("value", 0))}


def _cmd_diff(args: argparse.Namespace) -> int:
    def keyed(paths: list[str]) -> dict[tuple, dict]:
        return {
            (row["name"], tuple(sorted(row["labels"].items()))): row
            for row in _rollup(paths).to_payload()
        }

    before, after = keyed([args.before]), keyed([args.after])
    changed = 0
    for key in sorted(set(before) | set(after)):
        row = after.get(key) or before[key]
        labels = ",".join(f"{k}={v}" for k, v in key[1])
        name = f"{key[0]}{{{labels}}}" if labels else key[0]
        old = _row_scalars(before[key]) if key in before else {}
        new = _row_scalars(after[key]) if key in after else {}
        deltas = {
            field: new.get(field, 0.0) - old.get(field, 0.0)
            for field in _row_scalars(row)
        }
        if all(delta == 0 for delta in deltas.values()):
            continue
        changed += 1
        rendered = " ".join(
            f"{field}{delta:+g}" for field, delta in deltas.items()
        )
        marker = "+" if key not in before else "-" if key not in after else " "
        print(f"{marker} {name} {rendered}")
    if not changed:
        print("no metric deltas")
    return 0


def _cmd_timeline(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.machine.model import get_model
    from repro.obs.timeline import DEFAULT_CAPACITY, dump_chrome_trace
    from repro.sampling.plan import resolve_plan
    from repro.sampling.simulator import simulate_sampled
    from repro.trace.synthesis import synthesize_benchmark

    model = get_model(args.machine)
    points = model.standard_design_points()
    if not 0 <= args.design < len(points):
        raise ConfigurationError(
            f"--design must be 0..{len(points) - 1} for {args.machine} "
            f"(its standard design points), got {args.design}"
        )
    config = points[args.design]
    plan = resolve_plan(args.sampling) if args.sampling != "none" else None
    traces = synthesize_benchmark(
        args.benchmark,
        thread_count=config.core_count,
        scale=args.scale,
        seed=args.seed,
    )
    with obs.recording(
        metrics=True,
        timeline=True,
        capacity=args.capacity or DEFAULT_CAPACITY,
    ) as recording:
        result = simulate_sampled(config, traces, plan)
        payload = recording.tracer.chrome_trace(
            metadata={
                "benchmark": args.benchmark,
                "machine": args.machine,
                "design": config.label(),
                "scale": args.scale,
                "seed": args.seed,
                "sampling": plan.spec() if plan is not None else "full",
            }
        )
        dropped = recording.tracer.dropped
    dump_chrome_trace(payload, args.out)
    print(
        f"wrote {args.out}: {len(payload['traceEvents'])} events "
        f"({dropped} dropped), {result.cycles} simulated cycles"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Export event timelines and inspect recorded metrics.",
    )
    add_log_arguments(parser, quiet=True)
    commands = parser.add_subparsers(dest="command", required=True)

    timeline = commands.add_parser(
        "timeline",
        help="run one benchmark with recording on and export a "
        "Perfetto-loadable Chrome-trace JSON timeline",
    )
    timeline.add_argument("--machine", type=str, default="acmp")
    timeline.add_argument("--benchmark", type=str, default="UA")
    timeline.add_argument(
        "--design",
        type=int,
        default=0,
        help="index into the machine's standard design points (default 0)",
    )
    timeline.add_argument("--scale", type=float, default=0.1)
    timeline.add_argument("--seed", type=int, default=0)
    timeline.add_argument(
        "--sampling",
        type=str,
        default="none",
        help="sampling mode or plan spec; 'none' (default) runs full "
        "detail — sampled runs additionally carry warming/measure/"
        "extrapolate wall spans",
    )
    timeline.add_argument(
        "--capacity",
        type=int,
        default=None,
        help="event ring-buffer size (default 65536; oldest events drop "
        "first)",
    )
    timeline.add_argument("--out", required=True, help="output JSON path")
    timeline.set_defaults(handler=_cmd_timeline)

    summary = commands.add_parser(
        "summary",
        help="roll up serialized metrics (store trees / JSON files) and "
        "print one row per metric",
    )
    summary.add_argument(
        "path", nargs="+", help="result-store tree(s) or JSON file(s)"
    )
    summary.add_argument(
        "--prefix",
        type=str,
        default="",
        help="only metrics whose name starts with this prefix",
    )
    summary.set_defaults(handler=_cmd_summary)

    diff = commands.add_parser(
        "diff", help="per-metric deltas between two rollups"
    )
    diff.add_argument("before", help="store tree or JSON file")
    diff.add_argument("after", help="store tree or JSON file")
    diff.set_defaults(handler=_cmd_diff)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    setup_from_args(args)
    try:
        return args.handler(args)
    except (ConfigurationError, ObsError) as exc:
        _LOG.error("error: %s", exc)
        return 1


if __name__ == "__main__":
    sys.exit(main())
