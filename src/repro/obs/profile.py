"""Wall-time phase attribution: cheap monotonic timers around the
coarse phases of a run (warming / measurement / extrapolation / store
I/O in the sampled simulator; trace-load / simulate / serialize in the
campaign worker).

A :class:`PhaseTimer` accumulates seconds per phase name; callers fold
it into a :class:`~repro.obs.metrics.MetricsRegistry` as ``phase.<name>``
histograms (count = timed sections, total = seconds) so campaign rollups
and ``--status`` can report where the wall time went.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

from repro.obs.metrics import MetricsRegistry

PHASE_PREFIX = "phase."


class PhaseTimer:
    """Accumulates wall seconds per named phase."""

    __slots__ = ("seconds", "sections")

    def __init__(self) -> None:
        self.seconds: dict[str, float] = {}
        self.sections: dict[str, int] = {}

    @contextmanager
    def phase(self, name: str):
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            self.seconds[name] = self.seconds.get(name, 0.0) + elapsed
            self.sections[name] = self.sections.get(name, 0) + 1

    def add(self, name: str, seconds: float) -> None:
        """Fold an externally measured duration into a phase."""
        self.seconds[name] = self.seconds.get(name, 0.0) + seconds
        self.sections[name] = self.sections.get(name, 0) + 1

    def total(self) -> float:
        return sum(self.seconds.values())

    def fractions(self) -> dict[str, float]:
        """Each phase's share of the timed wall total, sorted by name."""
        total = self.total()
        if total <= 0.0:
            return {}
        return {
            name: self.seconds[name] / total for name in sorted(self.seconds)
        }

    def record(self, registry: MetricsRegistry, **labels: object) -> None:
        """Fold the accumulated phases into ``phase.<name>`` histograms."""
        for name in sorted(self.seconds):
            histogram = registry.histogram(PHASE_PREFIX + name, **labels)
            # One observation per timed section keeps count meaningful
            # (sections entered), while total stays the exact sum.
            count = self.sections.get(name, 1)
            seconds = self.seconds[name]
            histogram.count += count
            histogram.total += seconds
            share = seconds / count if count else seconds
            if histogram.minimum is None or share < histogram.minimum:
                histogram.minimum = share
            if histogram.maximum is None or share > histogram.maximum:
                histogram.maximum = share


def phase_breakdown(registry: MetricsRegistry) -> dict[str, float]:
    """Aggregate ``phase.*`` histograms across all label sets into
    ``{phase name: seconds}`` (for ``--status`` and the bench)."""
    totals: dict[str, float] = {}
    for metric in registry.select(PHASE_PREFIX):
        if metric.kind != "histogram":
            continue
        name = metric.name[len(PHASE_PREFIX):]
        totals[name] = totals.get(name, 0.0) + metric.total
    return dict(sorted(totals.items()))
