"""Ring-buffered span events exported as Chrome-trace / Perfetto JSON.

The tracer records two clock domains as two Chrome-trace "processes":

* ``pid 1`` — the **simulated clock**: timestamps are cycle numbers used
  directly as microsecond ticks, so spans are exact, deterministic and
  bit-identical across engines and kernel backends. Kernel naps, clock
  jumps and replay windows live here, one track (tid) per component.
* ``pid 2`` — the **host wall clock**: microseconds since the tracer was
  created. Warming, interval materialisation, measurement, store I/O and
  campaign run lifecycle live here.

Events are kept in a bounded ring (default 65536) so tracing a long run
degrades to "most recent window" instead of unbounded memory; the number
of dropped events is reported in the export's ``otherData``.
"""

from __future__ import annotations

import json
import time
from collections import deque
from pathlib import Path

from repro.errors import ObsError

SIM_PID = 1
WALL_PID = 2
DEFAULT_CAPACITY = 65536

_PROCESS_NAMES = {
    SIM_PID: "simulation (cycles as µs)",
    WALL_PID: "host (wall clock)",
}


class TimelineTracer:
    """Collects Chrome-trace events into a bounded ring buffer."""

    __slots__ = (
        "_events",
        "_thread_names",
        "dropped",
        "cycle_offset",
        "_wall_epoch",
    )

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity <= 0:
            raise ObsError(f"timeline capacity must be positive, got {capacity}")
        self._events: deque[dict] = deque(maxlen=capacity)
        self._thread_names: dict[tuple[int, int], str] = {}
        self.dropped = 0
        # Successive simulator runs all start their clocks at cycle 0;
        # callers bump this so runs lay out end-to-end on the sim track.
        self.cycle_offset = 0
        self._wall_epoch = time.perf_counter()

    # -- recording ------------------------------------------------------

    def _append(self, event: dict) -> None:
        if len(self._events) == self._events.maxlen:
            self.dropped += 1
        self._events.append(event)

    def complete(
        self,
        name: str,
        *,
        cat: str,
        ts: int | float,
        dur: int | float,
        pid: int = SIM_PID,
        tid: int = 0,
        args: dict | None = None,
    ) -> None:
        """Record a complete span (Chrome-trace ``ph="X"``)."""
        event = {
            "name": name,
            "cat": cat,
            "ph": "X",
            "ts": ts,
            "dur": dur,
            "pid": pid,
            "tid": tid,
        }
        if args:
            event["args"] = args
        self._append(event)

    def instant(
        self,
        name: str,
        *,
        cat: str,
        ts: int | float,
        pid: int = SIM_PID,
        tid: int = 0,
        args: dict | None = None,
    ) -> None:
        """Record an instant event (Chrome-trace ``ph="i"``)."""
        event = {
            "name": name,
            "cat": cat,
            "ph": "i",
            "ts": ts,
            "s": "t",
            "pid": pid,
            "tid": tid,
        }
        if args:
            event["args"] = args
        self._append(event)

    def wall_ts(self) -> float:
        """Microseconds since the tracer was created (wall domain)."""
        return (time.perf_counter() - self._wall_epoch) * 1e6

    def wall_span(self, name: str, *, cat: str, started_ts: float,
                  tid: int = 0, args: dict | None = None) -> None:
        """Record a wall-domain span that began at ``started_ts``
        (a prior :meth:`wall_ts` reading) and ends now."""
        now = self.wall_ts()
        self.complete(
            name,
            cat=cat,
            ts=started_ts,
            dur=max(0.0, now - started_ts),
            pid=WALL_PID,
            tid=tid,
            args=args,
        )

    def set_thread_name(self, pid: int, tid: int, name: str) -> None:
        self._thread_names[(pid, tid)] = name

    def __len__(self) -> int:
        return len(self._events)

    # -- export ---------------------------------------------------------

    def chrome_trace(self, metadata: dict | None = None) -> dict:
        """Assemble the Chrome-trace JSON object (Perfetto-loadable)."""
        events: list[dict] = []
        for pid in sorted(_PROCESS_NAMES):
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": _PROCESS_NAMES[pid]},
                }
            )
        for (pid, tid), name in sorted(self._thread_names.items()):
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": name},
                }
            )
        events.extend(self._events)
        other = {"dropped_events": self.dropped}
        if metadata:
            other.update(metadata)
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {k: str(v) for k, v in sorted(other.items())},
        }


def validate_chrome_trace(payload: object) -> None:
    """Check a trace object against the Perfetto-compatible subset we
    emit. Raises :class:`ObsError` on the first violation."""
    if not isinstance(payload, dict):
        raise ObsError(f"trace payload must be an object, got {type(payload)}")
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        raise ObsError("trace payload is missing the traceEvents list")
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            raise ObsError(f"{where}: events must be objects")
        ph = event.get("ph")
        if ph not in ("X", "i", "M"):
            raise ObsError(f"{where}: unsupported phase {ph!r}")
        name = event.get("name")
        if not isinstance(name, str) or not name:
            raise ObsError(f"{where}: missing event name")
        for field in ("pid", "tid"):
            if not isinstance(event.get(field), int):
                raise ObsError(f"{where}: {field} must be an int")
        args = event.get("args")
        if args is not None and not isinstance(args, dict):
            raise ObsError(f"{where}: args must be an object")
        if ph == "M":
            if name not in ("process_name", "thread_name"):
                raise ObsError(f"{where}: unknown metadata event {name!r}")
            if not isinstance((args or {}).get("name"), str):
                raise ObsError(f"{where}: metadata needs args.name")
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            raise ObsError(f"{where}: ts must be a non-negative number")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ObsError(f"{where}: dur must be a non-negative number")
        if ph == "i" and event.get("s", "t") not in ("t", "p", "g"):
            raise ObsError(f"{where}: instant scope must be t, p or g")


def dump_chrome_trace(payload: dict, path: str | Path) -> Path:
    """Validate and write a trace payload as deterministic JSON."""
    validate_chrome_trace(payload)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    return path
