"""Campaign execution: serial or process-parallel, cache-aware.

The runner takes :class:`~repro.campaign.spec.RunSpec` work units,
skips anything already present in the :class:`~repro.campaign.store.
ResultStore` (or an in-memory reuse map), and executes the rest — with a
``ProcessPoolExecutor`` when ``jobs > 1``. Each worker process
synthesises its own traces (memoised per process, so a benchmark's
trace set is built once per worker regardless of how many design points
it serves) and runs the cycle-skipping kernel.

Trace synthesis is seeded per run, so campaigns over several seeds give
independent trace realisations while staying fully reproducible.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import time
from collections.abc import Callable, Iterable
from concurrent.futures import ProcessPoolExecutor, as_completed
from functools import lru_cache

from repro.acmp.results import SimulationResult
from repro.acmp.simulator import simulate
from repro.campaign.spec import Campaign, CampaignReport, RunKey, RunSpec
from repro.campaign.store import ResultStore
from repro.errors import ConfigurationError

#: Progress hook: (completed, total, spec, elapsed_seconds).
ProgressHook = Callable[[int, int, RunSpec, float], None]


#: Per-process memo capacity for synthesised trace sets.
_TRACES_CACHE_SIZE = 32


@lru_cache(maxsize=_TRACES_CACHE_SIZE)
def _traces_cached(benchmark: str, thread_count: int, scale: float, seed: int):
    # Imported lazily so worker processes pay the import cost once.
    from repro.trace.synthesis import synthesize_benchmark

    return synthesize_benchmark(
        benchmark, thread_count=thread_count, scale=scale, seed=seed
    )


def execute_run(spec: RunSpec) -> SimulationResult:
    """Synthesise traces and simulate one run (worker entry point)."""
    traces = _traces_cached(
        spec.benchmark, spec.config.core_count, spec.scale, spec.seed
    )
    return simulate(
        spec.config,
        traces,
        warm_l2=spec.warm_l2,
        cycle_skip=spec.cycle_skip,
    )


def print_progress(completed: int, total: int, spec: RunSpec, elapsed: float) -> None:
    """Default progress reporter for CLI campaigns (stderr, one line/run)."""
    print(
        f"[{completed}/{total}] {spec.describe()} ({elapsed:.1f}s)",
        file=sys.stderr,
        flush=True,
    )


def run_specs(
    specs: Iterable[RunSpec],
    *,
    jobs: int = 1,
    store: ResultStore | None = None,
    progress: ProgressHook | None = None,
    name: str = "ad-hoc",
) -> CampaignReport:
    """Execute every spec, reusing cached results; return all results.

    Args:
        jobs: worker processes; 1 runs in-process (no fork overhead).
        store: persistent result cache, consulted before executing and
            updated after each run.
        progress: per-completed-run callback.

    Returns:
        A :class:`CampaignReport` whose ``results`` maps every spec's
        key to its :class:`SimulationResult`.
    """
    started = time.perf_counter()
    unique: dict[RunKey, RunSpec] = {}
    for spec in specs:
        known = unique.setdefault(spec.key, spec)
        if known is not spec and known.config_digest() != spec.config_digest():
            raise ConfigurationError(
                f"two specs in one batch share the key {spec.key} but "
                f"differ in configuration: the design-point label does "
                f"not distinguish them"
            )
    results: dict[RunKey, SimulationResult] = {}
    pending: list[RunSpec] = []
    for key, spec in unique.items():
        if store is not None and (stored := store.get(spec)) is not None:
            results[key] = stored
        else:
            pending.append(spec)
    cached = len(unique) - len(pending)
    total = len(unique)
    completed = cached

    def record(spec: RunSpec, result: SimulationResult) -> None:
        nonlocal completed
        results[spec.key] = result
        if store is not None:
            store.put(spec, result)
        completed += 1
        if progress is not None:
            progress(completed, total, spec, time.perf_counter() - started)

    if jobs <= 1 or len(pending) <= 1:
        for spec in pending:
            record(spec, execute_run(spec))
    else:
        # Synthesise every needed trace set once, in the parent, before
        # the pool forks: on fork-based platforms the children inherit
        # the warm memo, so no worker re-synthesises a benchmark's
        # traces for every design point it draws. Skipped when the
        # children cannot inherit it (spawn) or the memo cannot hold
        # every set (eviction would waste the serial synthesis time).
        trace_keys = {
            (spec.benchmark, spec.config.core_count, spec.scale, spec.seed)
            for spec in pending
        }
        if (
            multiprocessing.get_start_method() == "fork"
            and len(trace_keys) <= _TRACES_CACHE_SIZE
        ):
            for trace_key in sorted(trace_keys):
                _traces_cached(*trace_key)
        # Oversubscribing a small host only adds fork/scheduling cost:
        # cap the pool at the CPU count like any parallel build tool.
        workers = max(1, min(jobs, len(pending), os.cpu_count() or 1))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {pool.submit(execute_run, spec): spec for spec in pending}
            try:
                for future in as_completed(futures):
                    record(futures[future], future.result())
            except BaseException:
                for future in futures:
                    future.cancel()
                raise

    return CampaignReport(
        name=name,
        total=total,
        executed=len(pending),
        cached=cached,
        wall_seconds=time.perf_counter() - started,
        jobs=jobs,
        results=results,
    )


def run_campaign(
    campaign: Campaign,
    *,
    jobs: int = 1,
    store: ResultStore | None = None,
    progress: ProgressHook | None = None,
) -> CampaignReport:
    """Execute a whole declarative campaign (see :class:`Campaign`)."""
    return run_specs(
        campaign.runs(),
        jobs=jobs,
        store=store,
        progress=progress,
        name=campaign.name,
    )
