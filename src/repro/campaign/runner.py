"""Campaign execution: serial or process-parallel, cache-aware, fault-tolerant.

The runner takes :class:`~repro.campaign.spec.RunSpec` work units,
skips anything already present in the :class:`~repro.campaign.store.
ResultStore` (or an in-memory reuse map), and executes the rest — with a
``ProcessPoolExecutor`` when ``jobs > 1``. Each worker process
synthesises its own traces (memoised per process, so a benchmark's
trace set is built once per worker regardless of how many design points
it serves) and runs the scheduled kernel.

Trace synthesis is seeded per run, so campaigns over several seeds give
independent trace realisations while staying fully reproducible.

A failed run does not abort the sweep: it is retried once, and a run
that fails twice is journalled (spec plus exception) to a
``failures.jsonl`` file next to the result store, so long sweeps finish
everything they can and remain resumable. With ``strict=True`` (the
default for figure drivers) the runner raises after the sweep completes,
summarising what failed; ``strict=False`` returns the partial report
with :attr:`CampaignReport.failures` populated.
"""

from __future__ import annotations

import json
import logging
import multiprocessing
import os
import socket
import time
import traceback
from collections.abc import Callable, Iterable
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, as_completed
from dataclasses import asdict
from datetime import datetime, timezone
from functools import lru_cache

from repro.campaign.spec import (
    Campaign,
    CampaignReport,
    RunFailure,
    RunKey,
    RunSpec,
    shard_specs,
)
from repro.campaign.store import ResultStore
from repro.errors import ConfigurationError, SimulationError
from repro.machine.results import SimulationResult
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import PhaseTimer
from repro.obs.recorder import metrics_registry as _active_metrics
from repro.obs.recorder import tracer as _active_tracer

_LOG = logging.getLogger(__name__)

#: Per-run progress lines (the CLIs enable INFO on this logger; library
#: callers without logging setup simply don't see progress, as before
#: they would opt out of the hook).
_PROGRESS_LOG = logging.getLogger(__name__ + ".progress")

#: Executions attempted per spec before journalling it as failed.
MAX_ATTEMPTS = 2

#: Progress hook: (completed, total, spec, elapsed_seconds).
ProgressHook = Callable[[int, int, RunSpec, float], None]


#: Per-process memo capacity for synthesised trace sets.
_TRACES_CACHE_SIZE = 32


@lru_cache(maxsize=_TRACES_CACHE_SIZE)
def _traces_cached(
    benchmark: str,
    thread_count: int,
    scale: float,
    seed: int,
    event_dir: str | None = None,
    capture_dir: str | None = None,
):
    # Imported lazily so worker processes pay the import cost once.
    from repro.trace.provider import provider_for

    return provider_for(event_dir, capture_dir).trace_set(
        benchmark, thread_count=thread_count, scale=scale, seed=seed
    )


@lru_cache(maxsize=8)
def _checkpoint_store_cached(root: str):
    """One :class:`CheckpointStore` per tree per process.

    The store memoises parsed checkpoint payloads in memory; sharing
    one instance across every run a worker executes is what lets a
    timing sweep decode each warm-state entry once instead of once per
    design point.
    """
    from repro.sampling import CheckpointStore

    return CheckpointStore(root)


def execute_run(
    spec: RunSpec,
    checkpoint_root: str | None = None,
    checkpoint_mode: str = "on",
    event_dir: str | None = None,
    capture_dir: str | None = None,
) -> SimulationResult:
    """Resolve traces and simulate one run (worker entry point).

    ``simulate_sampled`` with a ``None`` plan is plain full simulation,
    so one call covers both flavors. Sampled runs read and write
    warm-state checkpoints under ``checkpoint_root`` (mode ``"off"``
    disables the store, ``"refresh"`` ignores existing entries but
    rewrites them). Traces come from the provider the campaign
    selected: synthesis (optionally capturing each set to
    ``capture_dir``), or streamed from an ``event_dir`` corpus.
    """
    from repro.sampling import Checkpointing, simulate_sampled

    timer = PhaseTimer() if _active_metrics() is not None else None
    phase_started = time.perf_counter()
    traces = _traces_cached(
        spec.benchmark,
        spec.config.core_count,
        spec.scale,
        spec.seed,
        event_dir,
        capture_dir,
    )
    if timer is not None:
        timer.add("trace_load", time.perf_counter() - phase_started)
    checkpoints = None
    if (
        checkpoint_root is not None
        and checkpoint_mode != "off"
        and spec.sampling
    ):
        checkpoints = Checkpointing(
            store=_checkpoint_store_cached(str(checkpoint_root)),
            seed=spec.seed,
            scale=spec.scale,
            refresh=checkpoint_mode == "refresh",
        )
    phase_started = time.perf_counter()
    result = simulate_sampled(
        spec.config,
        traces,
        spec.sampling_plan(),
        warm_l2=spec.warm_l2,
        cycle_skip=spec.cycle_skip,
        checkpoints=checkpoints,
    )
    if timer is not None:
        timer.add("simulate", time.perf_counter() - phase_started)
        registry = MetricsRegistry.from_payload(result.metrics or [])
        timer.record(
            registry, machine=spec.machine, sampling=spec.sampling
        )
        result.metrics = registry.to_payload()
    return result


def print_progress(completed: int, total: int, spec: RunSpec, elapsed: float) -> None:
    """Default progress reporter for CLI campaigns: one line per run on
    the ``repro.campaign.runner.progress`` logger (stderr at INFO under
    the CLIs' :func:`repro.obs.log.setup`; ``-q`` silences it)."""
    _PROGRESS_LOG.info(
        "[%d/%d] %s (%.1fs)", completed, total, spec.describe(), elapsed
    )


def _journal_failure(
    store: ResultStore | None, failure: RunFailure
) -> None:
    """Append one permanently-failed run to ``failures.jsonl``.

    The journal lives next to the result store (no store, no journal —
    there is nowhere durable to resume from anyway). One JSON object
    per line: the full spec (config included) plus the exception, so a
    later sweep can re-derive exactly what is missing and why.
    """
    if store is None:
        return
    spec = failure.spec
    entry = {
        "machine": spec.machine,
        "benchmark": spec.benchmark,
        "label": spec.config.label(),
        "seed": spec.seed,
        "scale": spec.scale,
        "warm_l2": spec.warm_l2,
        "cycle_skip": spec.cycle_skip,
        "engine": spec.engine,
        "sampling": spec.sampling,
        "config_digest": spec.config_digest(),
        "config": asdict(spec.config),
        "error": failure.error,
        "attempts": failure.attempts,
        # Forensic fields (PR 10): when and where the run failed and how
        # long the final attempt took. Readers treat them as optional,
        # so journals written before these fields still parse.
        "time": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "host": socket.gethostname(),
        "duration_s": round(failure.duration_s, 3),
    }
    with store.journal_path.open("a") as journal:
        journal.write(json.dumps(entry) + "\n")


def run_specs(
    specs: Iterable[RunSpec],
    *,
    jobs: int = 1,
    store: ResultStore | None = None,
    progress: ProgressHook | None = None,
    name: str = "ad-hoc",
    strict: bool = True,
    shard: tuple[int, int] | None = None,
    checkpoints: str = "on",
    event_dir: str | None = None,
    capture_dir: str | None = None,
) -> CampaignReport:
    """Execute every spec, reusing cached results; return all results.

    Args:
        jobs: worker processes; 1 runs in-process (no fork overhead).
            Requests beyond the host's CPU count are clamped (with a
            logged warning); the report records both the requested and
            the effective width.
        store: persistent result cache, consulted before executing and
            updated after each run. Also hosts the failure journal and
            the warm-checkpoint tree sampled runs amortise their
            functional warming through.
        progress: per-completed-run callback.
        strict: when True (default), raise a :class:`SimulationError`
            summarising permanently-failed runs *after* the rest of the
            sweep completed (and was journalled); when False, return
            the partial report with :attr:`CampaignReport.failures`.
        shard: ``(K, N)`` selects the K-th of N deterministic partitions
            of the spec set (1-based). Hosts sharing one store tree each
            run a different shard of the same campaign; the partition
            hashes persistent run keys, so every host agrees on the
            assignment without coordination. Sharded-out specs are
            neither executed nor loaded from the cache.
        checkpoints: warm-checkpoint policy for sampled runs — ``"on"``
            (read and write, the default), ``"off"``, or ``"refresh"``
            (ignore existing entries, rewrite them). The tree lives at
            ``<store>/checkpoints``; without a store there is nowhere
            durable to put it and the mode is ignored.
        event_dir: read traces from this captured corpus instead of
            synthesising (chunked sets stream, O(chunk) per worker).
        capture_dir: persist every synthesized trace set into this
            corpus as a side effect (ignored with ``event_dir``).

    Returns:
        A :class:`CampaignReport` whose ``results`` maps every
        successful spec's key to its :class:`SimulationResult`.
    """
    if checkpoints not in ("on", "off", "refresh"):
        raise ConfigurationError(
            f"unknown checkpoint mode {checkpoints!r}: expected one of "
            f"'on', 'off', 'refresh'"
        )
    checkpoint_root = None
    if (
        store is not None
        and checkpoints != "off"
        and any(spec.sampling for spec in specs)
    ):
        from repro.sampling import CheckpointStore

        checkpoint_root = str(store.root / CheckpointStore.SUBDIR)
    # Only sampled sweeps thread the checkpoint arguments through: a
    # plain-spec batch keeps the historical one-argument call shape.
    # A non-default trace source rides behind them (positional, so the
    # checkpoint slots must then be present even when unused).
    event_dir = str(event_dir) if event_dir is not None else None
    capture_dir = str(capture_dir) if capture_dir is not None else None
    if event_dir is not None:
        capture_dir = None  # reading from a corpus never re-captures it
    run_args = () if checkpoint_root is None else (checkpoint_root, checkpoints)
    if event_dir is not None or capture_dir is not None:
        if checkpoint_root is None:
            run_args = (None, checkpoints)
        run_args = (*run_args, event_dir, capture_dir)
    started = time.perf_counter()
    # Dedup by (key, flavor): the engine flavors of one design point
    # are distinct work units (a cross-check batch must run both), as
    # are the sampling flavors (a sampled result never stands in for a
    # full one), while true duplicates collapse to one run.
    unique: dict[tuple[RunKey, tuple[str, str]], RunSpec] = {}
    for spec in specs:
        known = unique.setdefault((spec.key, spec.flavor), spec)
        if known is not spec and known.config_digest() != spec.config_digest():
            raise ConfigurationError(
                f"two specs in one batch share the key {spec.key} but "
                f"differ in configuration: the design-point label does "
                f"not distinguish them"
            )
    sharded_out = 0
    if shard is not None:
        index, count = shard
        mine = {spec.key for spec in shard_specs(list(unique.values()), index, count)}
        sharded_out = len(unique) - sum(
            1 for key, _flavor in unique if key in mine
        )
        unique = {
            key_engine: spec
            for key_engine, spec in unique.items()
            if key_engine[0] in mine
        }
    results: dict[RunKey, SimulationResult] = {}
    completed_flavors: set[tuple[RunKey, tuple[str, str]]] = set()
    #: Fidelity of the flavor currently held in ``results`` per key:
    #: full detail beats sampled, scheduled beats reference. A batch
    #: mixing flavors of one key (a --from-failures resume) must
    #: surface a deterministic choice, not whichever finished last.
    result_rank: dict[RunKey, tuple[bool, bool]] = {}

    def keep(spec: RunSpec, result: SimulationResult) -> None:
        rank = (not spec.sampling, spec.cycle_skip)
        if spec.key not in result_rank or rank > result_rank[spec.key]:
            result_rank[spec.key] = rank
            results[spec.key] = result
        completed_flavors.add((spec.key, spec.flavor))

    pending: list[RunSpec] = []
    for (key, _flavor), spec in unique.items():
        if store is not None and (stored := store.get(spec)) is not None:
            keep(spec, stored)
        else:
            pending.append(spec)
    cached = len(unique) - len(pending)
    total = len(unique)
    completed = cached

    # Observability, grabbed once per campaign: the timer accumulates
    # the runner's own phases (result serialization), the tracer gets
    # one wall span per run attempt (retries included).
    campaign_timer = PhaseTimer() if _active_metrics() is not None else None
    tracer = _active_tracer()
    retries = 0

    def trace_attempt(
        spec: RunSpec, attempt: int, span_from: float, outcome: str
    ) -> None:
        if tracer is not None:
            tracer.wall_span(
                "run",
                cat="campaign",
                started_ts=span_from,
                args={
                    "spec": spec.describe(),
                    "attempt": attempt,
                    "outcome": outcome,
                },
            )

    def record(spec: RunSpec, result: SimulationResult) -> None:
        nonlocal completed
        keep(spec, result)
        if store is not None:
            if campaign_timer is not None:
                io_started = time.perf_counter()
                store.put(spec, result)
                campaign_timer.add(
                    "serialize", time.perf_counter() - io_started
                )
            else:
                store.put(spec, result)
        completed += 1
        if progress is not None:
            progress(completed, total, spec, time.perf_counter() - started)

    failures: list[RunFailure] = []

    def record_failure(
        spec: RunSpec, exc: Exception, attempts: int, duration: float = 0.0
    ) -> None:
        failure = RunFailure(
            spec=spec,
            error="".join(
                traceback.format_exception_only(type(exc), exc)
            ).strip(),
            attempts=attempts,
            duration_s=duration,
        )
        failures.append(failure)
        _journal_failure(store, failure)

    # Oversubscribing a small host only adds fork/scheduling cost: cap
    # the requested width at the CPU count like any parallel build tool,
    # and say so — ``--jobs 4`` on a 1-CPU runner silently running
    # serial is exactly the surprise the warning (and the report's
    # ``effective_jobs`` field) exists to explain.
    host_cpus = os.cpu_count() or 1
    effective_jobs = max(1, min(jobs, host_cpus))
    if effective_jobs < jobs:
        _LOG.warning(
            "campaign %r: clamping --jobs %d to %d host CPU(s)",
            name,
            jobs,
            host_cpus,
        )

    if effective_jobs <= 1 or len(pending) <= 1:
        for spec in pending:
            for attempt in range(1, MAX_ATTEMPTS + 1):
                attempt_started = time.perf_counter()
                span_from = tracer.wall_ts() if tracer is not None else 0.0
                try:
                    result = execute_run(spec, *run_args)
                except Exception as exc:
                    trace_attempt(spec, attempt, span_from, "failed")
                    if attempt == MAX_ATTEMPTS:
                        record_failure(
                            spec,
                            exc,
                            attempt,
                            time.perf_counter() - attempt_started,
                        )
                    else:
                        retries += 1
                else:
                    trace_attempt(spec, attempt, span_from, "ok")
                    record(spec, result)
                    break
    else:
        # Synthesise every needed trace set once, in the parent, before
        # the pool forks: on fork-based platforms the children inherit
        # the warm memo, so no worker re-synthesises a benchmark's
        # traces for every design point it draws. Skipped when the
        # children cannot inherit it (spawn) or the memo cannot hold
        # every set (eviction would waste the serial synthesis time).
        trace_keys = {
            (spec.benchmark, spec.config.core_count, spec.scale, spec.seed)
            for spec in pending
        }
        if (
            multiprocessing.get_start_method() == "fork"
            and len(trace_keys) <= _TRACES_CACHE_SIZE
        ):
            for trace_key in sorted(trace_keys):
                try:
                    _traces_cached(*trace_key, event_dir, capture_dir)
                except Exception:
                    # Best-effort warm-up only: a bad spec fails (and is
                    # retried/journalled) in its worker, not here.
                    pass
        workers = max(1, min(effective_jobs, len(pending)))
        with ProcessPoolExecutor(max_workers=workers) as pool:

            def submit(spec: RunSpec):
                future = pool.submit(execute_run, spec, *run_args)
                # Submit-to-completion is the parent's best observation
                # of a worker-side attempt's duration.
                submitted[future] = (
                    time.perf_counter(),
                    tracer.wall_ts() if tracer is not None else 0.0,
                )
                return future

            submitted: dict = {}
            futures = {submit(spec): spec for spec in pending}
            attempts = dict.fromkeys(((spec.key, spec.flavor) for spec in pending), 1)
            try:
                while futures:
                    for future in as_completed(list(futures)):
                        spec = futures.pop(future)
                        attempt_started, span_from = submitted.pop(future)
                        attempt = attempts[(spec.key, spec.flavor)]
                        try:
                            result = future.result()
                        except BrokenExecutor:
                            raise  # the pool itself died, not the run
                        except Exception as exc:
                            trace_attempt(spec, attempt, span_from, "failed")
                            if attempt < MAX_ATTEMPTS:
                                attempts[(spec.key, spec.flavor)] = attempt + 1
                                retries += 1
                                futures[submit(spec)] = spec
                            else:
                                record_failure(
                                    spec,
                                    exc,
                                    attempt,
                                    time.perf_counter() - attempt_started,
                                )
                        else:
                            trace_attempt(spec, attempt, span_from, "ok")
                            record(spec, result)
            except BaseException:
                for future in futures:
                    future.cancel()
                raise

    # failures.jsonl stays append-only here: with several hosts
    # appending to one shared journal, a rewrite could lose another
    # host's concurrent entry. The manifest stays accurate anyway —
    # ResultStore.failed_specs() skips entries whose run has since
    # landed in the store — and ``--from-failures`` compacts the file
    # explicitly via ResultStore.prune_journal after a resume.
    metrics_payload = None
    if campaign_timer is not None:
        # Per-campaign rollup: every completed run's serialized registry
        # (cached runs included — their payloads persisted), plus the
        # runner's own counters. Store/warming latency histograms are
        # process-scoped and live in the active recorder's registry.
        rollup = MetricsRegistry.rollup(
            getattr(result, "metrics", None) for result in results.values()
        )
        labels = {"campaign": name}
        rollup.counter("campaign.runs", outcome="executed", **labels).inc(
            len(pending) - len(failures)
        )
        rollup.counter("campaign.runs", outcome="cached", **labels).inc(cached)
        rollup.counter("campaign.runs", outcome="failed", **labels).inc(
            len(failures)
        )
        rollup.counter("campaign.retries", **labels).inc(retries)
        campaign_timer.record(rollup, **labels)
        metrics_payload = rollup.to_payload()
    report = CampaignReport(
        name=name,
        total=total,
        executed=len(pending) - len(failures),
        cached=cached,
        wall_seconds=time.perf_counter() - started,
        jobs=jobs,
        effective_jobs=effective_jobs,
        results=results,
        completed=completed_flavors,
        failures=failures,
        sharded_out=sharded_out,
        metrics=metrics_payload,
    )
    if failures and strict:
        sample = "; ".join(
            f"{failure.spec.describe()}: {failure.error}"
            for failure in failures[:3]
        )
        more = "" if len(failures) <= 3 else f" (+{len(failures) - 3} more)"
        raise SimulationError(
            f"campaign {name!r}: {len(failures)} run(s) still failing "
            f"after {MAX_ATTEMPTS} attempts — {sample}{more}. Every "
            f"other run completed; see failures.jsonl next to the "
            f"result store."
        )
    return report


def run_campaign(
    campaign: Campaign,
    *,
    jobs: int = 1,
    store: ResultStore | None = None,
    progress: ProgressHook | None = None,
    strict: bool = True,
    shard: tuple[int, int] | None = None,
    checkpoints: str = "on",
    event_dir: str | None = None,
    capture_dir: str | None = None,
) -> CampaignReport:
    """Execute a whole declarative campaign (see :class:`Campaign`)."""
    return run_specs(
        campaign.runs(),
        jobs=jobs,
        store=store,
        progress=progress,
        name=campaign.name,
        strict=strict,
        shard=shard,
        checkpoints=checkpoints,
        event_dir=event_dir,
        capture_dir=capture_dir,
    )
