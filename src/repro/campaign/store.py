"""Persistent JSON result store for simulation campaigns.

One file per run under a root directory, keyed by
``(benchmark, config.label(), seed, scale)``. The store survives across
invocations, so re-running a figure driver or campaign only simulates
design points it has never seen — the caching layer that makes repeated
regenerations cheap.

Layout::

    <root>/
      <benchmark>/
        <config-label>__seed<seed>__scale<scale>.json

Labels are sanitised for the filesystem (``::`` and other separators
become ``-``); the authoritative key is stored inside the JSON payload
and verified on load, so a sanitisation collision cannot silently serve
the wrong result.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

from repro.acmp.results import SimulationResult
from repro.acmp.serialization import result_from_dict, result_to_dict
from repro.campaign.spec import RunKey, RunSpec
from repro.errors import ConfigurationError, SimulationError

_UNSAFE = re.compile(r"[^A-Za-z0-9._=-]+")


def _sanitize(part: str) -> str:
    return _UNSAFE.sub("-", part)


def _format_scale(scale: float) -> str:
    # Stable, filesystem-safe rendering: 1.0 -> "1", 0.15 -> "0.15".
    text = f"{scale:g}"
    return text.replace("/", "-")


class ResultStore:
    """Directory-backed store of :class:`SimulationResult` keyed by run."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except (FileExistsError, NotADirectoryError) as exc:
            raise ConfigurationError(
                f"result store root {self.root} is not a usable directory: "
                f"{exc}"
            ) from exc

    # -- paths -------------------------------------------------------------

    def path_for(self, spec: RunSpec) -> Path:
        benchmark, label, seed, scale = spec.key
        filename = (
            f"{_sanitize(label)}__seed{seed}__scale{_format_scale(scale)}.json"
        )
        return self.root / _sanitize(benchmark) / filename

    # -- access ------------------------------------------------------------

    def __contains__(self, spec: RunSpec) -> bool:
        return self.path_for(spec).exists()

    def get(self, spec: RunSpec) -> SimulationResult | None:
        """Load the stored result for ``spec``, or None when absent."""
        path = self.path_for(spec)
        if not path.exists():
            return None
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise SimulationError(
                f"corrupt result cache entry {path}: {exc}"
            ) from exc
        stored_key = payload.get("key")
        if stored_key is not None and tuple(stored_key) != (
            spec.key[0],
            spec.key[1],
            spec.key[2],
            spec.key[3],
        ):
            raise SimulationError(
                f"result cache entry {path} holds key {stored_key}, "
                f"expected {spec.key} (label sanitisation collision?)"
            )
        stored_digest = payload.get("config_digest")
        if stored_digest is not None and stored_digest != spec.config_digest():
            raise SimulationError(
                f"result cache entry {path} was produced by a different "
                f"machine configuration than requested: the design-point "
                f"label {spec.key[1]!r} does not distinguish them. Use "
                f"distinct labels or a separate cache directory."
            )
        return result_from_dict(payload["result"])

    def put(self, spec: RunSpec, result: SimulationResult) -> Path:
        """Persist one result; returns the written path."""
        path = self.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        benchmark, label, seed, scale = spec.key
        payload = {
            "key": [benchmark, label, seed, scale],
            "config_digest": spec.config_digest(),
            "result": result_to_dict(result),
        }
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(payload, indent=2) + "\n")
        tmp.replace(path)  # atomic within one filesystem
        return path

    # -- maintenance ---------------------------------------------------------

    def keys(self) -> list[RunKey]:
        """Every key currently stored (reads each payload's header)."""
        found: list[RunKey] = []
        for path in sorted(self.root.glob("*/*.json")):
            try:
                payload = json.loads(path.read_text())
            except json.JSONDecodeError:
                continue
            key = payload.get("key")
            if isinstance(key, list) and len(key) == 4:
                found.append((key[0], key[1], int(key[2]), float(key[3])))
        return found

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))
