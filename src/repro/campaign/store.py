"""Persistent JSON result store for simulation campaigns.

One file per run under a root directory, keyed by
``(machine, benchmark, config.label(), seed, scale)`` plus the engine
flavor. The store survives across invocations, so re-running a figure
driver or campaign only simulates design points it has never seen —
the caching layer that makes repeated regenerations cheap — and it can
be shared by several hosts executing disjoint shards of one campaign.

Layout::

    <root>/
      <machine>/
        <benchmark>/
          <config-label>__seed<seed>__scale<scale>[__ref][__samp-<plan>].json

Reference-engine runs (``cycle_skip=False``) get the ``__ref`` suffix:
the two engines are bit-identical by contract, but an engine cross-check
that silently read the other engine's cache entry would verify nothing,
so the flavors never share an entry. Sampled runs get a ``__samp-<plan>``
suffix for the same reason with the opposite sign: a sampled result is
an *extrapolation*, and serving it to a caller that asked for a full
run (or vice versa) would silently change result semantics. Stores
written before the machine axis existed used ``<root>/<benchmark>/...``
with no machine directory; those entries remain readable as
``acmp``/scheduled-engine/full-simulation results (the only flavor that
existed), and new writes always use the namespaced layout.

Labels are sanitised for the filesystem (``::`` and other separators
become ``-``); the authoritative key is stored inside the JSON payload
and verified on load, so a sanitisation collision cannot silently serve
the wrong result.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path

from repro.campaign.spec import RunKey, RunSpec
from repro.errors import ConfigurationError, SimulationError
from repro.machine.results import SimulationResult
from repro.machine.serialization import (
    _LEGACY_MACHINE,
    result_from_dict,
    result_to_dict,
)
from repro.obs.recorder import metrics_registry as _active_metrics

_UNSAFE = re.compile(r"[^A-Za-z0-9._=-]+")

#: Process umask, captured once at import (reading it requires setting
#: it; doing so here keeps the racy set/restore out of concurrent
#: ``put()`` calls). Entries are chmodded to umask-based permissions so
#: shared store trees stay readable across users — ``mkstemp`` alone
#: would pin every result file to 0600.
_UMASK = os.umask(0)
os.umask(_UMASK)


def _sanitize(part: str) -> str:
    return _UNSAFE.sub("-", part)


def _format_scale(scale: float) -> str:
    # Stable, filesystem-safe rendering: 1.0 -> "1", 0.15 -> "0.15".
    text = f"{scale:g}"
    return text.replace("/", "-")


def _entry_identity(entry: dict) -> tuple[RunKey, tuple[str, str]]:
    """The ``(key, (engine, sampling))`` identity of one journal entry.

    The single place the journal's field defaults live: ``--status``,
    the ``--from-failures`` manifest rebuild and journal compaction all
    reconstruct identities through here, so a new flavor axis cannot
    silently desynchronize them.
    """
    key: RunKey = (
        str(entry.get("machine", _LEGACY_MACHINE)),
        str(entry.get("benchmark", "")),
        str(entry.get("label", "")),
        int(entry.get("seed", 0)),
        float(entry.get("scale", 1.0)),
    )
    flavor = (
        str(entry.get("engine", "skip")),
        str(entry.get("sampling", "")),
    )
    return key, flavor


def _normalize_key(raw: object) -> RunKey | None:
    """Rebuild a :data:`RunKey` from a stored payload header."""
    if not isinstance(raw, list):
        return None
    if len(raw) == 4:  # pre-machine-axis payload: implicitly acmp
        raw = [_LEGACY_MACHINE, *raw]
    if len(raw) != 5:
        return None
    machine, benchmark, label, seed, scale = raw
    return (str(machine), str(benchmark), str(label), int(seed), float(scale))


class ResultStore:
    """Directory-backed store of :class:`SimulationResult` keyed by run."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except (FileExistsError, NotADirectoryError) as exc:
            raise ConfigurationError(
                f"result store root {self.root} is not a usable directory: "
                f"{exc}"
            ) from exc

    # -- paths -------------------------------------------------------------

    def _filename(self, spec: RunSpec) -> str:
        _machine, _benchmark, label, seed, scale = spec.key
        engine = "" if spec.cycle_skip else "__ref"
        sampling = f"__samp-{_sanitize(spec.sampling)}" if spec.sampling else ""
        return (
            f"{_sanitize(label)}__seed{seed}__scale{_format_scale(scale)}"
            f"{engine}{sampling}.json"
        )

    def path_for(self, spec: RunSpec) -> Path:
        machine, benchmark = spec.key[0], spec.key[1]
        return (
            self.root
            / _sanitize(machine)
            / _sanitize(benchmark)
            / self._filename(spec)
        )

    def _legacy_path(self, spec: RunSpec) -> Path | None:
        """Pre-machine-axis location, readable for acmp scheduled runs."""
        if (
            spec.machine != _LEGACY_MACHINE
            or not spec.cycle_skip
            or spec.sampling
        ):
            return None
        return self.root / _sanitize(spec.benchmark) / self._filename(spec)

    def _existing_path(self, spec: RunSpec) -> Path | None:
        path = self.path_for(spec)
        if path.exists():
            return path
        legacy = self._legacy_path(spec)
        if legacy is not None and legacy.exists():
            return legacy
        return None

    # -- access ------------------------------------------------------------

    def __contains__(self, spec: RunSpec) -> bool:
        return self._existing_path(spec) is not None

    def get(self, spec: RunSpec) -> SimulationResult | None:
        """Load the stored result for ``spec``, or None when absent."""
        registry = _active_metrics()
        if registry is None:
            return self._get(spec)
        started = time.perf_counter()
        result = self._get(spec)
        registry.histogram("store.result.get_s").observe(
            time.perf_counter() - started
        )
        registry.counter(
            "store.result.requests",
            outcome="hit" if result is not None else "miss",
        ).inc()
        return result

    def _get(self, spec: RunSpec) -> SimulationResult | None:
        path = self._existing_path(spec)
        if path is None:
            return None
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise SimulationError(
                f"corrupt result cache entry {path}: {exc}"
            ) from exc
        stored_key = payload.get("key")
        if stored_key is not None and _normalize_key(stored_key) != spec.key:
            raise SimulationError(
                f"result cache entry {path} holds key {stored_key}, "
                f"expected {spec.key} (label sanitisation collision?)"
            )
        stored_engine = payload.get("engine")
        if stored_engine is not None and stored_engine != spec.engine:
            raise SimulationError(
                f"result cache entry {path} was produced by the "
                f"{stored_engine!r} engine but the {spec.engine!r} engine "
                f"was requested; engine flavors never share cache entries"
            )
        stored_sampling = payload.get("sampling", "")
        if stored_sampling != spec.sampling:
            raise SimulationError(
                f"result cache entry {path} holds sampling flavor "
                f"{stored_sampling!r} but {spec.sampling!r} was requested; "
                f"sampled (extrapolated) and full results never share "
                f"cache entries"
            )
        stored_digest = payload.get("config_digest")
        if stored_digest is not None and stored_digest != spec.config_digest():
            raise SimulationError(
                f"result cache entry {path} was produced by a different "
                f"machine configuration than requested: the design-point "
                f"label {spec.key[2]!r} does not distinguish them. Use "
                f"distinct labels or a separate cache directory."
            )
        result = result_from_dict(
            payload["result"], expect_machine=spec.machine
        )
        result.metrics = payload.get("metrics")
        return result

    def put(self, spec: RunSpec, result: SimulationResult) -> Path:
        """Persist one result; returns the written path."""
        registry = _active_metrics()
        started = time.perf_counter() if registry is not None else 0.0
        path = self._put(spec, result)
        if registry is not None:
            registry.histogram("store.result.put_s").observe(
                time.perf_counter() - started
            )
        return path

    def _put(self, spec: RunSpec, result: SimulationResult) -> Path:
        path = self.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "key": list(spec.key),
            "engine": spec.engine,
            "config_digest": spec.config_digest(),
            "result": result_to_dict(result),
        }
        if spec.sampling:
            payload["sampling"] = spec.sampling
        if result.metrics is not None:
            # Beside (not inside) the result payload: the result dict is
            # the bit-identity contract, while recorded metrics carry
            # wall times that legitimately vary run to run.
            payload["metrics"] = result.metrics
        # Unique tmp per writer: two runners recovering the same run
        # over one store tree (shards, --from-failures) may put() the
        # same spec concurrently, and a shared tmp name would let one
        # writer's replace() consume the other's half-written file.
        fd, tmp_name = tempfile.mkstemp(
            prefix=path.stem + ".", suffix=".tmp", dir=path.parent
        )
        tmp = Path(tmp_name)
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(json.dumps(payload, indent=2) + "\n")
            # os.chmod (not fchmod: absent on Windows < 3.13) so shared
            # store trees keep umask-based cross-user readability.
            os.chmod(tmp, 0o666 & ~_UMASK)
            tmp.replace(path)  # atomic within one filesystem
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
        return path

    # -- maintenance ---------------------------------------------------------

    def _entry_paths(self) -> list[Path]:
        # New layout: <machine>/<benchmark>/<file>; legacy: <benchmark>/<file>.
        return sorted(
            set(self.root.glob("*/*/*.json")) | set(self.root.glob("*/*.json"))
        )

    def payloads(self) -> list[dict]:
        """Every readable entry payload, in deterministic path order.

        The read-only sweep behind ``repro.obs summary`` and the
        ``--status`` phase breakdown: callers get the raw stored dicts
        (``key``/``engine``/``result`` headers, and ``result.metrics``
        when the run recorded any) without reconstructing specs or
        machine configs. Corrupt entries are skipped, matching
        :meth:`keys`.
        """
        found: list[dict] = []
        for path in self._entry_paths():
            try:
                payload = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                continue
            if isinstance(payload, dict):
                found.append(payload)
        return found

    def keys(self) -> list[RunKey]:
        """Every key currently stored (reads each payload's header)."""
        found: list[RunKey] = []
        for path in self._entry_paths():
            try:
                payload = json.loads(path.read_text())
            except json.JSONDecodeError:
                continue
            key = _normalize_key(payload.get("key"))
            if key is not None:
                found.append(key)
        return found

    def __len__(self) -> int:
        return len(self._entry_paths())

    def gc(self, dry_run: bool = False) -> list[Path]:
        """Drop entries whose identity no longer parses.

        An entry is collectable when its payload is not valid JSON, its
        key header cannot be rebuilt, its machine is not a registered
        model, its engine flavor is unknown, or its sampling flavor is
        not a parseable plan spec — the debris left behind when a store
        tree outlives the code (renamed machine models, retired flavor
        formats). Returns the removed paths; with ``dry_run`` nothing
        is deleted, the would-be victims are only reported.
        """
        from repro.machine.model import model_names
        from repro.sampling.plan import resolve_plan

        known_machines = set(model_names())
        victims: list[Path] = []
        for path in self._entry_paths():
            try:
                payload = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                victims.append(path)
                continue
            key = _normalize_key(payload.get("key"))
            parseable = (
                key is not None
                and key[0] in known_machines
                and payload.get("engine", "skip") in ("skip", "reference")
            )
            if parseable:
                try:
                    resolve_plan(str(payload.get("sampling", "")))
                except ConfigurationError:
                    parseable = False
            if not parseable:
                victims.append(path)
        if not dry_run:
            for path in victims:
                path.unlink(missing_ok=True)
        return victims

    def journalled_flavors(self) -> set[tuple[RunKey, tuple[str, str]]]:
        """The ``(key, (engine, sampling))`` identities in the journal."""
        return {
            _entry_identity(entry) for entry in self.journalled_failures()
        }

    # -- failure journal -----------------------------------------------------

    @property
    def journal_path(self) -> Path:
        """The resume manifest: one JSON object per permanently-failed run."""
        return self.root / "failures.jsonl"

    def journalled_failures(self) -> list[dict]:
        """Parse ``failures.jsonl`` (malformed lines are skipped)."""
        path = self.journal_path
        if not path.exists():
            return []
        entries: list[dict] = []
        for line in path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(entry, dict):
                entries.append(entry)
        return entries

    def failed_specs(self) -> list[RunSpec]:
        """Rebuild the journalled runs as specs — the resume manifest.

        Entries whose run has since landed in the store are skipped, so
        the manifest stays accurate without ever rewriting the
        append-only journal (several hosts may be appending to it
        concurrently over one shared tree). Entries whose machine model
        or configuration cannot be rebuilt (e.g. written by a newer
        version) are skipped rather than aborting the resume.
        """
        from repro.machine.model import get_model

        specs: list[RunSpec] = []
        seen: set[tuple[RunKey, tuple[str, str]]] = set()
        for entry in self.journalled_failures():
            try:
                model = get_model(entry.get("machine", _LEGACY_MACHINE))
                config = model.config_type(**entry["config"])
                spec = RunSpec(
                    benchmark=entry["benchmark"],
                    config=config,
                    seed=int(entry.get("seed", 0)),
                    scale=float(entry.get("scale", 1.0)),
                    warm_l2=bool(entry.get("warm_l2", True)),
                    cycle_skip=entry.get("engine", "skip") == "skip",
                    sampling=str(entry.get("sampling", "")),
                )
            except Exception:
                continue
            if (spec.key, spec.flavor) in seen or spec in self:
                continue
            seen.add((spec.key, spec.flavor))
            specs.append(spec)
        return specs

    def prune_journal(
        self, succeeded: set[tuple[RunKey, tuple[str, str]]]
    ) -> int:
        """Compact the journal: drop entries whose runs have succeeded.

        ``succeeded`` holds ``(run key, (engine, sampling) flavor)``
        pairs — the flavor matters because a scheduled-engine success
        says nothing about a still-failing reference cross-check of the
        same design point, and a sampled success says nothing about the
        full run. The rewrite is an explicit, single-operator compaction
        (the ``--from-failures`` flow); routine sweeps never rewrite
        the journal, they only append, so concurrent hosts cannot lose
        each other's entries. The replacement file lands atomically.
        Returns the number of entries removed.
        """
        path = self.journal_path
        if not path.exists() or not succeeded:
            return 0
        kept: list[str] = []
        dropped = 0
        for entry in self.journalled_failures():
            if _entry_identity(entry) in succeeded:
                dropped += 1
            else:
                kept.append(json.dumps(entry))
        if dropped:
            text = "\n".join(kept)
            tmp = path.with_suffix(".jsonl.tmp")
            tmp.write_text(text + "\n" if text else "")
            tmp.replace(path)  # atomic within one filesystem
        return dropped


@dataclass
class MergeReport:
    """Outcome of one store-tree merge."""

    copied: int = 0
    replaced: int = 0
    skipped: int = 0
    journal_entries: int = 0
    checkpoints: int = 0

    def summary(self) -> str:
        return (
            f"{self.copied} entries copied, {self.replaced} replaced "
            f"(newer), {self.skipped} kept (destination newer or equal), "
            f"{self.journal_entries} journal entries merged, "
            f"{self.checkpoints} checkpoint(s) merged"
        )


def merge_stores(
    sources: list[str | Path], destination: str | Path
) -> MergeReport:
    """Union sharded store trees into one (``newest wins`` on collision).

    The multi-host flow: several machines sweep disjoint shards into
    local trees (or one NFS tree splits), and a merge folds them back
    together. Entries are matched by their store path — the sanitised
    key plus flavor suffixes — and on a collision the file with the
    newer modification time wins, so a re-run of a previously-failed
    design point supersedes the stale entry regardless of which tree it
    landed in. Failure journals are unioned line-wise (duplicates
    dropped); :meth:`ResultStore.failed_specs` already ignores entries
    whose run has since landed, so merged journals stay usable as
    resume manifests. Warm-checkpoint trees (``checkpoints/`` beside
    the entries) are unioned the same newest-wins way, so merged trees
    keep amortising functional warming for every future sampled run.
    """
    import shutil

    destination_store = ResultStore(destination)
    report = MergeReport()
    journal_lines: list[str] = []
    seen_lines: set[str] = set()
    destination_journal = destination_store.journal_path
    if destination_journal.exists():
        for line in destination_journal.read_text().splitlines():
            if line.strip():
                seen_lines.add(line.strip())
    # Validate every source before copying anything: failing halfway
    # through would leave a partially-merged tree whose journal lines
    # (written only after the loop) were silently dropped.
    for source in sources:
        source_root = Path(source)
        if not source_root.is_dir():
            raise ConfigurationError(
                f"merge source {source_root} is not a directory"
            )
        if source_root.resolve() == destination_store.root.resolve():
            raise ConfigurationError(
                f"merge source {source_root} is the destination itself"
            )
    for source in sources:
        source_store = ResultStore(Path(source))
        for path in source_store._entry_paths():
            relative = path.relative_to(source_store.root)
            target = destination_store.root / relative
            if target.exists():
                if target.stat().st_mtime >= path.stat().st_mtime:
                    report.skipped += 1
                    continue
                report.replaced += 1
            else:
                report.copied += 1
            target.parent.mkdir(parents=True, exist_ok=True)
            # copy2 preserves mtimes, keeping newest-wins transitive
            # across repeated merges.
            shutil.copy2(path, target)
        source_checkpoints = source_store.root / "checkpoints"
        if source_checkpoints.is_dir():
            for path in sorted(
                source_checkpoints.glob("*/*/*/*/*/detail*.json")
            ):
                relative = path.relative_to(source_store.root)
                target = destination_store.root / relative
                if target.exists() and (
                    target.stat().st_mtime >= path.stat().st_mtime
                ):
                    continue
                target.parent.mkdir(parents=True, exist_ok=True)
                shutil.copy2(path, target)
                report.checkpoints += 1
        source_journal = source_store.journal_path
        if source_journal.exists():
            for line in source_journal.read_text().splitlines():
                line = line.strip()
                if line and line not in seen_lines:
                    seen_lines.add(line)
                    journal_lines.append(line)
    if journal_lines:
        with destination_journal.open("a") as journal:
            for line in journal_lines:
                journal.write(line + "\n")
        report.journal_entries = len(journal_lines)
    return report
