"""Declarative simulation campaigns: benchmarks × design points × seeds.

A :class:`Campaign` names *what* to run; :mod:`repro.campaign.runner`
decides *how* (serial or process-parallel) and
:mod:`repro.campaign.store` remembers what already ran. The unit of work
is a :class:`RunSpec` — one benchmark on one design point with one trace
seed — whose :meth:`RunSpec.key` is the persistent identity results are
cached under.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field

from repro.acmp.config import AcmpConfig
from repro.errors import ConfigurationError

#: The persistent identity of one run: (benchmark, config label, seed,
#: scale). Everything the synthesis and simulation depend on, modulo the
#: full config (the label is the design point's reporting identity).
RunKey = tuple[str, str, int, float]


@dataclass(frozen=True)
class RunSpec:
    """One benchmark × design point × seed simulation."""

    benchmark: str
    config: AcmpConfig
    seed: int = 0
    scale: float = 1.0
    warm_l2: bool = True
    cycle_skip: bool = True

    @property
    def key(self) -> RunKey:
        return (self.benchmark, self.config.label(), self.seed, self.scale)

    def config_digest(self) -> str:
        """Fingerprint of every run-affecting input the key omits.

        ``config.label()`` is a reporting identity, not a full one —
        fields like ``worker_count`` or ``arbitration`` do not appear
        in it, and ``warm_l2`` is outside the config entirely. The
        digest covers all of them so a store can refuse to serve a
        cached result produced by a different machine than the one
        requested. ``cycle_skip`` is deliberately excluded: the two
        engine paths are bit-identical by contract.
        """
        payload = json.dumps(
            {"config": asdict(self.config), "warm_l2": self.warm_l2},
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def describe(self) -> str:
        return (
            f"{self.benchmark} @ {self.config.label()} "
            f"(seed={self.seed}, scale={self.scale})"
        )


@dataclass(frozen=True)
class Campaign:
    """A declarative sweep: every benchmark on every design point.

    Attributes:
        name: campaign identifier used in reports.
        benchmarks: benchmark names to evaluate.
        design_points: the :class:`AcmpConfig` instances to sweep.
        seeds: trace-synthesis seeds; each (benchmark, design point)
            pair runs once per seed.
        scale: per-thread instruction budget multiplier.
    """

    name: str
    benchmarks: tuple[str, ...]
    design_points: tuple[AcmpConfig, ...]
    seeds: tuple[int, ...] = (0,)
    scale: float = 1.0
    warm_l2: bool = True
    cycle_skip: bool = True

    def __post_init__(self) -> None:
        if not self.benchmarks:
            raise ConfigurationError("campaign needs at least one benchmark")
        if not self.design_points:
            raise ConfigurationError(
                "campaign needs at least one design point"
            )
        if not self.seeds:
            raise ConfigurationError("campaign needs at least one seed")
        labels = [config.label() for config in self.design_points]
        if len(set(labels)) != len(labels):
            raise ConfigurationError(
                f"campaign design points have colliding labels: {labels}"
            )

    def runs(self) -> list[RunSpec]:
        """The full cross product, in deterministic order."""
        return [
            RunSpec(
                benchmark=benchmark,
                config=config,
                seed=seed,
                scale=self.scale,
                warm_l2=self.warm_l2,
                cycle_skip=self.cycle_skip,
            )
            for benchmark in self.benchmarks
            for config in self.design_points
            for seed in self.seeds
        ]

    @property
    def size(self) -> int:
        return len(self.benchmarks) * len(self.design_points) * len(self.seeds)


@dataclass(frozen=True)
class RunFailure:
    """One spec that still failed after the runner's retry."""

    spec: RunSpec
    error: str
    attempts: int


@dataclass
class CampaignReport:
    """Outcome of one campaign invocation."""

    name: str
    total: int
    executed: int
    cached: int
    wall_seconds: float
    jobs: int
    results: dict[RunKey, object] = field(default_factory=dict)
    #: Runs that failed even after the retry (journalled when a result
    #: store is attached; see ``failures.jsonl`` next to it).
    failures: list[RunFailure] = field(default_factory=list)

    def summary(self) -> str:
        rate = self.executed / self.wall_seconds if self.wall_seconds else 0.0
        failed = f", {len(self.failures)} FAILED" if self.failures else ""
        return (
            f"campaign {self.name!r}: {self.total} runs "
            f"({self.executed} executed, {self.cached} cached{failed}) in "
            f"{self.wall_seconds:.1f}s with {self.jobs} job(s) "
            f"[{rate:.2f} runs/s]"
        )
