"""Declarative simulation campaigns: machines × benchmarks × designs × seeds.

A :class:`Campaign` names *what* to run; :mod:`repro.campaign.runner`
decides *how* (serial or process-parallel) and
:mod:`repro.campaign.store` remembers what already ran. The unit of work
is a :class:`RunSpec` — one benchmark on one design point of one machine
model with one trace seed — whose :meth:`RunSpec.key` is the persistent
identity results are cached under. The machine model is resolved from
the configuration's type through the registry
(:mod:`repro.machine.model`), so campaigns can mix machines freely.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field

from repro.errors import ConfigurationError
from repro.machine.config import BaseMachineConfig

#: The persistent identity of one run: (machine, benchmark, config
#: label, seed, scale). Everything the synthesis and simulation depend
#: on, modulo the full config (the label is the design point's
#: reporting identity within its machine's namespace).
RunKey = tuple[str, str, str, int, float]


@dataclass(frozen=True)
class RunSpec:
    """One benchmark × design point × seed simulation on one machine."""

    benchmark: str
    config: BaseMachineConfig
    seed: int = 0
    scale: float = 1.0
    warm_l2: bool = True
    cycle_skip: bool = True
    #: Machine-model registry name; derived from the config's type when
    #: left empty, so existing ``RunSpec(benchmark, config)`` calls keep
    #: working for any machine.
    machine: str = ""
    #: Sampling flavor: empty for full detailed simulation, otherwise a
    #: mode name (``fast``/``precise``) or plan spec, normalised to the
    #: canonical :meth:`SamplingPlan.spec` string. Like the engine
    #: flavor, sampling is part of the store identity — sampled
    #: (extrapolated) and full results never share a cache entry.
    sampling: str = ""

    def __post_init__(self) -> None:
        if not self.machine:
            from repro.machine.model import model_for_config

            object.__setattr__(
                self, "machine", model_for_config(self.config).name
            )
        if self.sampling:
            from repro.sampling.plan import resolve_plan

            plan = resolve_plan(self.sampling)
            object.__setattr__(
                self, "sampling", plan.spec() if plan is not None else ""
            )

    @property
    def key(self) -> RunKey:
        return (
            self.machine,
            self.benchmark,
            self.config.label(),
            self.seed,
            self.scale,
        )

    @property
    def engine(self) -> str:
        """Engine flavor tag: ``skip`` (scheduled) or ``reference``."""
        return "skip" if self.cycle_skip else "reference"

    @property
    def flavor(self) -> tuple[str, str]:
        """The cache-entry flavor axes beyond the run key: (engine,
        sampling). Two specs with the same key but different flavors
        are distinct work units and distinct store entries."""
        return (self.engine, self.sampling)

    def sampling_plan(self):
        """The resolved :class:`~repro.sampling.plan.SamplingPlan`, or
        ``None`` for full detailed simulation."""
        from repro.sampling.plan import resolve_plan

        return resolve_plan(self.sampling)

    def config_digest(self) -> str:
        """Fingerprint of every run-affecting input the key omits.

        ``config.label()`` is a reporting identity, not a full one —
        fields like ``worker_count`` or ``arbitration`` do not appear
        in it, and ``warm_l2`` is outside the config entirely. The
        digest covers all of them so a store can refuse to serve a
        cached result produced by a different machine than the one
        requested. ``cycle_skip`` is deliberately excluded here — the
        two engine paths are bit-identical by contract — but the store
        still files the flavors separately (engine cross-checks must
        never read each other's cache entries; see
        :meth:`repro.campaign.store.ResultStore.path_for`).
        """
        payload = json.dumps(
            {"config": asdict(self.config), "warm_l2": self.warm_l2},
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def describe(self) -> str:
        sampled = f", sampling={self.sampling}" if self.sampling else ""
        return (
            f"{self.benchmark} @ {self.machine}/{self.config.label()} "
            f"(seed={self.seed}, scale={self.scale}{sampled})"
        )


def parse_shard(text: str) -> tuple[int, int]:
    """Parse a ``K/N`` shard selector into (index, count), 1-based."""
    try:
        index_text, count_text = text.split("/", 1)
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise ConfigurationError(
            f"shard must look like K/N (e.g. 2/4), got {text!r}"
        ) from None
    if count < 1 or not (1 <= index <= count):
        raise ConfigurationError(
            f"shard index must satisfy 1 <= K <= N, got {text!r}"
        )
    return index, count


def shard_specs(
    specs: list[RunSpec], index: int, count: int
) -> list[RunSpec]:
    """Deterministically select shard ``index`` of ``count`` (1-based).

    Partitioning hashes each spec's persistent :attr:`RunSpec.key`, so
    every host enumerating the same campaign — in any order, with any
    local cache state — agrees on the assignment, and shards stay
    stable when a campaign grows new design points.
    """
    if count == 1:
        return list(specs)
    selected = []
    for spec in specs:
        digest = hashlib.sha256(repr(spec.key).encode()).digest()
        if int.from_bytes(digest[:8], "big") % count == index - 1:
            selected.append(spec)
    return selected


@dataclass(frozen=True)
class Campaign:
    """A declarative sweep: every benchmark on every design point.

    Attributes:
        name: campaign identifier used in reports.
        benchmarks: benchmark names to evaluate.
        design_points: the machine configurations to sweep (any mix of
            registered machine models).
        seeds: trace-synthesis seeds; each (benchmark, design point)
            pair runs once per seed.
        scale: per-thread instruction budget multiplier.
    """

    name: str
    benchmarks: tuple[str, ...]
    design_points: tuple[BaseMachineConfig, ...]
    seeds: tuple[int, ...] = (0,)
    scale: float = 1.0
    warm_l2: bool = True
    cycle_skip: bool = True
    #: Sampling flavor applied to every run (see :attr:`RunSpec.sampling`).
    sampling: str = ""

    def __post_init__(self) -> None:
        if not self.benchmarks:
            raise ConfigurationError("campaign needs at least one benchmark")
        if not self.design_points:
            raise ConfigurationError(
                "campaign needs at least one design point"
            )
        if not self.seeds:
            raise ConfigurationError("campaign needs at least one seed")
        labels = [
            (type(config).__name__, config.label())
            for config in self.design_points
        ]
        if len(set(labels)) != len(labels):
            raise ConfigurationError(
                f"campaign design points have colliding labels: "
                f"{[label for _, label in labels]}"
            )

    def runs(self) -> list[RunSpec]:
        """The full cross product, in deterministic order."""
        return [
            RunSpec(
                benchmark=benchmark,
                config=config,
                seed=seed,
                scale=self.scale,
                warm_l2=self.warm_l2,
                cycle_skip=self.cycle_skip,
                sampling=self.sampling,
            )
            for benchmark in self.benchmarks
            for config in self.design_points
            for seed in self.seeds
        ]

    @property
    def size(self) -> int:
        return len(self.benchmarks) * len(self.design_points) * len(self.seeds)


@dataclass(frozen=True)
class RunFailure:
    """One spec that still failed after the runner's retry."""

    spec: RunSpec
    error: str
    attempts: int
    #: Wall seconds of the final (failing) attempt — in parallel mode
    #: the submit-to-completion span the parent observed. Journalled so
    #: a resume can tell a fast config error from a slow timeout.
    duration_s: float = 0.0


@dataclass
class CampaignReport:
    """Outcome of one campaign invocation."""

    name: str
    total: int
    executed: int
    cached: int
    wall_seconds: float
    #: Worker processes as requested (``--jobs``).
    jobs: int
    #: Worker processes actually usable after clamping to the host's
    #: CPU count — on a 1-CPU host ``--jobs 4`` runs 1-wide, and this
    #: field (plus a logged warning) is the signal.
    effective_jobs: int = 0
    #: One result per run key. A batch normally carries a single flavor
    #: per key; when it mixes flavors (a ``--from-failures`` resume
    #: replaying full and sampled entries of one design point), the
    #: highest-fidelity flavor wins deterministically — full detail
    #: over sampled, scheduled over reference — never completion order.
    #: Flavor-exact bookkeeping lives in :attr:`completed`.
    results: dict[RunKey, object] = field(default_factory=dict)
    #: Every ``(key, (engine, sampling))`` that landed this invocation,
    #: whether executed or served from the store — the set journal
    #: compaction matches against, so a sampled success never prunes a
    #: still-failing full run of the same key (or vice versa).
    completed: set[tuple[RunKey, tuple[str, str]]] = field(
        default_factory=set
    )
    #: Runs that failed even after the retry (journalled when a result
    #: store is attached; see ``failures.jsonl`` next to it).
    failures: list[RunFailure] = field(default_factory=list)
    #: Runs excluded by the active shard selector (other hosts' work).
    sharded_out: int = 0
    #: Campaign-wide metrics rollup (``None`` unless obs recording was
    #: on): every completed run's serialized registry merged, plus the
    #: runner's own ``campaign.*`` counters and ``phase.*`` timings.
    metrics: list | None = None

    def summary(self) -> str:
        rate = self.executed / self.wall_seconds if self.wall_seconds else 0.0
        failed = f", {len(self.failures)} FAILED" if self.failures else ""
        shard = (
            f", {self.sharded_out} on other shards" if self.sharded_out else ""
        )
        jobs = f"{self.jobs} job(s)"
        if self.effective_jobs and self.effective_jobs != self.jobs:
            jobs = f"{self.jobs} job(s) (clamped to {self.effective_jobs})"
        return (
            f"campaign {self.name!r}: {self.total} runs "
            f"({self.executed} executed, {self.cached} cached{failed}"
            f"{shard}) in {self.wall_seconds:.1f}s with {jobs} "
            f"[{rate:.2f} runs/s]"
        )
