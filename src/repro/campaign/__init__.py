"""Simulation campaigns: declarative sweeps, parallel execution, caching.

The layer between the single-run engine (:mod:`repro.acmp` on
:mod:`repro.engine`) and the figure/table drivers: declare *what* to run
(:class:`Campaign` / :class:`RunSpec`), execute it serially or across
worker processes (:func:`run_campaign` / :func:`run_specs`), and never
run the same design point twice (:class:`ResultStore`).
"""

from repro.campaign.runner import (
    execute_run,
    print_progress,
    run_campaign,
    run_specs,
)
from repro.campaign.spec import (
    Campaign,
    CampaignReport,
    RunFailure,
    RunKey,
    RunSpec,
)
from repro.campaign.store import ResultStore

__all__ = [
    "Campaign",
    "CampaignReport",
    "ResultStore",
    "RunFailure",
    "RunKey",
    "RunSpec",
    "execute_run",
    "print_progress",
    "run_campaign",
    "run_specs",
]
