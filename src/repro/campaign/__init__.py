"""Simulation campaigns: declarative sweeps, parallel execution, caching.

The layer between the single-run engine (the machine models of
:mod:`repro.machine` on :mod:`repro.engine`) and the figure/table
drivers: declare *what* to run (:class:`Campaign` / :class:`RunSpec` —
any mix of registered machine models), execute it serially, across
worker processes, or as one deterministic shard of a multi-host sweep
(:func:`run_campaign` / :func:`run_specs`), and never run the same
design point twice (:class:`ResultStore`). ``python -m repro.campaign``
exposes the sweep/shard/resume workflow on the command line.
"""

from repro.campaign.runner import (
    execute_run,
    print_progress,
    run_campaign,
    run_specs,
)
from repro.campaign.spec import (
    Campaign,
    CampaignReport,
    RunFailure,
    RunKey,
    RunSpec,
    parse_shard,
    shard_specs,
)
from repro.campaign.store import MergeReport, ResultStore, merge_stores

__all__ = [
    "Campaign",
    "CampaignReport",
    "MergeReport",
    "ResultStore",
    "RunFailure",
    "RunKey",
    "RunSpec",
    "execute_run",
    "merge_stores",
    "parse_shard",
    "print_progress",
    "run_campaign",
    "run_specs",
    "shard_specs",
]
