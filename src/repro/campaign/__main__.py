"""Command-line campaign driver: populate a shared result store.

Runs a declarative sweep — one machine model's standard design points
(or the naive cross product of a config space subset) over a benchmark
list and seed sweep — into a persistent :class:`ResultStore`, with
optional multi-host sharding and failure-journal resume.

Examples::

    # Sweep the ACMP standard design points over three benchmarks.
    python -m repro.campaign --machine acmp --benchmarks CG,UA,CoMD \\
        --scale 0.1 --cache-dir .results

    # The same sweep split across two hosts sharing .results (e.g. NFS):
    python -m repro.campaign --machine scmp --cache-dir .results --shard 1/2
    python -m repro.campaign --machine scmp --cache-dir .results --shard 2/2

    # Retry only what the journal says is still failing:
    python -m repro.campaign --cache-dir .results --from-failures

Sharding hashes each run's persistent key, so every host enumerating
the same campaign agrees on the partition without coordination; the
``failures.jsonl`` journal next to the store is the resume manifest
(runs that later succeed are pruned from it automatically).
"""

from __future__ import annotations

import argparse
import sys

from repro.campaign.runner import print_progress, run_specs
from repro.campaign.spec import Campaign, RunSpec, parse_shard
from repro.campaign.store import ResultStore
from repro.machine.model import get_model, model_names
from repro.workloads.suites import benchmark_names


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description="Run a simulation campaign into a shared result store.",
    )
    parser.add_argument(
        "--machine",
        choices=model_names(),
        default="acmp",
        help="machine model whose standard design points to sweep",
    )
    parser.add_argument(
        "--benchmarks",
        type=str,
        default="",
        help="comma-separated benchmark subset (default: all)",
    )
    parser.add_argument(
        "--seeds",
        type=str,
        default="0",
        help="comma-separated trace-synthesis seeds (default: 0)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="per-thread instruction budget multiplier (default 1.0)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (default 1)",
    )
    parser.add_argument(
        "--cache-dir",
        type=str,
        required=True,
        help="result store root shared by every shard of the campaign",
    )
    parser.add_argument(
        "--shard",
        type=str,
        default="",
        help="K/N: run only the K-th of N deterministic partitions of "
        "the campaign (multi-host sweeps over one store tree)",
    )
    parser.add_argument(
        "--from-failures",
        action="store_true",
        help="ignore the sweep definition and retry the runs journalled "
        "in failures.jsonl (the resume manifest)",
    )
    parser.add_argument(
        "--no-cycle-skip",
        action="store_true",
        help="run the cycle-by-cycle reference engine (cross-check "
        "entries are cached separately from scheduled-engine ones)",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress per-run progress on stderr",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    store = ResultStore(args.cache_dir)
    shard = parse_shard(args.shard) if args.shard else None

    specs: list[RunSpec]
    if args.from_failures:
        specs = store.failed_specs()
        name = "resume-failures"
        if not specs:
            print("failures.jsonl is empty: nothing to resume", file=sys.stderr)
            return 0
    else:
        model = get_model(args.machine)
        benchmarks = tuple(
            name.strip() for name in args.benchmarks.split(",") if name.strip()
        ) or tuple(benchmark_names())
        seeds = tuple(
            int(part) for part in args.seeds.split(",") if part.strip() != ""
        )
        campaign = Campaign(
            name=f"{args.machine}-standard",
            benchmarks=benchmarks,
            design_points=tuple(model.standard_design_points()),
            seeds=seeds or (0,),
            scale=args.scale,
            cycle_skip=not args.no_cycle_skip,
        )
        specs = campaign.runs()
        name = campaign.name

    report = run_specs(
        specs,
        jobs=args.jobs,
        store=store,
        progress=None if args.quiet else print_progress,
        name=name,
        strict=False,
        shard=shard,
    )
    if args.from_failures and report.results:
        # Explicit single-operator compaction of the resume manifest;
        # routine sweeps only ever append to it.
        succeeded = {
            (spec.key, spec.engine)
            for spec in specs
            if spec.key in report.results
        }
        pruned = store.prune_journal(succeeded)
        if pruned:
            print(f"pruned {pruned} recovered run(s) from failures.jsonl")
    print(report.summary())
    if report.failures:
        print(
            f"{len(report.failures)} run(s) journalled to "
            f"{store.journal_path}; rerun with --from-failures to retry",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
