"""Command-line campaign driver: populate and maintain a shared store.

Runs a declarative sweep — one machine model's standard design points
over a benchmark list and seed sweep — into a persistent
:class:`ResultStore`, with optional multi-host sharding, sampled
simulation, failure-journal resume, cross-host progress reporting and
store-tree maintenance.

Examples::

    # Sweep the ACMP standard design points over three benchmarks.
    python -m repro.campaign --machine acmp --benchmarks CG,UA,CoMD \\
        --scale 0.1 --cache-dir .results

    # The same sweep split across two hosts sharing .results (e.g. NFS):
    python -m repro.campaign --machine scmp --cache-dir .results --shard 1/2
    python -m repro.campaign --machine scmp --cache-dir .results --shard 2/2

    # Interval-sampled runs (cached separately from full runs):
    python -m repro.campaign --cache-dir .results --sampling fast

    # Retry only what the journal says is still failing:
    python -m repro.campaign --cache-dir .results --from-failures

    # Cross-host progress: done/failed/pending per machine and shard.
    python -m repro.campaign --cache-dir .results --status --shards 4

    # Fold per-host store trees back into one (newest wins):
    python -m repro.campaign merge hostA/.results hostB/.results .results

    # Drop entries whose machine/engine/sampling flavor no longer parses:
    python -m repro.campaign gc .results

Sharding hashes each run's persistent key, so every host enumerating
the same campaign agrees on the partition without coordination; the
``failures.jsonl`` journal next to the store is the resume manifest
(runs that later succeed are pruned from it automatically).
"""

from __future__ import annotations

import argparse
import logging
import sys
from pathlib import Path

from repro.campaign.runner import print_progress, run_specs
from repro.campaign.spec import Campaign, RunSpec, parse_shard, shard_specs
from repro.campaign.store import ResultStore, merge_stores
from repro.machine.model import get_model, model_names
from repro.obs.log import add_log_arguments, setup_from_args
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import phase_breakdown
from repro.sampling.checkpoints import CheckpointStore
from repro.sampling.plan import resolve_plan, sampling_modes
from repro.workloads.suites import benchmark_names

# Not __name__: under `python -m` this module IS "__main__",
# which would fall outside the configured "repro" logger tree.
_LOG = logging.getLogger("repro.campaign.cli")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description="Run a simulation campaign into a shared result store "
        "(subcommands: merge <src>... <dst>, gc <dir>).",
    )
    parser.add_argument(
        "--machine",
        choices=model_names(),
        default=None,
        help="machine model whose standard design points to sweep "
        "(default acmp; --status without it reports every model)",
    )
    parser.add_argument(
        "--benchmarks",
        type=str,
        default="",
        help="comma-separated benchmark subset (default: all)",
    )
    parser.add_argument(
        "--seeds",
        type=str,
        default="0",
        help="comma-separated trace-synthesis seeds (default: 0)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="per-thread instruction budget multiplier (default 1.0)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (default 1)",
    )
    parser.add_argument(
        "--cache-dir",
        type=str,
        required=True,
        help="result store root shared by every shard of the campaign",
    )
    parser.add_argument(
        "--shard",
        type=str,
        default="",
        help="K/N: run only the K-th of N deterministic partitions of "
        "the campaign (multi-host sweeps over one store tree)",
    )
    parser.add_argument(
        "--from-failures",
        action="store_true",
        help="ignore the sweep definition and retry the runs journalled "
        "in failures.jsonl (the resume manifest)",
    )
    parser.add_argument(
        "--no-cycle-skip",
        action="store_true",
        help="run the cycle-by-cycle reference engine (cross-check "
        "entries are cached separately from scheduled-engine ones)",
    )
    parser.add_argument(
        "--sampling",
        type=str,
        default="none",
        help=f"interval-sampled simulation: one of {sampling_modes()} or "
        f"a plan spec like d8000:s152000:w152000:r0 (sampled entries "
        f"are cached separately from full runs)",
    )
    parser.add_argument(
        "--checkpoints",
        choices=("on", "off", "refresh"),
        default="on",
        help="warm-checkpoint store for sampled runs, colocated at "
        "<cache-dir>/checkpoints: on (read+write, default), off, or "
        "refresh (ignore existing entries but rewrite them)",
    )
    parser.add_argument(
        "--event-dir",
        type=str,
        default=None,
        help="read traces from this captured corpus (layout written by "
        "'python -m repro.trace capture' / --capture-traces) instead of "
        "synthesising; chunked sets stream in O(chunk) memory",
    )
    parser.add_argument(
        "--capture-traces",
        type=str,
        default=None,
        metavar="DIR",
        help="persist every synthesized trace set into this corpus "
        "(chunked .trcz) as a side effect of the sweep",
    )
    parser.add_argument(
        "--status",
        action="store_true",
        help="no simulation: report done/failed/pending counts for the "
        "sweep against the store tree and failure journal, per machine "
        "and (with --shards N) per shard",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=0,
        help="with --status: break the progress report down into N "
        "hash-partitioned shards (the same partition --shard K/N uses)",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="suppress per-run progress on stderr",
    )
    add_log_arguments(parser)
    return parser


def _build_specs(args, machine: str) -> list[RunSpec]:
    model = get_model(machine)
    benchmarks = tuple(
        name.strip() for name in args.benchmarks.split(",") if name.strip()
    ) or tuple(benchmark_names())
    seeds = tuple(
        int(part) for part in args.seeds.split(",") if part.strip() != ""
    )
    campaign = Campaign(
        name=f"{machine}-standard",
        benchmarks=benchmarks,
        design_points=tuple(model.standard_design_points()),
        seeds=seeds or (0,),
        scale=args.scale,
        cycle_skip=not args.no_cycle_skip,
        sampling=args.sampling if args.sampling != "none" else "",
    )
    return campaign.runs()


def _status(args, store: ResultStore) -> int:
    """Cross-host progress summary: store + journal reads only."""
    machines = [args.machine] if args.machine else model_names()
    journalled = store.journalled_flavors()

    def bucket(specs: list[RunSpec]) -> tuple[int, int, int]:
        done = failed = pending = 0
        for spec in specs:
            if spec in store:
                done += 1
            elif (spec.key, spec.flavor) in journalled:
                failed += 1
            else:
                pending += 1
        return done, failed, pending

    print(f"store {store.root}: {len(store)} entries")
    checkpoint_root = store.root / CheckpointStore.SUBDIR
    if checkpoint_root.is_dir():
        checkpoint_store = CheckpointStore(checkpoint_root)
        print(
            f"checkpoints {checkpoint_root}: {len(checkpoint_store)} "
            f"warm-state entries, {checkpoint_store.total_bytes()} bytes"
        )
    phases = phase_breakdown(
        MetricsRegistry.rollup(
            entry.get("metrics") for entry in store.payloads()
        )
    )
    if phases:
        total = sum(phases.values()) or 1.0
        parts = ", ".join(
            f"{name} {seconds:.2f}s ({seconds / total:.0%})"
            for name, seconds in sorted(
                phases.items(), key=lambda item: -item[1]
            )
        )
        print(f"phase time across stored runs: {parts}")
    for machine in machines:
        specs = _build_specs(args, machine)
        done, failed, pending = bucket(specs)
        print(
            f"  {machine}: {len(specs)} runs — {done} done, "
            f"{failed} failed, {pending} pending"
        )
        if args.shards > 1:
            for index in range(1, args.shards + 1):
                shard = shard_specs(specs, index, args.shards)
                done, failed, pending = bucket(shard)
                print(
                    f"    shard {index}/{args.shards}: {len(shard)} runs "
                    f"— {done} done, {failed} failed, {pending} pending"
                )
    return 0


def _main_merge(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign merge",
        description="Union sharded store trees into one (newest-wins on "
        "entry collision; failure journals are deduplicated line-wise).",
    )
    parser.add_argument("source", nargs="+", help="store tree(s) to merge")
    parser.add_argument("destination", help="store tree to merge into")
    args = parser.parse_args(argv)
    report = merge_stores(args.source, args.destination)
    print(f"merged into {args.destination}: {report.summary()}")
    return 0


def _main_gc(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign gc",
        description="Drop store entries whose machine/engine/sampling "
        "flavor no longer parses (corrupt JSON, retired machine models, "
        "unknown flavor formats).",
    )
    parser.add_argument("store", help="store tree to collect")
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help="only report what would be removed",
    )
    args = parser.parse_args(argv)
    removed = list(ResultStore(args.store).gc(dry_run=args.dry_run))
    checkpoint_root = Path(args.store) / CheckpointStore.SUBDIR
    if checkpoint_root.is_dir():
        removed.extend(
            CheckpointStore(checkpoint_root).gc(dry_run=args.dry_run)
        )
    verb = "would remove" if args.dry_run else "removed"
    print(f"gc {args.store}: {verb} {len(removed)} entr(y/ies)")
    for path in removed:
        print(f"  {path}")
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "merge":
        return _main_merge(argv[1:])
    if argv and argv[0] == "gc":
        return _main_gc(argv[1:])
    args = _build_parser().parse_args(argv)
    setup_from_args(args)
    if args.sampling != "none":
        resolve_plan(args.sampling)  # fail fast on malformed plans
    store = ResultStore(args.cache_dir)
    if args.status:
        return _status(args, store)
    shard = parse_shard(args.shard) if args.shard else None
    machine = args.machine or "acmp"

    specs: list[RunSpec]
    if args.from_failures:
        specs = store.failed_specs()
        name = "resume-failures"
        if not specs:
            _LOG.warning("failures.jsonl is empty: nothing to resume")
            return 0
    else:
        specs = _build_specs(args, machine)
        name = f"{machine}-standard"

    report = run_specs(
        specs,
        jobs=args.jobs,
        store=store,
        progress=None if args.quiet else print_progress,
        name=name,
        strict=False,
        shard=shard,
        checkpoints=args.checkpoints,
        event_dir=args.event_dir,
        capture_dir=args.capture_traces,
    )
    if args.from_failures and report.completed:
        # Explicit single-operator compaction of the resume manifest;
        # routine sweeps only ever append to it. ``completed`` is
        # flavor-exact: a sampled recovery never prunes a still-failing
        # full run of the same key, and vice versa.
        pruned = store.prune_journal(report.completed)
        if pruned:
            print(f"pruned {pruned} recovered run(s) from failures.jsonl")
    print(report.summary())
    if report.failures:
        _LOG.warning(
            "%d run(s) journalled to %s; rerun with --from-failures to retry",
            len(report.failures),
            store.journal_path,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
