"""Cache statistics with compulsory/non-compulsory miss classification.

The paper's miss analysis (Section VI-C, Fig. 11) distinguishes compulsory
(cold) misses — dominant in HPC parallel code — from capacity/conflict
misses, to explain why a shared I-cache nearly eliminates cold misses via
cross-thread prefetching. We classify a miss as compulsory when the cache
has never held the line before.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CacheStats:
    """Counters for one cache instance."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    compulsory_misses: int = 0
    evictions: int = 0
    #: Lines that were ever resident, for compulsory classification.
    _seen_lines: set[int] = field(default_factory=set, repr=False)

    @property
    def non_compulsory_misses(self) -> int:
        return self.misses - self.compulsory_misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def record_hit(self) -> None:
        self.accesses += 1
        self.hits += 1

    def record_miss(self, line_address: int) -> None:
        self.accesses += 1
        self.misses += 1
        if line_address not in self._seen_lines:
            self.compulsory_misses += 1
            self._seen_lines.add(line_address)

    def record_eviction(self) -> None:
        self.evictions += 1

    def mpki(self, instructions: int) -> float:
        """Misses per kilo-instruction for a given instruction count."""
        if instructions <= 0:
            return 0.0
        return self.misses * 1000.0 / instructions

    def merge(self, other: "CacheStats") -> None:
        """Fold another stats object into this one (for aggregation)."""
        self.accesses += other.accesses
        self.hits += other.hits
        self.misses += other.misses
        self.compulsory_misses += other.compulsory_misses
        self.evictions += other.evictions
        self._seen_lines |= other._seen_lines
