"""Timing-free cache simulation for workload characterisation.

Reproduces the paper's Fig. 3 methodology: run the master thread's trace
through a standard 32 KB / 8-way / 64 B-line / LRU I-cache and report MPKI
separately for serial and parallel code regions. At this granularity the
simulation is orders of magnitude faster than the cycle-level model, so
characterisation can use much longer traces.

Scale note. The paper's runs execute >= 20 G instructions, so the one-time
cold misses on a bounded, reused code footprint contribute ~0 MPKI there,
while misses to code with no reuse (cold paths swept once) recur at a fixed
per-instruction rate. On short synthetic traces both appear as compulsory
misses, so :class:`RegionMpki` separates them: ``steady_state_mpki``
excludes first-touch misses to lines that are later reused (they amortize
away at paper scale) and keeps everything else.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.cache.set_assoc import SetAssociativeCache
from repro.trace.records import BasicBlockRecord, SyncKind, SyncRecord
from repro.trace.stream import ThreadTrace


@dataclass(frozen=True, slots=True)
class RegionMpki:
    """Per-region miss statistics from a functional run."""

    instructions: int
    accesses: int
    misses: int
    compulsory_misses: int
    #: Compulsory misses whose line is accessed again later in the trace;
    #: these amortize to ~0 MPKI at the paper's full instruction counts.
    reused_compulsory_misses: int = 0

    @property
    def mpki(self) -> float:
        """Raw misses per kilo-instruction at trace scale."""
        if self.instructions == 0:
            return 0.0
        return self.misses * 1000.0 / self.instructions

    @property
    def steady_state_mpki(self) -> float:
        """Scale-invariant MPKI: excludes amortizing first-touch misses."""
        if self.instructions == 0:
            return 0.0
        steady = self.misses - self.reused_compulsory_misses
        return steady * 1000.0 / self.instructions


class FunctionalICache:
    """Feed basic blocks through a cache, touching every spanned line."""

    def __init__(
        self,
        size_bytes: int = 32 * 1024,
        ways: int = 8,
        line_bytes: int = 64,
        policy: str = "lru",
    ) -> None:
        self._cache = SetAssociativeCache(
            size_bytes, ways, line_bytes, policy, name="functional-icache"
        )
        self._line_bytes = line_bytes
        self._seen_lines: set[int] = set()
        self.accesses = 0
        self.misses = 0
        self.compulsory_misses = 0

    @property
    def line_bytes(self) -> int:
        return self._line_bytes

    def lines_of(self, block: BasicBlockRecord) -> range:
        """Line addresses the block spans."""
        first = block.address & ~(self._line_bytes - 1)
        return range(first, block.end_address, self._line_bytes)

    def access_line(self, line: int) -> bool:
        """Access one line; return True on a miss."""
        self.accesses += 1
        if self._cache.access(line).hit:
            return False
        self.misses += 1
        if line not in self._seen_lines:
            self.compulsory_misses += 1
            self._seen_lines.add(line)
        return True

    def access_block(self, block: BasicBlockRecord) -> int:
        """Touch every line the block spans; return the number of misses."""
        return sum(self.access_line(line) for line in self.lines_of(block))


def characterize_regions(
    trace: ThreadTrace,
    size_bytes: int = 32 * 1024,
    ways: int = 8,
    line_bytes: int = 64,
    policy: str = "lru",
) -> tuple[RegionMpki, RegionMpki]:
    """Run one thread's trace; return (serial, parallel) region statistics.

    Mirrors Fig. 3: one cache serves the whole run (as the master core's
    I-cache does), with accesses and misses attributed to the region in
    which they occur.
    """
    cache = FunctionalICache(size_bytes, ways, line_bytes, policy)
    instructions = [0, 0]  # serial, parallel
    accesses = [0, 0]
    misses = [0, 0]
    compulsory = [0, 0]
    touch_counts: Counter[int] = Counter()
    #: line -> region of its first-touch miss (for reuse classification)
    first_touch_region: dict[int, int] = {}
    depth = 0
    for record in trace.records:
        if isinstance(record, SyncRecord):
            if record.kind is SyncKind.PARALLEL_START:
                depth += 1
            elif record.kind is SyncKind.PARALLEL_END:
                depth -= 1
        elif isinstance(record, BasicBlockRecord):
            region = 1 if depth > 0 else 0
            instructions[region] += record.instruction_count
            for line in cache.lines_of(record):
                touch_counts[line] += 1
                before_compulsory = cache.compulsory_misses
                missed = cache.access_line(line)
                accesses[region] += 1
                if missed:
                    misses[region] += 1
                    if cache.compulsory_misses > before_compulsory:
                        compulsory[region] += 1
                        first_touch_region[line] = region
    reused = [0, 0]
    for line, region in first_touch_region.items():
        if touch_counts[line] > 1:
            reused[region] += 1
    serial = RegionMpki(
        instructions[0], accesses[0], misses[0], compulsory[0], reused[0]
    )
    parallel = RegionMpki(
        instructions[1], accesses[1], misses[1], compulsory[1], reused[1]
    )
    return serial, parallel
