"""Cache substrate: set-associative caches, banking, line buffers, MSHRs."""

from repro.cache.banked import BankedCache
from repro.cache.functional import FunctionalICache, RegionMpki, characterize_regions
from repro.cache.line_buffer import LineBufferSet, LineBufferStats, LookupState
from repro.cache.mshr import MshrFile, MshrStats
from repro.cache.replacement import (
    FifoPolicy,
    LruPolicy,
    RandomPolicy,
    ReplacementPolicy,
    TreePlruPolicy,
    make_policy,
)
from repro.cache.set_assoc import AccessResult, SetAssociativeCache
from repro.cache.stats import CacheStats

__all__ = [
    "BankedCache",
    "FunctionalICache",
    "RegionMpki",
    "characterize_regions",
    "LineBufferSet",
    "LineBufferStats",
    "LookupState",
    "MshrFile",
    "MshrStats",
    "FifoPolicy",
    "LruPolicy",
    "RandomPolicy",
    "ReplacementPolicy",
    "TreePlruPolicy",
    "make_policy",
    "AccessResult",
    "SetAssociativeCache",
    "CacheStats",
]
