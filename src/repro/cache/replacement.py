"""Replacement policies for set-associative caches.

The paper's configuration uses LRU (Table I and Fig. 3 caption); the other
policies support the replacement-policy ablation benches.
"""

from __future__ import annotations

import abc
from random import Random

from repro.errors import ConfigurationError
from repro.utils import require_positive


class ReplacementPolicy(abc.ABC):
    """Per-cache replacement state. One instance serves all sets."""

    def __init__(self, set_count: int, ways: int) -> None:
        require_positive(set_count, "set_count")
        require_positive(ways, "ways")
        self.set_count = set_count
        self.ways = ways

    @abc.abstractmethod
    def on_access(self, set_index: int, way: int) -> None:
        """Update state after a hit on ``way`` of ``set_index``."""

    @abc.abstractmethod
    def on_fill(self, set_index: int, way: int) -> None:
        """Update state after a fill into ``way`` of ``set_index``."""

    @abc.abstractmethod
    def victim(self, set_index: int) -> int:
        """Choose the way to evict from a full set."""

    # -- warm-state checkpoints --------------------------------------------

    def warm_state(self) -> object | None:
        """JSON-ready snapshot of the replacement state, or ``None``.

        Policies without snapshot support (e.g. the seeded random
        policy) return ``None``; a restored cache then starts with
        fresh replacement state. Mutable payloads are passed by
        reference — :meth:`load_warm_state` adopts, it does not copy.
        """
        return None

    def load_warm_state(self, state: object | None) -> None:
        """Adopt a :meth:`warm_state` snapshot (``None`` is a no-op)."""
        if state is not None:
            raise ValueError(
                f"{type(self).__name__} has no warm state to restore"
            )


class LruPolicy(ReplacementPolicy):
    """True least-recently-used replacement (the paper's policy).

    Per-set recency order lists are allocated on first touch: an
    untouched set's order is way order (``None`` placeholder), which
    keeps constructing a large cache cheap — sampled simulation builds
    a fresh system per measurement interval, and megabyte-scale L2s
    would otherwise pay for thousands of order lists they immediately
    discard to a warm-state restore.
    """

    def __init__(self, set_count: int, ways: int) -> None:
        super().__init__(set_count, ways)
        # Recency order per set: index 0 is least recently used; None
        # means never touched (way order).
        self._order: list[list[int] | None] = [None] * set_count

    def _set_order(self, set_index: int) -> list[int]:
        order = self._order[set_index]
        if order is None:
            order = list(range(self.ways))
            self._order[set_index] = order
        return order

    def on_access(self, set_index: int, way: int) -> None:
        order = self._set_order(set_index)
        order.remove(way)
        order.append(way)

    def on_fill(self, set_index: int, way: int) -> None:
        self.on_access(set_index, way)

    def victim(self, set_index: int) -> int:
        return self._set_order(set_index)[0]

    def warm_state(self) -> list[list[int] | None]:
        return self._order

    def load_warm_state(self, state) -> None:
        if len(state) != self.set_count:
            raise ValueError("LRU snapshot shape does not match the cache")
        self._order = state


class FifoPolicy(ReplacementPolicy):
    """First-in first-out: evicts the oldest fill, ignores hits."""

    def __init__(self, set_count: int, ways: int) -> None:
        super().__init__(set_count, ways)
        self._next_victim = [0] * set_count

    def on_access(self, set_index: int, way: int) -> None:
        pass  # FIFO ignores reference order

    def on_fill(self, set_index: int, way: int) -> None:
        if way == self._next_victim[set_index]:
            self._next_victim[set_index] = (way + 1) % self.ways

    def victim(self, set_index: int) -> int:
        return self._next_victim[set_index]

    def warm_state(self) -> list[int]:
        return self._next_victim

    def load_warm_state(self, state) -> None:
        if len(state) != self.set_count:
            raise ValueError("FIFO snapshot shape does not match the cache")
        self._next_victim = state


class RandomPolicy(ReplacementPolicy):
    """Uniform random victim selection (seeded for reproducibility)."""

    def __init__(self, set_count: int, ways: int, seed: int = 0) -> None:
        super().__init__(set_count, ways)
        self._rng = Random(seed)

    def on_access(self, set_index: int, way: int) -> None:
        pass

    def on_fill(self, set_index: int, way: int) -> None:
        pass

    def victim(self, set_index: int) -> int:
        return self._rng.randrange(self.ways)


class TreePlruPolicy(ReplacementPolicy):
    """Tree pseudo-LRU, the common hardware approximation of LRU.

    Requires a power-of-two way count; maintains ``ways - 1`` tree bits per
    set where each bit points towards the pseudo-least-recently-used half.
    """

    def __init__(self, set_count: int, ways: int) -> None:
        super().__init__(set_count, ways)
        if ways & (ways - 1):
            raise ConfigurationError(f"tree PLRU needs power-of-two ways, got {ways}")
        self._bits = [[0] * (ways - 1) for _ in range(set_count)]

    def _touch(self, set_index: int, way: int) -> None:
        bits = self._bits[set_index]
        node = 0
        low, high = 0, self.ways
        while high - low > 1:
            mid = (low + high) // 2
            if way < mid:
                bits[node] = 1  # point away: towards the upper half
                node = 2 * node + 1
                high = mid
            else:
                bits[node] = 0  # point towards the lower half
                node = 2 * node + 2
                low = mid
        del bits  # single exit; bits mutated in place

    def on_access(self, set_index: int, way: int) -> None:
        self._touch(set_index, way)

    def on_fill(self, set_index: int, way: int) -> None:
        self._touch(set_index, way)

    def victim(self, set_index: int) -> int:
        # Bit semantics: 1 points the victim to the upper half (set when the
        # lower half was touched), 0 to the lower half. Child indexing must
        # mirror _touch: left child (2n+1) covers the lower half, right
        # child (2n+2) the upper half.
        bits = self._bits[set_index]
        node = 0
        low, high = 0, self.ways
        while high - low > 1:
            mid = (low + high) // 2
            if bits[node]:
                node = 2 * node + 2
                low = mid
            else:
                node = 2 * node + 1
                high = mid
        return low

    def warm_state(self) -> list[list[int]]:
        return self._bits

    def load_warm_state(self, state) -> None:
        if len(state) != self.set_count or any(
            len(bits) != self.ways - 1 for bits in state
        ):
            raise ValueError("PLRU snapshot shape does not match the cache")
        self._bits = state


_POLICIES = {
    "lru": LruPolicy,
    "fifo": FifoPolicy,
    "random": RandomPolicy,
    "plru": TreePlruPolicy,
}


def make_policy(name: str, set_count: int, ways: int) -> ReplacementPolicy:
    """Build a replacement policy by name (``lru``/``fifo``/``random``/``plru``)."""
    try:
        factory = _POLICIES[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown replacement policy {name!r}; expected one of {sorted(_POLICIES)}"
        ) from None
    return factory(set_count, ways)
