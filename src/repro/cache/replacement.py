"""Replacement policies for set-associative caches.

The paper's configuration uses LRU (Table I and Fig. 3 caption); the other
policies support the replacement-policy ablation benches.
"""

from __future__ import annotations

import abc
from random import Random

from repro.errors import ConfigurationError
from repro.utils import require_positive


class ReplacementPolicy(abc.ABC):
    """Per-cache replacement state. One instance serves all sets."""

    def __init__(self, set_count: int, ways: int) -> None:
        require_positive(set_count, "set_count")
        require_positive(ways, "ways")
        self.set_count = set_count
        self.ways = ways

    @abc.abstractmethod
    def on_access(self, set_index: int, way: int) -> None:
        """Update state after a hit on ``way`` of ``set_index``."""

    @abc.abstractmethod
    def on_fill(self, set_index: int, way: int) -> None:
        """Update state after a fill into ``way`` of ``set_index``."""

    @abc.abstractmethod
    def victim(self, set_index: int) -> int:
        """Choose the way to evict from a full set."""


class LruPolicy(ReplacementPolicy):
    """True least-recently-used replacement (the paper's policy)."""

    def __init__(self, set_count: int, ways: int) -> None:
        super().__init__(set_count, ways)
        # Recency order per set: index 0 is least recently used.
        self._order = [list(range(ways)) for _ in range(set_count)]

    def on_access(self, set_index: int, way: int) -> None:
        order = self._order[set_index]
        order.remove(way)
        order.append(way)

    def on_fill(self, set_index: int, way: int) -> None:
        self.on_access(set_index, way)

    def victim(self, set_index: int) -> int:
        return self._order[set_index][0]


class FifoPolicy(ReplacementPolicy):
    """First-in first-out: evicts the oldest fill, ignores hits."""

    def __init__(self, set_count: int, ways: int) -> None:
        super().__init__(set_count, ways)
        self._next_victim = [0] * set_count

    def on_access(self, set_index: int, way: int) -> None:
        pass  # FIFO ignores reference order

    def on_fill(self, set_index: int, way: int) -> None:
        if way == self._next_victim[set_index]:
            self._next_victim[set_index] = (way + 1) % self.ways

    def victim(self, set_index: int) -> int:
        return self._next_victim[set_index]


class RandomPolicy(ReplacementPolicy):
    """Uniform random victim selection (seeded for reproducibility)."""

    def __init__(self, set_count: int, ways: int, seed: int = 0) -> None:
        super().__init__(set_count, ways)
        self._rng = Random(seed)

    def on_access(self, set_index: int, way: int) -> None:
        pass

    def on_fill(self, set_index: int, way: int) -> None:
        pass

    def victim(self, set_index: int) -> int:
        return self._rng.randrange(self.ways)


class TreePlruPolicy(ReplacementPolicy):
    """Tree pseudo-LRU, the common hardware approximation of LRU.

    Requires a power-of-two way count; maintains ``ways - 1`` tree bits per
    set where each bit points towards the pseudo-least-recently-used half.
    """

    def __init__(self, set_count: int, ways: int) -> None:
        super().__init__(set_count, ways)
        if ways & (ways - 1):
            raise ConfigurationError(f"tree PLRU needs power-of-two ways, got {ways}")
        self._bits = [[0] * (ways - 1) for _ in range(set_count)]

    def _touch(self, set_index: int, way: int) -> None:
        bits = self._bits[set_index]
        node = 0
        low, high = 0, self.ways
        while high - low > 1:
            mid = (low + high) // 2
            if way < mid:
                bits[node] = 1  # point away: towards the upper half
                node = 2 * node + 1
                high = mid
            else:
                bits[node] = 0  # point towards the lower half
                node = 2 * node + 2
                low = mid
        del bits  # single exit; bits mutated in place

    def on_access(self, set_index: int, way: int) -> None:
        self._touch(set_index, way)

    def on_fill(self, set_index: int, way: int) -> None:
        self._touch(set_index, way)

    def victim(self, set_index: int) -> int:
        # Bit semantics: 1 points the victim to the upper half (set when the
        # lower half was touched), 0 to the lower half. Child indexing must
        # mirror _touch: left child (2n+1) covers the lower half, right
        # child (2n+2) the upper half.
        bits = self._bits[set_index]
        node = 0
        low, high = 0, self.ways
        while high - low > 1:
            mid = (low + high) // 2
            if bits[node]:
                node = 2 * node + 2
                low = mid
            else:
                node = 2 * node + 1
                high = mid
        return low


_POLICIES = {
    "lru": LruPolicy,
    "fifo": FifoPolicy,
    "random": RandomPolicy,
    "plru": TreePlruPolicy,
}


def make_policy(name: str, set_count: int, ways: int) -> ReplacementPolicy:
    """Build a replacement policy by name (``lru``/``fifo``/``random``/``plru``)."""
    try:
        factory = _POLICIES[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown replacement policy {name!r}; expected one of {sorted(_POLICIES)}"
        ) from None
    return factory(set_count, ways)
