"""Line buffers: the per-core micro-cache / loop buffer of Section IV-A.

Each core front-end owns a small set of 64 B line buffers. A fetch request
whose line is already present (or in flight) reuses the buffer and never
reaches the I-cache, which is what keeps the shared-I-cache bus traffic low
for loopy HPC code (Fig. 9). Each buffer also acts as an outstanding-request
slot: with more line buffers the front-end can have more requests in flight.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.utils import require_positive, require_power_of_two


class LookupState(enum.Enum):
    """Result of probing the line-buffer set for a line."""

    HIT = "hit"  # line present and valid: no I-cache access needed
    PENDING = "pending"  # line already requested: wait, no new access
    MISS = "miss"  # line absent: must request from the I-cache


@dataclass
class LineBufferStats:
    """Fetch-side counters used for the Fig. 9 access-ratio metric."""

    line_requests: int = 0  # total lines the fetch engine needed
    buffer_hits: int = 0  # served by a valid line buffer
    pending_merges: int = 0  # merged into an in-flight request
    cache_fetches: int = 0  # issued to the I-cache

    @property
    def access_ratio(self) -> float:
        """Lines fetched from the I-cache / total line requests (Fig. 9)."""
        if self.line_requests == 0:
            return 0.0
        return self.cache_fetches / self.line_requests


@dataclass
class _Entry:
    line: int | None = None
    pending: bool = False
    last_use: int = 0


@dataclass
class LineBufferSet:
    """A small fully-associative set of line buffers with LRU reuse."""

    count: int
    line_bytes: int = 64
    _entries: list[_Entry] = field(init=False)
    _line_mask: int = field(init=False)
    _clock: int = field(init=False, default=0)
    stats: LineBufferStats = field(init=False)

    def __post_init__(self) -> None:
        require_positive(self.count, "line buffer count")
        require_power_of_two(self.line_bytes, "line_bytes")
        self._entries = [_Entry() for _ in range(self.count)]
        # -line_bytes == ~(line_bytes - 1) for powers of two; computed
        # once instead of on every probe/allocate/fill.
        self._line_mask = -self.line_bytes
        self.stats = LineBufferStats()

    def line_address(self, address: int) -> int:
        return address & self._line_mask

    def lookup(self, address: int, count: bool = True) -> LookupState:
        """Probe for the line containing ``address``.

        Args:
            count: account this probe as a fetch-side line request (the
                denominator of the Fig. 9 access ratio). Re-checks of a
                piece already counted must pass ``False`` so one fetched
                line counts exactly one request.
        """
        line = self.line_address(address)
        self._clock += 1
        if count:
            self.stats.line_requests += 1
        for entry in self._entries:
            if entry.line == line:
                entry.last_use = self._clock
                if entry.pending:
                    if count:
                        self.stats.pending_merges += 1
                    return LookupState.PENDING
                if count:
                    self.stats.buffer_hits += 1
                return LookupState.HIT
        return LookupState.MISS

    def allocate(self, address: int) -> bool:
        """Reserve a buffer for an I-cache request for ``address``'s line.

        Returns False when every buffer is pending (no free outstanding-
        request slot), which stalls the fetch engine.
        """
        line = self.line_address(address)
        victim: _Entry | None = None
        for entry in self._entries:
            if entry.pending:
                continue
            if victim is None or entry.last_use < victim.last_use:
                victim = entry
        if victim is None:
            return False
        self._clock += 1
        victim.line = line
        victim.pending = True
        victim.last_use = self._clock
        self.stats.cache_fetches += 1
        return True

    def fill(self, address: int) -> None:
        """Mark the pending buffer for ``address``'s line as valid."""
        line = self.line_address(address)
        for entry in self._entries:
            if entry.line == line and entry.pending:
                entry.pending = False
                return
        # A redirect may have discarded the pending entry; late fills for
        # lines no longer tracked are simply dropped.

    def discard_pending(self) -> int:
        """Drop all in-flight requests (branch-misprediction flush).

        Valid lines are retained — they still hold useful loop code.
        Returns the number of discarded requests.
        """
        discarded = 0
        for entry in self._entries:
            if entry.pending:
                entry.line = None
                entry.pending = False
                discarded += 1
        return discarded

    def pending_count(self) -> int:
        return sum(1 for entry in self._entries if entry.pending)

    # -- warm-state checkpoints --------------------------------------------

    def warm_state(self) -> dict:
        """JSON-ready snapshot of the valid lines (pending requests are
        transient timing state and are not part of warm state)."""
        return {
            "clock": self._clock,
            "entries": [
                [entry.line, entry.last_use]
                for entry in self._entries
                if entry.line is not None and not entry.pending
            ],
        }

    def load_warm_state(self, state) -> None:
        entries = state["entries"]
        if len(entries) > self.count:
            raise ValueError(
                f"line-buffer snapshot holds {len(entries)} lines but the "
                f"set has only {self.count} buffers"
            )
        self._entries = [_Entry() for _ in range(self.count)]
        for slot, (line, last_use) in zip(self._entries, entries):
            slot.line = line
            slot.last_use = last_use
        self._clock = int(state["clock"])

    def valid_lines(self) -> set[int]:
        return {
            entry.line
            for entry in self._entries
            if entry.line is not None and not entry.pending
        }
