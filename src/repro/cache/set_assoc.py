"""Set-associative cache state (timing lives in the memory/ACMP layers).

The same class backs the private I-caches, the shared I-cache and the L2s
of Fig. 5; it maintains tags and replacement state and reports hits,
misses and evictions. Latency and bandwidth are modelled where they arise:
in the cache port, the interconnect and the memory hierarchy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import kernels
from repro.cache.replacement import ReplacementPolicy, make_policy
from repro.cache.stats import CacheStats
from repro.errors import ConfigurationError
from repro.utils import log2_int, require_power_of_two

#: Compiled tag-row scan, or None on the pure-Python backend (the
#: methods below then keep their original inline try/except scans, so
#: the fallback pays no extra call indirection).
_native_find_way = kernels.find_way if kernels.NATIVE else None


@dataclass(frozen=True, slots=True)
class AccessResult:
    """Outcome of one cache access."""

    hit: bool
    line_address: int
    victim_line: int | None = None  # line evicted by the fill, if any


class SetAssociativeCache:
    """A classic set-associative cache over line addresses.

    Args:
        size_bytes: total capacity.
        ways: associativity.
        line_bytes: cache line size.
        policy: replacement policy name (default the paper's LRU).
        name: label used in diagnostics and reports.
        allocate: when False, skip allocating the tag array — a *hollow*
            cache whose storage arrives via :meth:`load_warm_state`
            (which validates shapes against the constructor parameters,
            not the allocated storage). Accessing a hollow cache before
            a load is a programming error.
    """

    def __init__(
        self,
        size_bytes: int,
        ways: int,
        line_bytes: int = 64,
        policy: str = "lru",
        name: str = "cache",
        allocate: bool = True,
    ) -> None:
        require_power_of_two(size_bytes, "size_bytes")
        require_power_of_two(line_bytes, "line_bytes")
        if ways <= 0:
            raise ConfigurationError(f"ways must be positive, got {ways}")
        lines = size_bytes // line_bytes
        if lines < ways or lines % ways:
            raise ConfigurationError(
                f"{size_bytes}B / {line_bytes}B lines not divisible into {ways} ways"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.ways = ways
        self.line_bytes = line_bytes
        self.set_count = lines // ways
        self._line_shift = log2_int(line_bytes)
        self._set_mask = self.set_count - 1
        # Precomputed at construction so the hot lookup paths do one
        # mask instead of a shift pair (addresses are non-negative, so
        # ``address & -line_bytes`` equals the shift-down/shift-up).
        self._line_mask = -line_bytes
        require_power_of_two(self.set_count, "set count")
        # tags[set][way] holds the line address or None when invalid.
        self._tags: list[list[int | None]] = (
            [[None] * ways for _ in range(self.set_count)] if allocate else []
        )
        self._policy: ReplacementPolicy = make_policy(policy, self.set_count, ways)
        self.stats = CacheStats()

    def line_address(self, address: int) -> int:
        """Line-aligned address containing ``address``."""
        return address & self._line_mask

    def set_index(self, address: int) -> int:
        return (address >> self._line_shift) & self._set_mask

    def probe(self, address: int) -> bool:
        """Check residency without updating replacement state or stats."""
        line = address & self._line_mask
        return line in self._tags[(line >> self._line_shift) & self._set_mask]

    def lookup(self, address: int) -> bool:
        """Timing-path access: update stats/recency but do NOT fill on miss.

        The cycle-level model fills the line only when the refill actually
        arrives (via :meth:`fill`), so that other cores' accesses in the
        miss window behave correctly.
        """
        line = address & self._line_mask
        set_index = (line >> self._line_shift) & self._set_mask
        tags = self._tags[set_index]
        if _native_find_way is not None:
            way = _native_find_way(tags, line)
        else:
            try:
                way = tags.index(line)
            except ValueError:
                way = -1
        if way < 0:
            self.stats.record_miss(line)
            return False
        self._policy.on_access(set_index, way)
        self.stats.record_hit()
        return True

    def access(self, address: int) -> AccessResult:
        """Perform a load access; on a miss, fill the line.

        Returns:
            AccessResult with hit flag and any evicted victim line.
        """
        line = address & self._line_mask
        set_index = (line >> self._line_shift) & self._set_mask
        tags = self._tags[set_index]
        if _native_find_way is not None:
            way = _native_find_way(tags, line)
        else:
            try:
                way = tags.index(line)
            except ValueError:
                way = -1
        if way >= 0:
            self._policy.on_access(set_index, way)
            self.stats.record_hit()
            return AccessResult(hit=True, line_address=line)
        victim = self._fill(set_index, line)
        self.stats.record_miss(line)
        return AccessResult(hit=False, line_address=line, victim_line=victim)

    def fill(self, address: int) -> int | None:
        """Install a line without counting an access (e.g. a prefetch fill).

        Returns the evicted line address, or None.
        """
        line = address & self._line_mask
        set_index = (line >> self._line_shift) & self._set_mask
        if line in self._tags[set_index]:
            return None
        return self._fill(set_index, line)

    def _fill(self, set_index: int, line: int) -> int | None:
        tags = self._tags[set_index]
        if _native_find_way is not None:
            way = _native_find_way(tags, None)
        else:
            try:
                way = tags.index(None)
            except ValueError:
                way = -1
        if way >= 0:
            victim: int | None = None
        else:
            way = self._policy.victim(set_index)
            victim = tags[way]
            self.stats.record_eviction()
        tags[way] = line
        self._policy.on_fill(set_index, way)
        return victim

    # -- warm-state checkpoints --------------------------------------------

    def warm_state(self) -> dict:
        """Tag array, replacement state and the compulsory-miss
        classifier (lines ever resident), passed by reference.

        The seen-lines set rides along because it is warm state, not a
        counter: a restored cache that forgot which lines it ever held
        would misclassify every capacity/conflict miss of a
        measurement interval as compulsory (the Fig. 11 split). The
        snapshot and the cache share storage after a
        :meth:`load_warm_state`; serialize through
        :meth:`repro.machine.warm.WarmState.to_dict`, which deep-copies.
        """
        return {
            "tags": self._tags,
            "policy": self._policy.warm_state(),
            "seen": self.stats._seen_lines,
        }

    def load_warm_state(self, state) -> None:
        """Adopt a snapshot captured from an identically-shaped cache."""
        tags = state["tags"]
        if len(tags) != self.set_count or any(
            len(ways) != self.ways for ways in tags
        ):
            raise ValueError(
                f"cache snapshot shape does not match {self!r}"
            )
        self._tags = tags
        self._policy.load_warm_state(state["policy"])
        # Adopt live sets by reference (like the tag tables); JSON
        # round trips hand back lists, which need the one-time rebuild.
        seen = state["seen"]
        self.stats._seen_lines = (
            seen if isinstance(seen, set) else set(seen)
        )

    def invalidate_all(self) -> None:
        """Drop every line (replacement state is left as-is)."""
        for tags in self._tags:
            for way in range(self.ways):
                tags[way] = None

    def resident_lines(self) -> set[int]:
        """All currently resident line addresses (for inspection/tests)."""
        lines: set[int] = set()
        for tags in self._tags:
            lines.update(tag for tag in tags if tag is not None)
        return lines

    def __repr__(self) -> str:
        return (
            f"SetAssociativeCache(name={self.name!r}, size={self.size_bytes}B, "
            f"ways={self.ways}, line={self.line_bytes}B)"
        )
