"""Multi-banked cache addressing (Section IV-B).

A multi-banked I-cache serves one access per bank per cycle. The paper
interleaves banks by cache-line address ("one with even and one with odd
cache lines") and pairs each bank with its own bus. Banking affects *which
bus/port* serves a request, not capacity, so this wrapper adds bank routing
on top of a single logical :class:`SetAssociativeCache`.
"""

from __future__ import annotations

from repro.cache.set_assoc import AccessResult, SetAssociativeCache
from repro.utils import log2_int, require_power_of_two


class BankedCache:
    """A set-associative cache with line-interleaved bank routing."""

    def __init__(self, cache: SetAssociativeCache, bank_count: int) -> None:
        require_power_of_two(bank_count, "bank_count")
        self.cache = cache
        self.bank_count = bank_count
        self._line_shift = log2_int(cache.line_bytes)
        self._bank_mask = bank_count - 1

    @property
    def name(self) -> str:
        return self.cache.name

    @property
    def line_bytes(self) -> int:
        return self.cache.line_bytes

    @property
    def stats(self):
        return self.cache.stats

    def bank_of(self, address: int) -> int:
        """Bank serving ``address``: line-address interleaving."""
        return (address >> self._line_shift) & self._bank_mask

    def line_address(self, address: int) -> int:
        return self.cache.line_address(address)

    def access(self, address: int) -> AccessResult:
        return self.cache.access(address)

    def probe(self, address: int) -> bool:
        return self.cache.probe(address)

    def fill(self, address: int) -> int | None:
        return self.cache.fill(address)
