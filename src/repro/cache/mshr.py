"""Miss-status holding registers for the shared I-cache.

When several lean cores miss on the same line at nearly the same time —
the common case for HPC parallel regions where all threads run the same
code — the requests must merge into a single L2 fetch. This is the timing
mechanism behind the paper's "mutual prefetching": the first core pays the
miss and every other core's merged request completes with it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.utils import require_positive


@dataclass
class MshrStats:
    allocations: int = 0
    merges: int = 0
    full_stalls: int = 0


@dataclass
class MshrFile:
    """Tracks outstanding line misses; merges same-line requests.

    Attributes:
        capacity: maximum distinct outstanding lines.
    """

    capacity: int
    _outstanding: dict[int, list[object]] = field(default_factory=dict)
    stats: MshrStats = field(default_factory=MshrStats)

    def __post_init__(self) -> None:
        require_positive(self.capacity, "MSHR capacity")

    def outstanding(self, line: int) -> bool:
        return line in self._outstanding

    @property
    def occupancy(self) -> int:
        return len(self._outstanding)

    def request(self, line: int, waiter: object) -> str:
        """Register a miss for ``line`` on behalf of ``waiter``.

        Returns:
            ``"new"`` when a fetch must be issued, ``"merged"`` when an
            existing fetch covers it, or ``"full"`` when no MSHR is free
            (the requester must retry later).
        """
        waiters = self._outstanding.get(line)
        if waiters is not None:
            waiters.append(waiter)
            self.stats.merges += 1
            return "merged"
        if len(self._outstanding) >= self.capacity:
            self.stats.full_stalls += 1
            return "full"
        self._outstanding[line] = [waiter]
        self.stats.allocations += 1
        return "new"

    def complete(self, line: int) -> list[object]:
        """Resolve the miss for ``line``; return every merged waiter."""
        try:
            return self._outstanding.pop(line)
        except KeyError:
            raise SimulationError(
                f"MSHR completion for line {line:#x} that was never requested"
            ) from None
