"""Loop predictor (Table I: 256 entries).

Captures branches with regular loop behaviour: after observing the same
trip count twice, it predicts the not-taken exit on the final iteration —
exactly the branch a gshare mispredicts. HPC codes spend most of their time
in fixed-trip loops, which is why the paper pairs the gshare with this
structure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.branch.base import DirectionPredictor
from repro.utils import require_power_of_two

#: Confidence threshold before the loop predictor overrides the gshare.
CONFIDENT = 2
_CONFIDENCE_MAX = 3


@dataclass
class _LoopEntry:
    tag: int = -1
    trip_count: int = 0  # learned taken-run length before the exit
    current: int = 0  # taken count in the current execution of the loop
    confidence: int = 0


class LoopPredictor(DirectionPredictor):
    """Direct-mapped, tagged loop-termination predictor."""

    def __init__(self, entries: int = 256) -> None:
        super().__init__()
        require_power_of_two(entries, "loop predictor entries")
        self._mask = entries - 1
        self._entries = [_LoopEntry() for _ in range(entries)]
        self._index_shift = 2

    def _entry(self, address: int) -> _LoopEntry:
        return self._entries[(address >> self._index_shift) & self._mask]

    def _tag(self, address: int) -> int:
        return address >> self._index_shift

    def confident(self, address: int) -> bool:
        """True when this predictor should override the direction predictor."""
        entry = self._entry(address)
        return entry.tag == self._tag(address) and entry.confidence >= CONFIDENT

    def predict(self, address: int) -> bool:
        entry = self._entry(address)
        if entry.tag != self._tag(address):
            return True  # unknown loop branch: assume taken (stay in loop)
        return entry.current + 1 < entry.trip_count or entry.trip_count == 0

    def update(self, address: int, taken: bool) -> None:
        entry = self._entry(address)
        tag = self._tag(address)
        if entry.tag != tag:
            # Allocate on a not-taken outcome: that is a potential loop exit.
            if not taken:
                entry.tag = tag
                entry.trip_count = 0
                entry.current = 0
                entry.confidence = 0
            return
        if taken:
            entry.current += 1
            return
        # Loop exit: compare the observed taken-run with the learned one.
        observed = entry.current + 1  # count executions including the exit
        if observed == entry.trip_count:
            entry.confidence = min(_CONFIDENCE_MAX, entry.confidence + 1)
        else:
            entry.trip_count = observed
            entry.confidence = 0
        entry.current = 0
