"""Loop predictor (Table I: 256 entries).

Captures branches with regular loop behaviour: after observing the same
trip count twice, it predicts the not-taken exit on the final iteration —
exactly the branch a gshare mispredicts. HPC codes spend most of their time
in fixed-trip loops, which is why the paper pairs the gshare with this
structure.
"""

from __future__ import annotations

from repro.branch.base import DirectionPredictor
from repro.utils import require_power_of_two

#: Confidence threshold before the loop predictor overrides the gshare.
CONFIDENT = 2
_CONFIDENCE_MAX = 3


class LoopPredictor(DirectionPredictor):
    """Direct-mapped, tagged loop-termination predictor.

    Entry fields live in parallel flat lists (tag / learned trip count /
    current taken-run / confidence): the tables snapshot and restore by
    reference for warm-state checkpoints, and indexing flat int lists is
    no slower than attribute access on per-entry objects.
    """

    def __init__(self, entries: int = 256) -> None:
        super().__init__()
        require_power_of_two(entries, "loop predictor entries")
        self._mask = entries - 1
        self._tags = [-1] * entries
        self._trips = [0] * entries  # learned taken-run length before exit
        self._currents = [0] * entries  # taken count in the current run
        self._confidences = [0] * entries
        self._index_shift = 2

    def _index(self, address: int) -> int:
        return (address >> self._index_shift) & self._mask

    def _tag(self, address: int) -> int:
        return address >> self._index_shift

    def confident(self, address: int) -> bool:
        """True when this predictor should override the direction predictor."""
        # The tag is the index's unmasked form: one shift serves both.
        tag = address >> self._index_shift
        index = tag & self._mask
        return (
            self._tags[index] == tag
            and self._confidences[index] >= CONFIDENT
        )

    def predict(self, address: int) -> bool:
        tag = address >> self._index_shift
        index = tag & self._mask
        if self._tags[index] != tag:
            return True  # unknown loop branch: assume taken (stay in loop)
        trips = self._trips[index]
        return self._currents[index] + 1 < trips or trips == 0

    def update(self, address: int, taken: bool) -> None:
        tag = address >> self._index_shift
        index = tag & self._mask
        if self._tags[index] != tag:
            # Allocate on a not-taken outcome: that is a potential loop exit.
            if not taken:
                self._tags[index] = tag
                self._trips[index] = 0
                self._currents[index] = 0
                self._confidences[index] = 0
            return
        if taken:
            self._currents[index] += 1
            return
        # Loop exit: compare the observed taken-run with the learned one.
        observed = self._currents[index] + 1  # executions incl. the exit
        if observed == self._trips[index]:
            self._confidences[index] = min(
                _CONFIDENCE_MAX, self._confidences[index] + 1
            )
        else:
            self._trips[index] = observed
            self._confidences[index] = 0
        self._currents[index] = 0

    # -- warm-state checkpoints --------------------------------------------

    def warm_state(self) -> dict:
        """Entry tables, passed by reference (see repro.machine.warm)."""
        return {
            "tags": self._tags,
            "trips": self._trips,
            "currents": self._currents,
            "confidences": self._confidences,
        }

    def load_warm_state(self, state) -> None:
        tables = (
            state["tags"], state["trips"], state["currents"],
            state["confidences"],
        )
        if any(len(table) != len(self._tags) for table in tables):
            raise ValueError(
                f"loop-predictor snapshot does not match "
                f"{len(self._tags)} entries"
            )
        self._tags, self._trips, self._currents, self._confidences = tables
