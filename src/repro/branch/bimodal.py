"""Bimodal predictor: a PC-indexed table of 2-bit saturating counters."""

from __future__ import annotations

from repro.branch.base import DirectionPredictor, saturating_update
from repro.utils import require_power_of_two


class BimodalPredictor(DirectionPredictor):
    """The classic per-branch 2-bit counter table."""

    def __init__(self, entries: int = 4096) -> None:
        super().__init__()
        require_power_of_two(entries, "bimodal entries")
        self._mask = entries - 1
        # Counters start weakly taken: loopy HPC code is mostly taken.
        self._counters = [2] * entries
        self._index_shift = 2  # drop instruction alignment bits

    def _index(self, address: int) -> int:
        return (address >> self._index_shift) & self._mask

    def predict(self, address: int) -> bool:
        return self._counters[self._index(address)] >= 2

    def update(self, address: int, taken: bool) -> None:
        index = self._index(address)
        self._counters[index] = saturating_update(self._counters[index], taken)
