"""Branch prediction: gshare + loop predictor (Table I), plus ablation parts."""

from repro.branch.base import DirectionPredictor, PredictorStats, saturating_update
from repro.branch.bimodal import BimodalPredictor
from repro.branch.btb import BranchTargetBuffer, BtbStats
from repro.branch.fetch_predictor import FetchPredictor, FetchPredictorStats
from repro.branch.gshare import GsharePredictor
from repro.branch.loop import LoopPredictor
from repro.branch.tournament import TournamentPredictor

__all__ = [
    "DirectionPredictor",
    "PredictorStats",
    "saturating_update",
    "BimodalPredictor",
    "BranchTargetBuffer",
    "BtbStats",
    "FetchPredictor",
    "FetchPredictorStats",
    "GsharePredictor",
    "LoopPredictor",
    "TournamentPredictor",
]
