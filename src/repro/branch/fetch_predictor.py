"""The fetch predictor: the front-end's combined prediction structure.

In the decoupled front-end (Fig. 5), the "Fetch Predictor (which is
actually the branch predictor)" generates fetch-block addresses into the
FTQ. For the trace-driven model it must answer one question per basic
block: *was this block's terminating branch predicted correctly?* A wrong
answer costs a front-end redirect (flush + refill bubble).

Composition, per Table I: a 16 KB gshare augmented with a 256-entry loop
predictor (the loop predictor overrides when confident), plus a BTB for
indirect branch targets. Unconditional direct branches are always
predicted correctly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.branch.base import DirectionPredictor, PredictorStats
from repro.branch.btb import BranchTargetBuffer
from repro.branch.gshare import GsharePredictor
from repro.branch.loop import LoopPredictor
from repro.trace.records import BranchKind, BranchOutcome


@dataclass
class FetchPredictorStats:
    conditional: PredictorStats
    overall_lookups: int = 0
    overall_mispredictions: int = 0

    def mpki(self, instructions: int) -> float:
        if instructions <= 0:
            return 0.0
        return self.overall_mispredictions * 1000.0 / instructions


class FetchPredictor:
    """Predicts each basic block's terminating branch. One per core."""

    def __init__(
        self,
        direction: DirectionPredictor | None = None,
        loop: LoopPredictor | None = None,
        btb: BranchTargetBuffer | None = None,
    ) -> None:
        self.direction = direction if direction is not None else GsharePredictor()
        self.loop = loop if loop is not None else LoopPredictor()
        self.btb = btb if btb is not None else BranchTargetBuffer()
        self.stats = FetchPredictorStats(conditional=self.direction.stats)

    def resolve(self, branch_address: int, branch: BranchOutcome | None) -> bool:
        """Predict and train on one terminating branch.

        Args:
            branch_address: address of the branch instruction.
            branch: the recorded outcome; ``None`` marks a control-flow
                discontinuity without a branch (treated as predicted).

        Returns:
            True when the front-end predicted this transition correctly.
        """
        self.stats.overall_lookups += 1
        if branch is None or branch.kind is BranchKind.UNCONDITIONAL:
            return True
        if branch.kind is BranchKind.INDIRECT:
            correct = self.btb.predict_and_update(branch_address, branch.target)
            if not correct:
                self.stats.overall_mispredictions += 1
            return correct
        # Conditional: loop predictor overrides the gshare when confident.
        if self.loop.confident(branch_address):
            predicted = self.loop.predict(branch_address)
        else:
            predicted = self.direction.predict(branch_address)
        self.direction.stats.lookups += 1
        correct = predicted == branch.taken
        if not correct:
            self.direction.stats.mispredictions += 1
            self.stats.overall_mispredictions += 1
        self.direction.update(branch_address, branch.taken)
        self.loop.update(branch_address, branch.taken)
        return correct

    # -- warm-state checkpoints --------------------------------------------

    def warm_state(self) -> dict:
        """Composite snapshot of the direction/loop/BTB structures."""
        return {
            "direction": self.direction.warm_state(),
            "loop": self.loop.warm_state(),
            "btb": self.btb.warm_state(),
        }

    def load_warm_state(self, state) -> None:
        self.direction.load_warm_state(state["direction"])
        self.loop.load_warm_state(state["loop"])
        self.btb.load_warm_state(state["btb"])
