"""Tournament combiner: a chooser table arbitrating two predictors.

Not part of the paper's baseline (which uses gshare + loop predictor), but
used by the predictor ablation benches to show that the paper's choice is
not load-bearing for the shared-I-cache conclusions.
"""

from __future__ import annotations

from repro.branch.base import DirectionPredictor, saturating_update
from repro.utils import require_power_of_two


class TournamentPredictor(DirectionPredictor):
    """Chooses per-branch between two component predictors."""

    def __init__(
        self,
        first: DirectionPredictor,
        second: DirectionPredictor,
        chooser_entries: int = 4096,
    ) -> None:
        super().__init__()
        require_power_of_two(chooser_entries, "chooser entries")
        self._first = first
        self._second = second
        self._mask = chooser_entries - 1
        # 2-bit chooser: >= 2 selects the first predictor.
        self._chooser = [2] * chooser_entries
        self._index_shift = 2

    def _index(self, address: int) -> int:
        return (address >> self._index_shift) & self._mask

    def predict(self, address: int) -> bool:
        if self._chooser[self._index(address)] >= 2:
            return self._first.predict(address)
        return self._second.predict(address)

    def update(self, address: int, taken: bool) -> None:
        first_correct = self._first.predict(address) == taken
        second_correct = self._second.predict(address) == taken
        index = self._index(address)
        if first_correct != second_correct:
            self._chooser[index] = saturating_update(
                self._chooser[index], first_correct
            )
        self._first.update(address, taken)
        self._second.update(address, taken)
