"""Branch target buffer: last-target prediction for indirect branches."""

from __future__ import annotations

from dataclasses import dataclass

from repro import kernels
from repro.utils import require_power_of_two

#: Compiled table probe, or None on the pure-Python backend.
_native_probe = kernels.btb_probe if kernels.NATIVE else None


@dataclass
class BtbStats:
    lookups: int = 0
    hits: int = 0
    target_mispredictions: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class BranchTargetBuffer:
    """Direct-mapped, tagged BTB storing the last observed target."""

    def __init__(self, entries: int = 2048) -> None:
        require_power_of_two(entries, "BTB entries")
        self._mask = entries - 1
        self._tags: list[int] = [-1] * entries
        self._targets: list[int] = [0] * entries
        self._index_shift = 2
        self.stats = BtbStats()

    def _index(self, address: int) -> int:
        return (address >> self._index_shift) & self._mask

    def predict(self, address: int) -> int | None:
        """Predicted target for the branch at ``address``; None on BTB miss."""
        index = (address >> self._index_shift) & self._mask
        self.stats.lookups += 1
        if _native_probe is not None:
            target = _native_probe(self._tags, self._targets, index, address)
            if target is None:
                return None
            self.stats.hits += 1
            return target
        if self._tags[index] == address:
            self.stats.hits += 1
            return self._targets[index]
        return None

    def predict_and_update(self, address: int, target: int) -> bool:
        """Predict the target, record accuracy, train. True when correct."""
        predicted = self.predict(address)
        correct = predicted == target
        if not correct:
            self.stats.target_mispredictions += 1
        self.update(address, target)
        return correct

    def update(self, address: int, target: int) -> None:
        index = self._index(address)
        self._tags[index] = address
        self._targets[index] = target

    # -- warm-state checkpoints --------------------------------------------

    def warm_state(self) -> dict:
        """Tag and target tables (passed by reference, not copied)."""
        return {"tags": self._tags, "targets": self._targets}

    def load_warm_state(self, state) -> None:
        tags, targets = state["tags"], state["targets"]
        if len(tags) != len(self._tags) or len(targets) != len(self._targets):
            raise ValueError(
                f"BTB snapshot shape {len(tags)}/{len(targets)} does not "
                f"match {len(self._tags)} entries"
            )
        self._tags = tags
        self._targets = targets
