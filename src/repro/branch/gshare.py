"""gshare predictor (Table I: 16 KB of 2-bit counters, 16-bit history)."""

from __future__ import annotations

from repro import kernels
from repro.branch.base import DirectionPredictor, saturating_update
from repro.utils import log2_int, require_power_of_two

#: Compiled training step, or None on the pure-Python backend (the
#: update below then keeps its original inline arithmetic).
_native_update = kernels.gshare_update if kernels.NATIVE else None


class GsharePredictor(DirectionPredictor):
    """Global-history predictor XOR-indexing a 2-bit counter table.

    A 16 KB budget holds 64 Ki 2-bit counters, indexed by
    ``PC xor global_history`` over 16 bits — the paper's configuration.
    """

    def __init__(
        self, size_bytes: int = 16 * 1024, allocate: bool = True
    ) -> None:
        super().__init__()
        require_power_of_two(size_bytes, "gshare size_bytes")
        entries = size_bytes * 4  # 2-bit counters, four per byte
        self._entries = entries
        self._mask = entries - 1
        self._history_bits = log2_int(entries)
        # allocate=False builds a hollow predictor whose counter table
        # arrives via load_warm_state; predicting before a load is a
        # programming error.
        self._counters = [2] * entries if allocate else []  # weakly taken
        self._history = 0
        self._index_shift = 2

    @property
    def history_bits(self) -> int:
        return self._history_bits

    def _index(self, address: int) -> int:
        return ((address >> self._index_shift) ^ self._history) & self._mask

    def predict(self, address: int) -> bool:
        return self._counters[self._index(address)] >= 2

    def update(self, address: int, taken: bool) -> None:
        if _native_update is not None:
            self._history = _native_update(
                self._counters,
                self._history,
                self._mask,
                self._index_shift,
                address,
                taken,
            )
            return
        index = self._index(address)
        self._counters[index] = saturating_update(self._counters[index], taken)
        self._history = ((self._history << 1) | int(taken)) & self._mask

    # -- warm-state checkpoints --------------------------------------------

    def warm_state(self) -> dict:
        """Counter table + global history (table passed by reference)."""
        return {"counters": self._counters, "history": self._history}

    def load_warm_state(self, state) -> None:
        """Adopt a snapshot; the table is shared, not copied."""
        counters = state["counters"]
        if len(counters) != self._entries:
            raise ValueError(
                f"gshare snapshot has {len(counters)} counters, "
                f"expected {self._entries}"
            )
        self._counters = counters
        self._history = int(state["history"]) & self._mask
