"""Direction-predictor interface and shared counters."""

from __future__ import annotations

import abc
from dataclasses import dataclass


@dataclass
class PredictorStats:
    """Prediction accounting for one predictor instance."""

    lookups: int = 0
    mispredictions: int = 0

    @property
    def accuracy(self) -> float:
        if self.lookups == 0:
            return 1.0
        return 1.0 - self.mispredictions / self.lookups

    def mpki(self, instructions: int) -> float:
        """Branch mispredictions per kilo-instruction."""
        if instructions <= 0:
            return 0.0
        return self.mispredictions * 1000.0 / instructions


class DirectionPredictor(abc.ABC):
    """Predicts taken/not-taken for conditional branches."""

    def __init__(self) -> None:
        self.stats = PredictorStats()

    @abc.abstractmethod
    def predict(self, address: int) -> bool:
        """Predicted direction for the branch at ``address``."""

    @abc.abstractmethod
    def update(self, address: int, taken: bool) -> None:
        """Train with the resolved outcome."""

    # -- warm-state checkpoints (sampled simulation) -----------------------

    def warm_state(self) -> object | None:
        """JSON-ready snapshot of the predictor tables, or ``None``.

        Predictors without snapshot support return ``None``; sampled
        simulation then simply starts them cold at each measurement
        interval. See :mod:`repro.machine.warm` for the contract.
        """
        return None

    def load_warm_state(self, state: object | None) -> None:
        """Adopt a :meth:`warm_state` snapshot (``None`` is a no-op)."""
        if state is not None:
            raise ValueError(
                f"{type(self).__name__} has no warm state to restore"
            )

    def predict_and_update(self, address: int, taken: bool) -> bool:
        """Predict, record accuracy, then train. Returns True on a correct
        prediction."""
        predicted = self.predict(address)
        self.stats.lookups += 1
        correct = predicted == taken
        if not correct:
            self.stats.mispredictions += 1
        self.update(address, taken)
        return correct


def saturating_update(counter: int, taken: bool, maximum: int = 3) -> int:
    """Advance a saturating counter (0..maximum) towards the outcome."""
    if taken:
        return min(maximum, counter + 1)
    return max(0, counter - 1)
