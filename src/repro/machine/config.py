"""Machine-neutral configuration base shared by every machine model.

Every simulated machine — the paper's ACMP, the symmetric CMP, and any
future model — is built from the same substrate: lean in-order cores
with a decoupled front-end, L1 instruction caches (private or shared
behind an I-interconnect), per-group L2s and a DDR3 memory system.
:class:`BaseMachineConfig` owns the parameters of that substrate; each
machine model subclasses it with its topology fields (how many cores,
which of them share which I-cache) and its reporting ``label()``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.trace.records import INSTRUCTION_BYTES
from repro.utils import require_positive, require_power_of_two

KB = 1024

#: Legal I-interconnect topologies.
INTERCONNECTS = ("bus", "crossbar")

#: Legal bus arbitration policies (``icount`` is the Section VII
#: SMT-ICOUNT-style fetch policy ablation).
ARBITRATIONS = ("round-robin", "fixed-priority", "least-recently-granted", "icount")


@dataclass(frozen=True)
class BaseMachineConfig:
    """Parameters every machine model shares (Table I substrate)."""

    # -- I-cache geometry --------------------------------------------------
    icache_ways: int = 8
    icache_line_bytes: int = 64
    icache_latency: int = 1
    icache_policy: str = "lru"

    # -- front-end ---------------------------------------------------------
    line_buffers: int = 4
    ftq_capacity: int = 8
    iq_capacity: int = 64
    gshare_bytes: int = 16 * KB
    loop_predictor_entries: int = 256

    # -- I-interconnect ----------------------------------------------------
    #: Buses (and cache banks): 1 = single bus, 2 = double bus.
    bus_count: int = 1
    bus_width_bytes: int = 32
    bus_latency: int = 2
    arbitration: str = "round-robin"
    #: Interconnect topology: ``bus`` (the paper) or ``crossbar`` (the
    #: Section IV-B alternative, quadratic area).
    interconnect: str = "bus"
    mshr_capacity: int = 16

    # -- extensions (Section VII future work) ------------------------------
    #: Share one fetch predictor (gshare + loop predictor + BTB) among the
    #: cores of each shared-I-cache group, for cross-thread training.
    shared_fetch_predictor: bool = False
    #: Model an instruction TLB per core (off by default: the paper's
    #: baseline has no iTLB component).
    itlb_enabled: bool = False
    itlb_entries: int = 32
    itlb_miss_penalty: int = 30
    #: Share one iTLB among each shared-I-cache group's cores.
    shared_itlb: bool = False

    # -- memory ------------------------------------------------------------
    l2_bytes: int = 1024 * KB
    l2_ways: int = 32
    l2_latency: int = 20
    l2_bus_width_bytes: int = 32
    l2_bus_latency: int = 4
    core_ghz: float = 2.0

    def __post_init__(self) -> None:
        require_power_of_two(self.bus_count, "bus_count")
        require_positive(self.line_buffers, "line_buffers")
        require_positive(self.iq_capacity, "iq_capacity")
        require_power_of_two(self.icache_line_bytes, "icache_line_bytes")
        line_instructions = self.icache_line_bytes // INSTRUCTION_BYTES
        if self.iq_capacity < line_instructions:
            raise ConfigurationError(
                f"iq_capacity={self.iq_capacity} cannot hold one full "
                f"fetch line ({line_instructions} instructions): a "
                "line-sized fetch piece could never drain into the queue "
                "and the machine would hang on its first full line"
            )
        if self.interconnect not in INTERCONNECTS:
            raise ConfigurationError(
                f"interconnect must be 'bus' or 'crossbar', got "
                f"{self.interconnect!r}"
            )
        if self.arbitration not in ARBITRATIONS:
            raise ConfigurationError(
                f"unknown arbitration policy {self.arbitration!r}"
            )
        if self.shared_itlb and not self.itlb_enabled:
            raise ConfigurationError("shared_itlb requires itlb_enabled")
        if self.shared_fetch_predictor and self.is_baseline:
            raise ConfigurationError(
                "shared_fetch_predictor requires a shared-I-cache topology"
            )
        if self.shared_itlb and self.is_baseline:
            raise ConfigurationError(
                "shared_itlb requires a shared-I-cache topology"
            )
        require_positive(self.itlb_entries, "itlb_entries")
        require_positive(self.itlb_miss_penalty, "itlb_miss_penalty")

    # -- model hooks -------------------------------------------------------

    @property
    def core_count(self) -> int:
        """Total simulated cores (thread 0 is always the master thread)."""
        raise NotImplementedError

    @property
    def is_baseline(self) -> bool:
        """True when every core has a private I-cache (no shared groups)."""
        raise NotImplementedError

    def label(self) -> str:
        """Compact design-point label used in reports and store keys."""
        raise NotImplementedError
