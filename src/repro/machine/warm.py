"""Warm-state checkpoints: the machine-neutral snapshot protocol.

Sampled simulation (:mod:`repro.sampling`) runs detailed simulation only
over measurement intervals and must carry *warmed* microarchitectural
state between them: the structures whose contents build up over millions
of instructions — L1I and L2 tag/replacement state, line buffers, iTLB
translations, branch-predictor tables — as opposed to transient timing
state (FTQ/IQ occupancy, in-flight requests, commit credit), which
drains at every interval boundary anyway.

:class:`WarmState` is that snapshot. :meth:`System.capture_warm_state`
produces one from any machine model built on the shared assembly layer
(:class:`repro.machine.system.System`), and
:meth:`System.restore_warm_state` installs one into a freshly-built
system of the *same* design point, so both the ACMP and the symmetric
CMP get sampled simulation without model-specific code.

Sharing semantics: for the large tables (cache tags, replacement order,
gshare counters, BTB) capture and restore pass storage **by reference**
— a restored system and the snapshot's source share those lists. This
is deliberate: the sampled simulator alternates one warming machine
with a sequence of short-lived measurement machines, and copying a
megabyte-scale L2 tag array per interval would erase the sampling
speedup. Callers that need an independent, durable snapshot serialize
through :meth:`WarmState.to_dict`, which deep-copies into JSON
primitives; :meth:`WarmState.from_dict` rebuilds a snapshot whose
storage is fresh.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.errors import ConfigurationError

__all__ = ["WarmState"]


@dataclass
class WarmState:
    """One machine's warm microarchitectural state.

    Attributes:
        machine: registry name of the producing machine model; a
            snapshot never restores into a different model.
        config_label: design-point label of the producing configuration;
            shapes are validated structure by structure on restore, the
            label catches whole-design mismatches early.
        cores: per-core state: line buffers plus indices into
            :attr:`predictors` / :attr:`itlbs` (group-shared structures
            are captured once and referenced by every member core).
        predictors: unique fetch-predictor snapshots, in core order of
            first appearance.
        itlbs: unique iTLB snapshots, in core order of first appearance.
        groups: per-cache-group state: L1I and L2 snapshots, in topology
            order.
        shape: warm-shape digest of the producing system (see
            :func:`repro.machine.system.warm_shape_digest`): a hash over
            exactly the structural parameters the snapshot depends on.
            Two design points with equal digests hold interchangeable
            warm state even when their timing parameters differ — the
            property the checkpoint store keys on. Empty on legacy
            payloads, in which case restore falls back to comparing
            design-point labels.
    """

    machine: str
    config_label: str
    cores: list[dict] = field(default_factory=list)
    predictors: list[dict] = field(default_factory=list)
    itlbs: list[dict] = field(default_factory=list)
    groups: list[dict] = field(default_factory=list)
    shape: str = ""

    def to_dict(self) -> dict:
        """Deep-copied, JSON-primitive form of the snapshot.

        The result shares no storage with any simulated machine, so it
        can be persisted or compared while simulation continues. Live
        sets (the compulsory-miss classifiers, captured by reference)
        serialize as sorted lists, so equal states render identically.
        """

        def jsonable(value):
            if isinstance(value, (set, frozenset)):
                return sorted(value)
            raise TypeError(f"not JSON-serialisable: {type(value)}")

        return json.loads(
            json.dumps(
                {
                    "machine": self.machine,
                    "config_label": self.config_label,
                    "cores": self.cores,
                    "predictors": self.predictors,
                    "itlbs": self.itlbs,
                    "groups": self.groups,
                    "shape": self.shape,
                },
                default=jsonable,
            )
        )

    @classmethod
    def from_dict(cls, data: dict) -> WarmState:
        """Rebuild a snapshot from :meth:`to_dict` output.

        The payload is deep-copied (one JSON round trip), so the
        snapshot owns fresh storage: restoring it never couples a
        system to the caller's dict, matching the docstring promise of
        :meth:`to_dict`.
        """
        try:
            data = json.loads(json.dumps(data))
            return cls(
                machine=data["machine"],
                config_label=data["config_label"],
                cores=list(data["cores"]),
                predictors=list(data["predictors"]),
                itlbs=list(data["itlbs"]),
                groups=list(data["groups"]),
                shape=data.get("shape", ""),
            )
        except (KeyError, TypeError) as exc:
            raise ConfigurationError(
                f"malformed warm-state payload: {exc}"
            ) from exc

    def check_compatible(
        self, machine: str, config_label: str, shape: str = ""
    ) -> None:
        """Refuse to restore into a different machine or design point.

        When both the snapshot and the target carry a warm-shape digest
        the comparison is structural: any two design points with equal
        digests are interchangeable (their timing parameters may
        differ). Legacy snapshots without a digest fall back to the
        stricter design-point-label comparison.
        """
        if self.machine != machine:
            raise ConfigurationError(
                f"warm state was captured on machine {self.machine!r}, "
                f"cannot restore into {machine!r}"
            )
        if self.shape and shape:
            if self.shape != shape:
                raise ConfigurationError(
                    f"warm state was captured on design point "
                    f"{self.config_label!r} (shape {self.shape}), "
                    f"cannot restore into {config_label!r} "
                    f"(shape {shape})"
                )
        elif self.config_label != config_label:
            raise ConfigurationError(
                f"warm state was captured on design point "
                f"{self.config_label!r}, cannot restore into "
                f"{config_label!r}"
            )
